"""Quickstart: simulate a fleet, train a predictor, rank risky DIMMs.

Run:  python examples/quickstart.py
Takes ~1 minute on a laptop.
"""

from repro import MemoryFailurePredictor
from repro.evaluation.protocol import ExperimentProtocol
from repro.features.sampling import SamplingParams
from repro.simulator import FleetConfig, purley_platform, simulate_fleet


def main() -> None:
    # 1. A small Intel Purley fleet observed for ~90 days.  In production
    #    you would ingest BMC logs instead (see repro.telemetry.LogStore).
    print("Simulating an Intel Purley fleet ...")
    simulation = simulate_fleet(
        FleetConfig(
            platform=purley_platform(scale=0.25),
            duration_hours=2160.0,
            seed=11,
        )
    )
    truth = simulation.truth
    print(
        f"  {len(truth.dimms_with_ces)} DIMMs with CEs, "
        f"{len(truth.predictable_ue_dimms)} predictable UEs, "
        f"{len(truth.sudden_ue_dimms)} sudden UEs, "
        f"{len(simulation.store.ces)} CE records"
    )

    # 2. Train and evaluate with the paper's protocol (temporal split,
    #    5-day observation, 3-hour lead, 30-day prediction window).
    protocol = ExperimentProtocol(
        duration_hours=2160.0, seed=11,
        sampling=SamplingParams(max_samples_per_dimm=16),
    )
    predictor = MemoryFailurePredictor(
        platform="intel_purley", algorithm="lightgbm", protocol=protocol
    )
    result = predictor.fit_evaluate(simulation)
    print(
        f"\nHeld-out test period: precision={result.precision:.2f} "
        f"recall={result.recall:.2f} F1={result.f1:.2f} VIRR={result.virr:.2f} "
        f"({result.test_positive_dimms}/{result.test_dimms} test DIMMs failed)"
    )

    # 3. Rank the fleet's live DIMMs by failure risk at a point in time.
    assessments = predictor.assess(simulation.store, at_hour=1500.0)
    print("\nTop 5 riskiest DIMMs at hour 1500:")
    for assessment in assessments[:5]:
        flag = " <-- flagged for proactive migration" if assessment.flagged else ""
        print(f"  {assessment.dimm_id}: score={assessment.score:.3f}{flag}")


if __name__ == "__main__":
    main()
