"""MLOps lifecycle: the paper's Figure 6, end to end in one process.

Data pipeline -> feature store -> training -> CI/CD gate -> online serving
with alarms, VM migration accounting and drift monitoring.

Run:  python examples/mlops_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro.evaluation.protocol import ExperimentProtocol
from repro.features.sampling import SamplingParams
from repro.mlops.lifecycle import run_lifecycle
from repro.simulator import FleetConfig, purley_platform, simulate_fleet


def main() -> None:
    print("Simulating the campaign ...")
    simulation = simulate_fleet(
        FleetConfig(
            platform=purley_platform(scale=0.25),
            duration_hours=2160.0,
            seed=19,
        )
    )
    protocol = ExperimentProtocol(
        duration_hours=2160.0, seed=19,
        sampling=SamplingParams(max_samples_per_dimm=16),
    )

    with tempfile.TemporaryDirectory() as tmp:
        print("Running the MLOps lifecycle (train -> gate -> serve) ...")
        report = run_lifecycle(
            simulation, protocol, Path(tmp) / "lake", algorithm="lightgbm"
        )

    print(f"\nPlatform:            {report.platform}")
    print(f"Deployed:            {report.deployed} ({report.gate_reason})")
    if report.deployed:
        counts = report.confusion
        print(f"Model version:       v{report.model_version}")
        print(f"Online scorings:     {report.scored}")
        print(f"Alarms raised:       {report.alarms}")
        print(
            f"Serving outcome:     TP={counts.tp} FP={counts.fp} FN={counts.fn} "
            f"(precision={counts.precision:.2f}, recall={counts.recall:.2f})"
        )
        print(f"VIRR:                {report.virr:.3f}")
        print(f"Observed y_c:        {report.observed_cold_fraction:.2f}")
        print(f"Drift-triggered retrain needed: {report.drifted}")
        print("\nDashboard counters:")
        for name, value in sorted(report.dashboard.items()):
            print(f"  {name:<36} {value:.0f}")


if __name__ == "__main__":
    main()
