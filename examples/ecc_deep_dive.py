"""ECC deep dive: why the same fault is fatal on one platform and not another.

Walks the bit-accurate substrate: a (72,64) Hsiao SEC-DED code and a
Chipkill-class Reed-Solomon code decode the same injected error patterns,
then the behavioural platform models show the per-platform hazard of the
paper's two risky signatures.

Run:  python examples/ecc_deep_dive.py
"""

import numpy as np

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap
from repro.ecc.hsiao import HsiaoSecDed
from repro.ecc.models import K920EccModel, PurleyEccModel, WhitleyEccModel
from repro.ecc.reed_solomon import ReedSolomonChipkill, burst_to_symbol_codewords


def pattern_from(positions, device=5):
    return BusErrorPattern.from_device_bitmaps(
        {device: DeviceErrorBitmap.from_positions(positions)}
    )


def decode_with_secded(pattern) -> str:
    code = HsiaoSecDed()
    rng = np.random.default_rng(0)
    outcomes = []
    error = pattern.to_matrix().astype(np.uint8)
    for beat in range(8):
        data = rng.integers(0, 2, 64, dtype=np.uint8)
        word = code.encode(data) ^ error[beat]
        outcomes.append(code.decode(word).status.value)
    worst = ("detected_uncorrectable" if "detected_uncorrectable" in outcomes
             else "corrected" if "corrected" in outcomes else "clean")
    return worst


def decode_with_chipkill(pattern) -> str:
    code = ReedSolomonChipkill()
    rng = np.random.default_rng(0)
    outcomes = []
    for error_symbols in burst_to_symbol_codewords(pattern.to_matrix()):
        data = [int(x) for x in rng.integers(0, 256, code.k)]
        received = [c ^ e for c, e in zip(code.encode(data), error_symbols)]
        outcomes.append(code.decode(received).status.value)
    return ("detected_uncorrectable" if "detected_uncorrectable" in outcomes
            else "corrected" if "corrected" in outcomes else "clean")


def main() -> None:
    cases = {
        "single bit": pattern_from([(0, 0)]),
        "2 bits, same beat": pattern_from([(0, 0), (0, 1)]),
        "Purley-risky (2 DQs, 4-beat interval)": pattern_from(
            [(0, 1), (0, 2), (4, 1), (4, 2)]
        ),
        "whole-chip (4 DQs x 6 beats)": pattern_from(
            [(b, d) for b in range(6) for d in range(4)]
        ),
        "two chips, same beat pair": BusErrorPattern.from_device_bitmaps(
            {
                3: DeviceErrorBitmap.from_positions([(0, 0)]),
                9: DeviceErrorBitmap.from_positions([(1, 2)]),
            }
        ),
    }

    print("Bit-accurate decode (worst outcome across the burst):")
    print(f"{'pattern':<42} {'SEC-DED':<26} {'Chipkill RS'}")
    for name, pattern in cases.items():
        print(
            f"{name:<42} {decode_with_secded(pattern):<26} "
            f"{decode_with_chipkill(pattern)}"
        )

    print("\nBehavioural per-activation UE hazard (the paper's platforms):")
    models = (PurleyEccModel(), WhitleyEccModel(), K920EccModel())
    print(f"{'pattern':<42} " + " ".join(f"{m.name:>14}" for m in models))
    for name, pattern in cases.items():
        hazards = " ".join(
            f"{model.ue_probability(pattern):>14.2e}" for model in models
        )
        print(f"{name:<42} {hazards}")

    print(
        "\nReading: SEC-DED dies on any multi-bit beat; Chipkill shrugs off "
        "whole-chip failures\nbut not two chips in one symbol window. The "
        "platform models encode which residual\npatterns each production "
        "ECC escalates - Purley's blind spot is the 2-DQ stride-4\n"
        "signature, Whitley's is the whole-chip pattern, K920's is only "
        "multi-device."
    )


if __name__ == "__main__":
    main()
