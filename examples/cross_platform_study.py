"""Cross-platform fault study: the paper's Section V analysis end to end.

Simulates all three fleets (Intel Purley, Intel Whitley, Huawei K920),
then regenerates Table I, Figure 4 and Figure 5 and checks Findings 1-3.

Run:  python examples/cross_platform_study.py
Takes a few minutes (scale 0.5 fleets).
"""

from repro.analysis import (
    fig4_series,
    fig5_panels,
    table1_series,
)
from repro.analysis.findings import check_finding1, check_finding2, check_finding3
from repro.evaluation.reporting import render_fig4, render_fig5, render_table1
from repro.simulator import simulate_study


def main() -> None:
    print("Simulating the three platform fleets ...")
    study = simulate_study(scale=0.5, seed=7, duration_hours=2880.0)
    stores = {name: sim.store for name, sim in study.items()}

    print("\n" + render_table1(table1_series(stores)))

    fig4 = fig4_series(stores)
    print("\n" + render_fig4(fig4))

    fig5 = {
        platform: fig5_panels(stores[platform])
        for platform in ("intel_purley", "intel_whitley")
    }
    print("\n" + render_fig5(fig5))

    print("\nFindings:")
    checks = (
        check_finding1(table1_series(stores)),
        check_finding2(fig4),
        check_finding3(fig5),
    )
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"  Finding {check.finding} [{status}]: {check.description}")
        print(f"      {check.details}")


if __name__ == "__main__":
    main()
