"""Cross-platform study: Section V analysis + the transfer matrix.

Runs the paper's headline experiment — train a failure predictor on one
CPU architecture, test it on another — through the scenario API::

    repro run transfer_matrix --set scale=0.5 --set models=lightgbm

then reuses the *same cached campaigns* (one simulation per platform, ever)
to regenerate Table I, Figure 4 and Figure 5 and check Findings 1-3.

Run:  python examples/cross_platform_study.py
Takes a few minutes (scale 0.5 fleets).
"""

from repro.analysis import fig4_series, fig5_panels, table1_series
from repro.analysis.findings import check_finding1, check_finding2, check_finding3
from repro.evaluation.reporting import render_fig4, render_fig5, render_table1
from repro.experiments import ArtifactCache, RunContext, RunSpec, run_spec

SPEC = RunSpec(
    scenario="transfer_matrix",
    models=("lightgbm",),
    scale=0.5,
    hours=2880.0,
    seed=7,
)


def main() -> None:
    cache = ArtifactCache()

    print("Transfer matrix: train on architecture A, test on B ...")
    result = run_spec(SPEC, cache=cache)
    print()
    print(result.render())
    print(cache.render_stats())

    diag = [result.cell(p, p, "lightgbm").result.f1 for p in SPEC.platforms]
    off = [
        cell.result.f1
        for cell in result.cells
        if not cell.is_diagonal and cell.result.supported
    ]
    print(
        f"\nmean F1 — same architecture: {sum(diag) / len(diag):.2f}, "
        f"cross architecture: {sum(off) / len(off):.2f}"
        "  (models do not transfer across CPU architectures)"
    )

    # Section V analysis over the SAME campaigns (served from the cache).
    context = RunContext(SPEC, cache=cache)
    stores = {name: context.simulation(name).store for name in SPEC.platforms}

    print("\n" + render_table1(table1_series(stores)))

    fig4 = fig4_series(stores)
    print("\n" + render_fig4(fig4))

    fig5 = {
        platform: fig5_panels(stores[platform])
        for platform in ("intel_purley", "intel_whitley")
    }
    print("\n" + render_fig5(fig5))

    print("\nFindings:")
    checks = (
        check_finding1(table1_series(stores)),
        check_finding2(fig4),
        check_finding3(fig5),
    )
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"  Finding {check.finding} [{status}]: {check.description}")
        print(f"      {check.details}")


if __name__ == "__main__":
    main()
