"""Tests for per-manufacturer / per-part-number UE breakdowns."""

from repro.analysis.manufacturers import (
    ue_rate_by_manufacturer,
    ue_rate_by_part_number,
)


def test_manufacturer_groups_cover_all_ce_dimms(purley_sim):
    stats = ue_rate_by_manufacturer(purley_sim.store)
    total = sum(stat.dimms for stat in stats.values())
    assert total == len(purley_sim.store.dimm_ids_with_ces())
    for stat in stats.values():
        assert 0.0 <= stat.rate <= 1.0
        assert stat.dimms_with_ue <= stat.dimms


def test_part_number_groups_are_finer_than_manufacturers(purley_sim):
    by_mfr = ue_rate_by_manufacturer(purley_sim.store)
    by_part = ue_rate_by_part_number(purley_sim.store)
    assert len(by_part) >= len(by_mfr)


def test_purley_has_multiple_manufacturers(purley_sim):
    stats = ue_rate_by_manufacturer(purley_sim.store)
    assert len(stats) >= 3  # the Purley mix has 4 vendors
