"""Tests for fault-mode classification, UE rates, bit patterns, Table I."""

import pytest

from repro.analysis import (
    FIG4_CATEGORIES,
    FaultThresholds,
    classify_ces,
    classify_store,
    dataset_stats,
    fig4_series,
    fig5_panels,
    modal_value,
    peak_value,
    relative_ue_rates,
    table1_series,
)
from repro.analysis.findings import check_finding1, check_finding4
from repro.telemetry.records import CERecord


def ce(t, row, column, device=0, bank=0, devices=None, dq=1, beats=1,
       dq_iv=0, beat_iv=0):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id="d0", rank=0, bank=bank,
        row=row, column=column, devices=devices or (device,), dq_count=dq,
        beat_count=beats, dq_interval=dq_iv, beat_interval=beat_iv,
        error_bit_count=dq * beats,
    )


class TestClassification:
    def test_repeated_cell_is_cell_fault(self):
        modes = classify_ces("d0", [ce(1, 5, 5), ce(2, 5, 5)])
        assert modes.has_cell
        assert not modes.has_row
        assert modes.highest_mode == "cell"

    def test_row_fault_needs_multiple_columns(self):
        same_column = [ce(i, 5, 7) for i in range(4)]
        assert not classify_ces("d0", same_column).has_row
        spread = [ce(i, 5, column=i) for i in range(4)]
        assert classify_ces("d0", spread).has_row

    def test_column_fault_needs_multiple_rows(self):
        spread = [ce(i, row=i, column=9) for i in range(4)]
        modes = classify_ces("d0", spread)
        assert modes.has_column
        assert not modes.has_row

    def test_bank_fault_requires_row_and_column_in_same_bank(self):
        records = [ce(i, row=5, column=i) for i in range(4)]  # row fault
        records += [ce(10 + i, row=i, column=9) for i in range(4)]  # col fault
        assert classify_ces("d0", records).has_bank
        # Same patterns in different banks: no bank fault.
        records = [ce(i, row=5, column=i, bank=0) for i in range(4)]
        records += [ce(10 + i, row=i, column=9, bank=1) for i in range(4)]
        assert not classify_ces("d0", records).has_bank

    def test_multi_device_requires_joint_burst(self):
        separate = [ce(1, 1, 1, device=0), ce(2, 2, 2, device=5)]
        assert not classify_ces("d0", separate).is_multi_device
        joint = [ce(1, 1, 1, devices=(0, 5))]
        assert classify_ces("d0", joint).is_multi_device

    def test_categories_always_include_device_axis(self):
        modes = classify_ces("d0", [ce(1, 1, 1)])
        assert "single_device" in modes.categories

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FaultThresholds(cell_ces=0)

    def test_classify_store_covers_all_ce_dimms(self, purley_sim):
        classifications = classify_store(purley_sim.store)
        assert set(classifications) == set(purley_sim.store.dimm_ids_with_ces())


class TestUeRates:
    def test_fig4_has_all_categories(self, purley_sim):
        rates = relative_ue_rates(purley_sim.store)
        assert set(rates) == set(FIG4_CATEGORIES)
        for stat in rates.values():
            assert 0.0 <= stat.rate <= 1.0
            assert stat.dimms_with_ue <= stat.dimms

    def test_fig4_series_per_platform(self, tiny_study):
        series = fig4_series({k: v.store for k, v in tiny_study.items()})
        assert set(series) == set(tiny_study)


class TestBitPatterns:
    def test_modal_value_breaks_ties_upward(self):
        records = [ce(1, 1, 1, dq=1), ce(2, 2, 2, dq=2)]
        assert modal_value(records, "dq_count") == 2

    def test_modal_value_unknown_dimension(self):
        with pytest.raises(KeyError):
            modal_value([ce(1, 1, 1)], "volts")

    def test_fig5_panels_structure(self, purley_sim):
        panels = fig5_panels(purley_sim.store)
        assert set(panels) == {"dq_count", "beat_count", "dq_interval", "beat_interval"}
        total_dimms = len(purley_sim.store.dimm_ids_with_ces())
        assert sum(s.dimms for s in panels["dq_count"].values()) == total_dimms

    def test_peak_value_ignores_tiny_groups(self):
        from repro.analysis.bit_patterns import BitPatternStat

        panel = {
            1: BitPatternStat("dq_count", 1, dimms=100, dimms_with_ue=1),
            4: BitPatternStat("dq_count", 4, dimms=2, dimms_with_ue=2),
        }
        assert peak_value(panel, min_dimms=5) == 1


class TestDatasetStats:
    def test_table1_sums(self, purley_sim):
        stats = dataset_stats("intel_purley", purley_sim.store)
        assert (
            stats.predictable_ue_dimms + stats.sudden_ue_dimms
            == stats.dimms_with_ues
        )
        assert stats.predictable_share + stats.sudden_share == pytest.approx(1.0)

    def test_table1_matches_truth(self, purley_sim):
        stats = dataset_stats("intel_purley", purley_sim.store)
        truth = purley_sim.truth
        assert stats.predictable_ue_dimms == len(truth.predictable_ue_dimms)
        assert stats.sudden_ue_dimms == len(truth.sudden_ue_dimms)

    def test_empty_store(self):
        from repro.telemetry.log_store import LogStore

        stats = dataset_stats("x", LogStore())
        assert stats.dimms_with_ues == 0
        assert stats.predictable_share == 0.0


class TestFindings:
    def test_finding1_ordering_on_tiny_study(self, tiny_study):
        """At test scale the UE counts are small, so assert the ordering of
        predictable shares rather than the strict majorities (the strict
        check_finding1 runs at full scale in the findings benchmark)."""
        stats = table1_series({k: v.store for k, v in tiny_study.items()})
        purley = stats["intel_purley"].predictable_share
        whitley = stats["intel_whitley"].predictable_share
        k920 = stats["k920"].predictable_share
        assert purley > 0.5
        assert whitley < purley
        assert whitley < k920
        assert stats["intel_whitley"].sudden_share >= 0.4

    def test_finding4_check_logic(self):
        good = {"intel_purley": 0.6, "intel_whitley": 0.4, "k920": 0.5}
        assert check_finding4(good).passed
        bad = {"intel_purley": 0.4, "intel_whitley": 0.6, "k920": 0.5}
        assert not check_finding4(bad).passed
