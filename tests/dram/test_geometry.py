"""Unit tests for DRAM geometry and addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import (
    BURST_LENGTH,
    BUS_WIDTH,
    DATA_BITS,
    ECC_BITS,
    X4_DEVICE_WIDTH,
    X4_DEVICES_PER_RANK,
    CellAddress,
    DimmGeometry,
    iter_bank_ids,
)


class TestConstants:
    def test_bus_is_data_plus_ecc(self):
        assert BUS_WIDTH == DATA_BITS + ECC_BITS == 72

    def test_burst_length_is_ddr4_bl8(self):
        assert BURST_LENGTH == 8

    def test_x4_rank_has_18_devices(self):
        assert X4_DEVICES_PER_RANK == 18
        assert X4_DEVICES_PER_RANK * X4_DEVICE_WIDTH == BUS_WIDTH


class TestDimmGeometry:
    def test_defaults_are_consistent(self):
        geometry = DimmGeometry()
        assert geometry.total_devices == 36  # two ranks
        assert geometry.banks == 16
        assert geometry.cells_per_bank == geometry.rows * geometry.columns

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            DimmGeometry(ranks=0)

    def test_rejects_wrong_bus_width(self):
        with pytest.raises(ValueError, match="72-bit bus"):
            DimmGeometry(devices_per_rank=16)

    @pytest.mark.parametrize("field", ["bank_groups", "banks_per_group", "rows", "columns"])
    def test_rejects_nonpositive_dimensions(self, field):
        with pytest.raises(ValueError, match=field):
            DimmGeometry(**{field: 0})

    def test_device_dq_lanes_partition_the_bus(self):
        geometry = DimmGeometry()
        lanes = []
        for device in range(geometry.devices_per_rank):
            lanes.extend(geometry.device_dq_lanes(device))
        assert lanes == list(range(BUS_WIDTH))

    def test_lane_to_device_inverts_device_dq_lanes(self):
        geometry = DimmGeometry()
        for device in range(geometry.devices_per_rank):
            for lane in geometry.device_dq_lanes(device):
                assert geometry.lane_to_device(lane) == device

    def test_lane_to_device_rejects_out_of_range(self):
        geometry = DimmGeometry()
        with pytest.raises(ValueError):
            geometry.lane_to_device(BUS_WIDTH)
        with pytest.raises(ValueError):
            geometry.lane_to_device(-1)

    def test_device_dq_lanes_rejects_bad_device(self):
        with pytest.raises(ValueError):
            DimmGeometry().device_dq_lanes(18)

    def test_validate_address_accepts_bounds(self):
        geometry = DimmGeometry()
        geometry.validate_address(
            CellAddress(rank=1, device=17, bank=15,
                        row=geometry.rows - 1, column=geometry.columns - 1)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 2},
            {"device": 18},
            {"bank": 16},
            {"row": 1 << 17},
            {"column": 1 << 10},
        ],
    )
    def test_validate_address_rejects_out_of_range(self, kwargs):
        base = dict(rank=0, device=0, bank=0, row=0, column=0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            DimmGeometry().validate_address(CellAddress(**base))


class TestCellAddress:
    def test_same_row_requires_matching_row_coordinates(self):
        a = CellAddress(0, 1, 2, 100, 5)
        assert a.same_row(CellAddress(0, 1, 2, 100, 9))
        assert not a.same_row(CellAddress(0, 1, 2, 101, 5))
        assert not a.same_row(CellAddress(0, 2, 2, 100, 5))

    def test_same_column_requires_matching_column(self):
        a = CellAddress(0, 1, 2, 100, 5)
        assert a.same_column(CellAddress(0, 1, 2, 7, 5))
        assert not a.same_column(CellAddress(0, 1, 2, 100, 6))

    def test_same_bank_ignores_row_and_column(self):
        a = CellAddress(0, 1, 2, 100, 5)
        assert a.same_bank(CellAddress(0, 1, 2, 0, 0))
        assert not a.same_bank(CellAddress(1, 1, 2, 100, 5))

    def test_addresses_are_ordered_and_hashable(self):
        a = CellAddress(0, 0, 0, 0, 0)
        b = CellAddress(0, 0, 0, 0, 1)
        assert a < b
        assert len({a, b, a}) == 2


def test_iter_bank_ids_covers_every_bank():
    geometry = DimmGeometry(ranks=1)
    banks = list(iter_bank_ids(geometry))
    assert len(banks) == geometry.devices_per_rank * geometry.banks
    assert len(set(banks)) == len(banks)


@given(
    rank=st.integers(0, 1),
    device=st.integers(0, 17),
    bank=st.integers(0, 15),
    row=st.integers(0, (1 << 17) - 1),
    column=st.integers(0, (1 << 10) - 1),
)
def test_any_in_bounds_address_validates(rank, device, bank, row, column):
    DimmGeometry().validate_address(CellAddress(rank, device, bank, row, column))
