"""Property-based tests tying fault profiles to observable statistics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dram.faults import BitPatternProfile
from repro.simulator.platforms import ARCHETYPES


@st.composite
def profiles(draw):
    n_lanes = draw(st.integers(1, 4))
    lanes = tuple(sorted(draw(
        st.sets(st.integers(0, 3), min_size=n_lanes, max_size=n_lanes)
    )))
    dq_weights = tuple(
        draw(st.floats(0.01, 1.0)) for _ in range(len(lanes))
    )
    n_beats = draw(st.integers(1, 8))
    beat_weights = tuple(draw(st.floats(0.01, 1.0)) for _ in range(n_beats))
    contiguous = draw(st.booleans())
    return BitPatternProfile(
        dq_lanes=lanes,
        dq_count_weights=dq_weights,
        beat_count_weights=beat_weights,
        contiguous_beats=contiguous,
    )


@given(profiles(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_samples_always_within_declared_envelope(profile, seed):
    rng = np.random.default_rng(seed)
    bitmap = profile.sample(rng)
    assert set(bitmap.dqs) <= set(profile.dq_lanes)
    assert 1 <= bitmap.dq_count <= len(profile.dq_lanes)
    assert 1 <= bitmap.beat_count <= len(profile.beat_count_weights)
    assert bitmap.error_bit_count == bitmap.dq_count * bitmap.beat_count


@given(st.sampled_from(sorted(ARCHETYPES)), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_archetype_profiles_sample_cleanly(name, seed):
    rng = np.random.default_rng(seed)
    profile = ARCHETYPES[name].make_profile(rng)
    bitmap = profile.sample(rng)
    assert not bitmap.is_empty


def test_risky_archetype_emits_paper_signature_frequently():
    rng = np.random.default_rng(0)
    profile = ARCHETYPES["row_risky"].make_profile(rng)
    hits = 0
    for _ in range(300):
        bitmap = profile.sample(rng)
        if bitmap.dq_count == 2 and bitmap.beat_interval == 4:
            hits += 1
    assert hits > 150  # the risky signature dominates this archetype


def test_chip_wide_archetype_peaks_at_beat_count_5():
    rng = np.random.default_rng(0)
    profile = ARCHETYPES["chip_wide"].make_profile(rng)
    from collections import Counter

    counts = Counter(profile.sample(rng).beat_count for _ in range(500))
    assert counts.most_common(1)[0][0] == 5
