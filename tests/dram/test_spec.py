"""Unit tests for DIMM/server specs."""

import pytest

from repro.dram.spec import (
    ChipProcess,
    DimmSpec,
    Manufacturer,
    ServerSpec,
    make_part_number,
)


def make_spec(dimm_id="d0", **kwargs):
    defaults = dict(
        dimm_id=dimm_id,
        manufacturer=Manufacturer.VENDOR_A,
        part_number="A032x4-2666-01",
    )
    defaults.update(kwargs)
    return DimmSpec(**defaults)


class TestDimmSpec:
    def test_defaults_valid(self):
        spec = make_spec()
        assert spec.data_width == 4
        assert spec.vendor_code == "A"

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError, match="x4 or x8"):
            make_spec(data_width=16)

    def test_rejects_unknown_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            make_spec(frequency_mts=1600)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_spec(capacity_gb=0)


class TestServerSpec:
    def test_requires_at_least_one_dimm(self):
        with pytest.raises(ValueError, match="at least one"):
            ServerSpec(server_id="s0", platform_name="p", dimms=())

    def test_rejects_duplicate_dimm_ids(self):
        with pytest.raises(ValueError, match="unique"):
            ServerSpec(
                server_id="s0",
                platform_name="p",
                dimms=(make_spec("d0"), make_spec("d0")),
            )

    def test_dimm_ids_preserved_in_order(self):
        server = ServerSpec(
            server_id="s0",
            platform_name="p",
            dimms=(make_spec("d0"), make_spec("d1")),
        )
        assert server.dimm_ids == ("d0", "d1")


def test_part_number_is_deterministic_and_distinct():
    a = make_part_number(Manufacturer.VENDOR_A, 32, 4, 2666, 1)
    b = make_part_number(Manufacturer.VENDOR_A, 32, 4, 2666, 1)
    c = make_part_number(Manufacturer.VENDOR_B, 32, 4, 2666, 1)
    assert a == b
    assert a != c
    assert "2666" in a
