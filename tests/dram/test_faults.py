"""Unit and property tests for fault models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.faults import BitPatternProfile, Fault, FaultMode
from repro.dram.geometry import DimmGeometry


def make_fault(mode=FaultMode.CELL, devices=(3,), **kwargs):
    defaults = dict(
        mode=mode,
        rank=0,
        devices=devices,
        bank=2,
        row=1000,
        column=37,
        pattern_profile=BitPatternProfile(dq_lanes=(0, 1), dq_count_weights=(0.5, 0.5)),
        ce_rate_per_hour=0.1,
    )
    defaults.update(kwargs)
    return Fault(**defaults)


class TestFaultMode:
    def test_hierarchy_levels_increase(self):
        assert (
            FaultMode.CELL.level
            < FaultMode.COLUMN.level
            < FaultMode.ROW.level
            < FaultMode.BANK.level
        )


class TestBitPatternProfile:
    def test_rejects_empty_lanes(self):
        with pytest.raises(ValueError):
            BitPatternProfile(dq_lanes=())

    def test_rejects_duplicate_lanes(self):
        with pytest.raises(ValueError):
            BitPatternProfile(dq_lanes=(1, 1))

    def test_rejects_more_weights_than_lanes(self):
        with pytest.raises(ValueError):
            BitPatternProfile(dq_lanes=(0,), dq_count_weights=(0.5, 0.5))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            BitPatternProfile(dq_lanes=(0,), beat_stride=8)

    def test_stride_4_generates_beat_interval_4(self, rng):
        profile = BitPatternProfile(
            dq_lanes=(0, 1),
            dq_count_weights=(0.0, 1.0),
            beat_count_weights=(0.0, 1.0),
            beat_stride=4,
        )
        for _ in range(50):
            bitmap = profile.sample(rng)
            assert bitmap.beat_interval == 4
            assert bitmap.dq_count == 2

    def test_contiguous_beats_are_adjacent(self, rng):
        profile = BitPatternProfile(
            dq_lanes=(2,),
            beat_count_weights=(0.0, 0.0, 1.0),
            contiguous_beats=True,
        )
        for _ in range(50):
            bitmap = profile.sample(rng)
            beats = bitmap.beats
            assert len(beats) == 3
            assert beats[-1] - beats[0] == 2

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_samples_stay_on_declared_lanes(self, seed):
        rng = np.random.default_rng(seed)
        profile = BitPatternProfile(
            dq_lanes=(1, 3), dq_count_weights=(0.5, 0.5),
            beat_count_weights=(0.3, 0.4, 0.3),
        )
        bitmap = profile.sample(rng)
        assert set(bitmap.dqs) <= {1, 3}


class TestFault:
    def test_rejects_empty_devices(self):
        with pytest.raises(ValueError):
            make_fault(devices=())

    def test_rejects_duplicate_devices(self):
        with pytest.raises(ValueError):
            make_fault(devices=(1, 1))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            make_fault(ce_rate_per_hour=0.0)

    def test_fault_ids_are_unique(self):
        assert make_fault().fault_id != make_fault().fault_id

    def test_cell_fault_always_hits_anchor(self, rng):
        fault = make_fault(mode=FaultMode.CELL)
        geometry = DimmGeometry()
        for _ in range(20):
            address = fault.sample_cell(rng, geometry, device=3)
            assert address.row == 1000
            assert address.column == 37

    def test_row_fault_fixes_row_varies_column(self, rng):
        fault = make_fault(mode=FaultMode.ROW)
        geometry = DimmGeometry()
        columns = {fault.sample_cell(rng, geometry, 3).column for _ in range(50)}
        rows = {fault.sample_cell(rng, geometry, 3).row for _ in range(50)}
        assert rows == {1000}
        assert len(columns) > 5

    def test_column_fault_fixes_column_varies_row(self, rng):
        fault = make_fault(mode=FaultMode.COLUMN)
        geometry = DimmGeometry()
        rows = {fault.sample_cell(rng, geometry, 3).row for _ in range(50)}
        columns = {fault.sample_cell(rng, geometry, 3).column for _ in range(50)}
        assert columns == {37}
        assert len(rows) > 5

    def test_bank_fault_stays_in_block(self, rng):
        fault = make_fault(mode=FaultMode.BANK)
        geometry = DimmGeometry()
        for _ in range(50):
            address = fault.sample_cell(rng, geometry, 3)
            assert 1000 <= address.row < 1000 + fault.block_rows
            assert 37 <= address.column < 37 + fault.block_columns

    def test_single_device_pattern_uses_only_member_device(self, rng):
        fault = make_fault(devices=(5,))
        for _ in range(20):
            assert fault.sample_bus_pattern(rng).devices == (5,)

    def test_multi_device_fault_sometimes_joint(self, rng):
        fault = make_fault(devices=(1, 2, 3), multi_device_joint_prob=0.9)
        counts = [fault.sample_bus_pattern(rng).device_count for _ in range(200)]
        assert max(counts) >= 2
        assert min(counts) >= 1

    def test_zero_joint_prob_never_joint(self, rng):
        fault = make_fault(devices=(1, 2), multi_device_joint_prob=0.0)
        for _ in range(50):
            assert fault.sample_bus_pattern(rng).device_count == 1
