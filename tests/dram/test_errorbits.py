"""Unit and property tests for error-bit patterns."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dram.errorbits import (
    BusErrorPattern,
    DeviceErrorBitmap,
    merge_device_bitmaps,
)

positions = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 3)),
    min_size=1,
    max_size=32,
)


class TestDeviceErrorBitmap:
    def test_from_positions_deduplicates(self):
        bitmap = DeviceErrorBitmap.from_positions([(0, 0), (0, 0), (1, 1)])
        assert bitmap.error_bit_count == 2

    def test_rejects_out_of_range_beat(self):
        with pytest.raises(ValueError, match="beat"):
            DeviceErrorBitmap.from_positions([(8, 0)])

    def test_rejects_out_of_range_dq(self):
        with pytest.raises(ValueError, match="dq"):
            DeviceErrorBitmap.from_positions([(0, 4)])

    def test_counts_and_intervals_match_paper_axes(self):
        # The Purley-risky signature: 2 DQs, 2 beats 4 apart.
        bitmap = DeviceErrorBitmap.from_positions([(0, 1), (0, 2), (4, 1), (4, 2)])
        assert bitmap.dq_count == 2
        assert bitmap.beat_count == 2
        assert bitmap.dq_interval == 1
        assert bitmap.beat_interval == 4

    def test_single_bit_has_zero_intervals(self):
        bitmap = DeviceErrorBitmap.from_positions([(3, 2)])
        assert bitmap.dq_interval == 0
        assert bitmap.beat_interval == 0

    def test_matrix_roundtrip(self):
        bitmap = DeviceErrorBitmap.from_positions([(0, 0), (7, 3), (4, 2)])
        assert DeviceErrorBitmap.from_matrix(bitmap.to_matrix()) == bitmap

    def test_from_matrix_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            DeviceErrorBitmap.from_matrix(np.zeros((4, 8), dtype=bool))

    def test_union_merges_bits(self):
        a = DeviceErrorBitmap.from_positions([(0, 0)])
        b = DeviceErrorBitmap.from_positions([(1, 1)])
        assert a.union(b).error_bit_count == 2

    @given(positions)
    def test_roundtrip_is_identity(self, pos):
        bitmap = DeviceErrorBitmap.from_positions(pos)
        assert DeviceErrorBitmap.from_matrix(bitmap.to_matrix()) == bitmap

    @given(positions)
    def test_intervals_bounded_by_counts(self, pos):
        bitmap = DeviceErrorBitmap.from_positions(pos)
        assert 0 <= bitmap.dq_interval <= 3
        assert 0 <= bitmap.beat_interval <= 7
        assert bitmap.dq_count >= 1
        assert bitmap.dq_interval >= bitmap.dq_count - 1


class TestBusErrorPattern:
    def test_from_device_bitmaps_drops_empty(self):
        pattern = BusErrorPattern.from_device_bitmaps(
            {0: DeviceErrorBitmap(bits=()), 3: DeviceErrorBitmap.from_positions([(0, 0)])}
        )
        assert pattern.devices == (3,)
        assert pattern.is_single_device

    def test_rejects_device_out_of_range(self):
        with pytest.raises(ValueError, match="device"):
            BusErrorPattern.from_device_bitmaps(
                {18: DeviceErrorBitmap.from_positions([(0, 0)])}
            )

    def test_matrix_roundtrip_multi_device(self):
        pattern = BusErrorPattern.from_device_bitmaps(
            {
                2: DeviceErrorBitmap.from_positions([(0, 0), (1, 1)]),
                9: DeviceErrorBitmap.from_positions([(7, 3)]),
            }
        )
        again = BusErrorPattern.from_matrix(pattern.to_matrix())
        assert again == pattern
        assert again.device_count == 2
        assert again.error_bit_count == 3

    def test_bitmap_for_missing_device_is_empty(self):
        pattern = BusErrorPattern.from_device_bitmaps(
            {1: DeviceErrorBitmap.from_positions([(0, 0)])}
        )
        assert pattern.bitmap_for(5).is_empty

    def test_symbols_per_beat_tracks_colliding_devices(self):
        pattern = BusErrorPattern.from_device_bitmaps(
            {
                0: DeviceErrorBitmap.from_positions([(2, 0)]),
                1: DeviceErrorBitmap.from_positions([(2, 3), (5, 0)]),
            }
        )
        per_beat = pattern.symbols_per_beat()
        assert per_beat[2] == (0, 1)
        assert per_beat[5] == (1,)
        assert pattern.max_symbols_in_any_beat == 2

    def test_empty_pattern_properties(self):
        pattern = BusErrorPattern(device_bits=())
        assert pattern.is_empty
        assert pattern.max_symbols_in_any_beat == 0


def test_merge_device_bitmaps_accumulates():
    parts = [
        DeviceErrorBitmap.from_positions([(0, 0)]),
        DeviceErrorBitmap.from_positions([(1, 1)]),
        DeviceErrorBitmap.from_positions([(0, 0), (2, 2)]),
    ]
    merged = merge_device_bitmaps(parts)
    assert merged.error_bit_count == 3
    assert merged.dq_count == 3
