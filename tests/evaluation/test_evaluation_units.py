"""Unit tests for the evaluation protocol, reporting and result containers."""

import numpy as np
import pytest

from repro.evaluation.experiment import MODEL_BUILDERS, MODEL_ORDER, ModelResult
from repro.evaluation.protocol import (
    DEFAULT_PROTOCOL,
    PAPER_PROTOCOL,
    TEST_PROTOCOL,
    ExperimentProtocol,
)
from repro.evaluation.reporting import render_fig4, render_fig5, render_table2
from repro.evaluation.table2 import Table2Results
from repro.analysis.bit_patterns import BitPatternStat
from repro.analysis.ue_rates import UERateStat
from repro.simulator.platforms import PLATFORM_ORDER


class TestProtocol:
    def test_presets_are_distinct_scales(self):
        assert TEST_PROTOCOL.scale < DEFAULT_PROTOCOL.scale <= PAPER_PROTOCOL.scale

    def test_with_windows_overrides_only_named_fields(self):
        protocol = ExperimentProtocol()
        variant = protocol.with_windows(lead_hours=24.0)
        assert variant.labeling.lead_hours == 24.0
        assert (
            variant.labeling.prediction_window_hours
            == protocol.labeling.prediction_window_hours
        )
        assert variant.scale == protocol.scale

    def test_with_windows_changes_horizon(self):
        variant = ExperimentProtocol().with_windows(prediction_window_hours=168.0)
        assert variant.labeling.horizon_hours == pytest.approx(171.0)


class TestModelResult:
    def test_unsupported_renders_as_x(self):
        result = ModelResult(platform="p", model_name="m", supported=False)
        assert result.as_row() == ("X", "X", "X", "X")

    def test_supported_renders_two_decimals(self):
        result = ModelResult(
            platform="p", model_name="m", supported=True,
            precision=0.5, recall=0.25, f1=1 / 3, virr=0.1,
        )
        assert result.as_row() == ("0.50", "0.25", "0.33", "0.10")

    def test_model_order_matches_paper_rows(self):
        assert MODEL_ORDER == (
            "risky_ce_pattern", "random_forest", "lightgbm", "ft_transformer",
        )
        for name in MODEL_ORDER:
            assert name in MODEL_BUILDERS


class TestTable2Results:
    def _results(self):
        results = Table2Results()
        for model, f1s in (("a", (0.6, 0.4, 0.5)), ("b", (0.5, 0.45, 0.55))):
            results.cells[model] = {
                platform: ModelResult(
                    platform=platform, model_name=model, supported=True,
                    precision=0.5, recall=0.5, f1=f1, virr=0.3,
                )
                for platform, f1 in zip(PLATFORM_ORDER, f1s)
            }
        return results

    def test_best_f1_per_platform(self):
        best = self._results().best_f1_per_platform()
        assert best["intel_purley"] == 0.6
        assert best["intel_whitley"] == 0.45
        assert best["k920"] == 0.55

    def test_best_model_per_platform(self):
        best = self._results().best_model_per_platform()
        assert best["intel_purley"] == "a"
        assert best["k920"] == "b"

    def test_unsupported_cells_excluded_from_best(self):
        results = self._results()
        for platform in PLATFORM_ORDER:
            results.cells["a"][platform] = ModelResult(
                platform=platform, model_name="a", supported=False
            )
        assert results.best_model_per_platform()["intel_purley"] == "b"


class TestRendering:
    def test_render_fig4_contains_bars(self):
        series = {
            platform: {
                "cell": UERateStat("cell", 100, 5),
                "multi_device": UERateStat("multi_device", 50, 20),
            }
            for platform in PLATFORM_ORDER
        }
        rendered = render_fig4(series)
        assert "#" in rendered
        assert "multi_device" in rendered

    def test_render_fig5_marks_peak(self):
        panels = {
            "intel_purley": {
                "dq_count": {
                    1: BitPatternStat("dq_count", 1, 100, 1),
                    2: BitPatternStat("dq_count", 2, 50, 20),
                }
            }
        }
        rendered = render_fig5(panels)
        assert "<-- peak" in rendered

    def test_render_table2_includes_paper_reference(self):
        results = Table2Results()
        results.cells["lightgbm"] = {
            platform: ModelResult(
                platform=platform, model_name="lightgbm", supported=True,
                precision=0.5, recall=0.5, f1=0.5, virr=0.4,
            )
            for platform in PLATFORM_ORDER
        }
        rendered = render_table2(results)
        assert "(paper)" in rendered
        assert "0.64" in rendered  # the paper's Purley LightGBM F1
