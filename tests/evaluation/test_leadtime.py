"""Tests for the lead-time analysis."""

import numpy as np
import pytest

from repro.evaluation.leadtime import LeadTimeStats, achieved_lead_times
from repro.features.sampling import SampleSet


def make_samples(dimm_ids, times):
    n = len(dimm_ids)
    return SampleSet(
        X=np.zeros((n, 1)),
        y=np.zeros(n, dtype=int),
        times=np.asarray(times, dtype=float),
        dimm_ids=np.asarray(dimm_ids, dtype=object),
        feature_names=["f"],
    )


def test_lead_time_uses_first_alarm():
    samples = make_samples(["a", "a", "b"], [10.0, 20.0, 15.0])
    scores = np.array([0.9, 0.95, 0.2])
    stats = achieved_lead_times(samples, scores, 0.5, {"a": 50.0, "b": 60.0})
    assert stats.count == 1
    assert stats.lead_hours == (40.0,)  # first alarm at t=10, UE at 50
    assert stats.median_hours == 40.0


def test_false_positives_and_post_ue_alarms_excluded():
    samples = make_samples(["fp", "late"], [10.0, 100.0])
    scores = np.array([0.9, 0.9])
    stats = achieved_lead_times(
        samples, scores, 0.5, {"late": 90.0}  # alarm after the UE
    )
    assert stats.count == 0
    assert stats.fraction_at_least(3.0) == 0.0


def test_fraction_at_least_threshold():
    stats = LeadTimeStats(lead_hours=(1.0, 5.0, 10.0, 100.0))
    assert stats.fraction_at_least(3.0) == pytest.approx(0.75)
    assert stats.min_hours == 1.0


def test_shape_mismatch_rejected():
    samples = make_samples(["a"], [1.0])
    with pytest.raises(ValueError):
        achieved_lead_times(samples, np.zeros(2), 0.5, {})


def test_paper_lead_requirement_on_simulated_data(purley_sim, tiny_protocol):
    """Most catches should give at least the paper's 3-hour lead."""
    from repro.evaluation.experiment import MODEL_BUILDERS, PlatformExperiment

    experiment = PlatformExperiment.prepare(purley_sim, tiny_protocol)
    model = MODEL_BUILDERS["lightgbm"](experiment.samples.feature_names, 7)
    model.fit(experiment.train.X, experiment.train.y,
              eval_set=(experiment.validation.X, experiment.validation.y))
    scores = model.predict_proba(experiment.test.X)
    ue_hours = {
        ue.dimm_id: ue.timestamp_hours for ue in purley_sim.store.ues
    }
    stats = achieved_lead_times(
        experiment.test, scores, float(np.quantile(scores, 0.9)), ue_hours
    )
    if stats.count:
        assert stats.fraction_at_least(3.0) > 0.5
