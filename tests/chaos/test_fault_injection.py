"""Fault injector: determinism, spec validation, conservation accounting."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.faults import (
    CorruptSpec,
    DelaySpec,
    DropSpec,
    DuplicateSpec,
    OutageSpec,
    TelemetryFaultInjector,
)
from repro.telemetry.log_store import iter_stream


def _specs(rate, max_delay_hours=6.0, outage_hours=24.0):
    return (
        DropSpec(rate=rate),
        DuplicateSpec(rate=rate / 2.0),
        DelaySpec(rate=rate, max_delay_hours=max_delay_hours),
        CorruptSpec(rate=rate),
        OutageSpec(rate=rate, duration_hours=outage_hours),
    )


def _fingerprint(store):
    """Order-sensitive identity of every record in merged-stream order."""
    return [dataclasses.astuple(record) for record in iter_stream(store)]


@pytest.fixture(scope="module")
def purley_store(tiny_study):
    return tiny_study["intel_purley"].store


class TestSpecValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan")])
    @pytest.mark.parametrize(
        "spec_type",
        [DropSpec, DuplicateSpec, DelaySpec, CorruptSpec, OutageSpec],
    )
    def test_rates_outside_unit_interval_rejected(self, spec_type, rate):
        with pytest.raises(ValueError):
            spec_type(rate=rate)

    def test_negative_delay_bound_rejected(self):
        with pytest.raises(ValueError):
            DelaySpec(rate=0.1, max_delay_hours=-1.0)

    def test_negative_outage_duration_rejected(self):
        with pytest.raises(ValueError):
            OutageSpec(rate=0.1, duration_hours=-1.0)

    def test_duplicate_spec_types_rejected(self):
        with pytest.raises(ValueError):
            TelemetryFaultInjector([DropSpec(0.1), DropSpec(0.2)])

    def test_unknown_spec_type_rejected(self):
        with pytest.raises(TypeError):
            TelemetryFaultInjector([object()])


class TestDeterminism:
    """Same (specs, seed) -> bit-identical faulted campaign.

    This is the property the whole ``chaos_replay`` sweep leans on: the
    injector is a pure function of its seed, so every curve point is
    reproducible and checkpoint/resume replays see the same stream.
    """

    @settings(max_examples=8, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_same_seed_same_campaign(self, tiny_study, rate, seed):
        store = tiny_study["intel_purley"].store
        first_store, first = TelemetryFaultInjector(
            _specs(rate), seed=seed
        ).inject(store)
        second_store, second = TelemetryFaultInjector(
            _specs(rate), seed=seed
        ).inject(store)
        assert first.to_dict() == second.to_dict()
        assert _fingerprint(first_store) == _fingerprint(second_store)

    def test_different_seeds_diverge(self, purley_store):
        first_store, _ = TelemetryFaultInjector(
            _specs(0.1), seed=1
        ).inject(purley_store)
        second_store, _ = TelemetryFaultInjector(
            _specs(0.1), seed=2
        ).inject(purley_store)
        assert _fingerprint(first_store) != _fingerprint(second_store)

    def test_input_store_untouched(self, purley_store):
        before = _fingerprint(purley_store)
        TelemetryFaultInjector(_specs(0.2), seed=3).inject(purley_store)
        assert _fingerprint(purley_store) == before


class TestAccounting:
    def test_zero_rate_is_passthrough(self, purley_store):
        faulted, report = TelemetryFaultInjector(
            _specs(0.0), seed=0
        ).inject(purley_store)
        assert report.dropped == report.duplicated == report.corrupted == 0
        assert report.outage_dropped == 0 and report.delayed == 0
        assert _fingerprint(faulted) == _fingerprint(purley_store)

    def test_record_conservation(self, purley_store):
        faulted, report = TelemetryFaultInjector(
            _specs(0.1), seed=11
        ).inject(purley_store)
        assert report.input_records == len(purley_store)
        assert report.output_records == len(faulted)
        assert report.output_records == (
            report.input_records
            - report.dropped
            - report.outage_dropped
            + report.duplicated
        )
        assert len(faulted.configs) == len(purley_store.configs)

    def test_output_is_time_sorted(self, purley_store):
        faulted, _ = TelemetryFaultInjector(
            _specs(0.2), seed=5
        ).inject(purley_store)
        times = [record.timestamp_hours for record in iter_stream(faulted)]
        # Corrupted timestamps can go negative; sortedness is on the raw
        # ingested order, which iter_stream re-sorts — assert monotone.
        assert times == sorted(times)

    def test_outage_drops_every_record_in_window(self, purley_store):
        injector = TelemetryFaultInjector(
            [OutageSpec(rate=1.0, duration_hours=48.0)], seed=9
        )
        faulted, report = injector.inject(purley_store)
        assert report.outage_dropped > 0
        assert report.outage_seconds > 0
        for server, (start, stop) in report.outage_windows.items():
            assert not [
                record
                for record in iter_stream(faulted)
                if record.server_id == server
                and start <= record.timestamp_hours < stop
            ]
