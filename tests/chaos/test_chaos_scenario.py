"""The chaos_replay scenario: sweep shape, invariants, clean-point parity."""

import pytest

from repro.chaos.scenario import render_chaos_extras
from repro.experiments.cache import ArtifactCache
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec


def _spec(tiny_protocol, **params):
    defaults = {
        "fault_rates": (0.0, 0.02, 0.05),
        "batch_size": 64,
        "engine": "batched",
    }
    defaults.update(params)
    return RunSpec(
        scenario="chaos_replay",
        platforms=("intel_purley",),
        models=("lightgbm",),
        scale=tiny_protocol.scale,
        hours=tiny_protocol.duration_hours,
        seed=tiny_protocol.seed,
        max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
        params=defaults,
    )


def _run(tiny_study, tiny_protocol, spec):
    cache = ArtifactCache()
    context = RunContext(spec, cache=cache)
    cache.put_simulation(
        context.simulation_key("intel_purley"), tiny_study["intel_purley"]
    )
    return run_spec(spec, protocol=tiny_protocol, cache=cache)


class TestChaosScenario:
    @pytest.fixture(scope="class")
    def result(self, tiny_study, tiny_protocol):
        return _run(tiny_study, tiny_protocol, _spec(tiny_protocol))

    @pytest.fixture(scope="class")
    def payload(self, result):
        return result.extras["chaos_replay"]["intel_purley"]["lightgbm"]

    def test_sweep_has_one_point_per_rate(self, payload):
        assert payload["fault_rates"] == [0.0, 0.02, 0.05]
        assert len(payload["curve"]) == 3
        assert [p["fault_rate"] for p in payload["curve"]] == [0.0, 0.02, 0.05]

    def test_dead_letters_equal_injected_corruptions(self, payload):
        """The exact invariant the CI smoke job gates on."""
        for point in payload["curve"]:
            assert point["dead_letter"] == point["injection"]["corrupted"]

    def test_clean_point_sees_no_faults(self, payload):
        clean = payload["curve"][0]
        assert clean["dead_letter"] == 0
        assert clean["injection"]["dropped"] == 0
        assert clean["injection"]["corrupted"] == 0
        assert clean["health"]["rejected_events"] == 0
        assert clean["health"]["outage_seconds"] == 0.0

    def test_faulted_points_report_degradation(self, payload):
        worst = payload["curve"][-1]
        injection = worst["injection"]
        assert injection["dropped"] > 0
        assert injection["corrupted"] > 0
        assert worst["health"]["rejected_events"] == injection["corrupted"]
        assert worst["report"]["events"] < payload["curve"][0]["report"]["events"]

    def test_cell_comes_from_the_clean_point(self, result, payload):
        cell = result.cell("intel_purley", "intel_purley", "lightgbm")
        assert cell.result.supported
        clean = payload["curve"][0]
        assert cell.result.precision == clean["alarms"]["precision"]
        assert cell.result.recall == clean["alarms"]["recall"]

    def test_every_point_settles_costs(self, payload):
        for point in payload["curve"]:
            assert "total_cost" in point["cost"]
            assert "savings_fraction" in point["cost"]

    def test_render_mentions_every_rate(self, result):
        text = render_chaos_extras(result.extras)
        assert "CHAOS REPLAY" in text
        for rate in (0.0, 0.02, 0.05):
            assert f"rate={rate:.3f}" in text

    def test_clean_point_matches_streaming_replay(
        self, tiny_study, tiny_protocol, payload
    ):
        """Fault rate 0.0 is bit-identical to a plain streaming_replay run
        of the same spec — the injector-disabled parity guarantee."""
        spec = RunSpec(
            scenario="streaming_replay",
            platforms=("intel_purley",),
            models=("lightgbm",),
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
            max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
            params={"batch_size": 64, "engine": "batched"},
        )
        streaming = _run(tiny_study, tiny_protocol, spec)
        reference = streaming.extras["streaming_replay"]["intel_purley"][
            "lightgbm"
        ]["streaming"]
        clean = payload["curve"][0]["report"]
        assert clean["alarms"] == reference["alarms"]
        assert clean["scored"] == reference["scored"]
        assert clean["events"] == reference["events"]

    def test_empty_rate_list_rejected(self, tiny_study, tiny_protocol):
        spec = _spec(tiny_protocol, fault_rates=())
        with pytest.raises(ValueError, match="at least one fault rate"):
            _run(tiny_study, tiny_protocol, spec)

    def test_unknown_engine_rejected(self, tiny_study, tiny_protocol):
        spec = _spec(tiny_protocol, engine="warp")
        with pytest.raises(ValueError, match="unknown replay engine"):
            _run(tiny_study, tiny_protocol, spec)
