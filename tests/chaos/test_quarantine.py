"""Quarantine: clean-run identity, typed rejects, dead-letter accounting."""

import pytest

from repro.chaos.faults import CorruptSpec, TelemetryFaultInjector
from repro.chaos.quarantine import (
    DEAD_LETTER_TOPIC,
    MAX_COORDINATE,
    RejectReason,
    quarantine_columns,
)
from repro.streaming.bus import EventBus
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord, DimmConfigRecord


def _config(dimm="d0"):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer="A", part_number="pn", capacity_gb=32, data_width=4,
        frequency_mts=2666, chip_process="1y",
    )


def _ce(t=1.0, dimm="d0", **overrides):
    payload = dict(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )
    payload.update(overrides)
    return CERecord(**payload)


def _store(records):
    store = LogStore()
    store.add_config(_config())
    store.ingest_bulk(records)
    return store


class TestCleanIdentity:
    def test_clean_columns_returned_by_identity(self, tiny_study):
        columns = tiny_study["intel_purley"].store.columns
        filtered, report = quarantine_columns(columns)
        assert filtered is columns  # the bit-for-bit clean-run guarantee
        assert report.total == 0
        assert report.by_reason == {} and report.by_kind == {}

    def test_clean_columns_publish_nothing(self, tiny_study):
        bus = EventBus()
        quarantine_columns(tiny_study["intel_purley"].store.columns, bus=bus)
        assert bus.counts().get(DEAD_LETTER_TOPIC, 0) == 0


class TestRejects:
    @pytest.mark.parametrize(
        "overrides, reason",
        [
            ({"timestamp_hours": -5.0}, RejectReason.BAD_TIMESTAMP),
            ({"row": -3}, RejectReason.BAD_COORDINATE),
            ({"column": MAX_COORDINATE + 7}, RejectReason.BAD_COORDINATE),
            ({"dq_count": -1}, RejectReason.BAD_COUNT),
            ({"beat_count": -4}, RejectReason.BAD_COUNT),
        ],
    )
    def test_bad_ce_quarantined_with_typed_reason(self, overrides, reason):
        store = _store([_ce(1.0), _ce(2.0, **overrides), _ce(3.0)])
        bus = EventBus()
        filtered, report = quarantine_columns(store.columns, bus=bus)
        assert filtered is not store.columns
        assert len(filtered.ces) == 2
        assert report.total == 1
        assert report.by_reason == {reason.value: 1}
        assert report.by_kind == {"ce": 1}
        assert bus.counts()[DEAD_LETTER_TOPIC] == 1

    def test_filtered_columns_share_vocabularies(self):
        store = _store([_ce(1.0), _ce(2.0, row=-1)])
        filtered, _ = quarantine_columns(store.columns)
        assert filtered.dimms is store.columns.dimms
        assert filtered.servers is store.columns.servers

    def test_dead_letter_payload_names_the_dimm(self):
        store = _store([_ce(1.0), _ce(2.0, dq_count=-9)])
        bus = EventBus()
        letters = []
        bus.subscribe(DEAD_LETTER_TOPIC, lambda topic, msg: letters.append(msg))
        quarantine_columns(store.columns, bus=bus)
        assert len(letters) == 1
        assert letters[0]["kind"] == "ce"
        assert letters[0]["reason"] == RejectReason.BAD_COUNT.value
        assert letters[0]["dimm"] == "d0"
        assert letters[0]["timestamp_hours"] == 2.0


class TestInjectorQuarantineContract:
    def test_every_corruption_is_detected(self, tiny_study):
        """dead-letter count == injected corrupt count, exactly.

        This is the CI chaos-smoke invariant: :func:`_corrupt_ce` only
        produces detectably-invalid records, and quarantine catches each.
        """
        store = tiny_study["intel_purley"].store
        faulted, injection = TelemetryFaultInjector(
            [CorruptSpec(rate=0.1)], seed=21
        ).inject(store)
        assert injection.corrupted > 0
        bus = EventBus()
        _, report = quarantine_columns(faulted.columns, bus=bus)
        assert report.total == injection.corrupted
        assert bus.counts()[DEAD_LETTER_TOPIC] == injection.corrupted
