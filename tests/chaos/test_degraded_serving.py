"""Degraded serving: last-known score under a staleness budget, then the
model-free risky-CE heuristic — scoring never goes down with the model."""

import numpy as np
import pytest

from repro.baselines.risky_ce import heuristic_risk_score
from repro.features.pipeline import FeaturePipeline
from repro.features.windows import AppendableDimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord, DimmConfigRecord


class _FlakyModel:
    """Scores a constant until ``fail`` is flipped, then raises."""

    def __init__(self, score: float):
        self.score = score
        self.fail = False

    def predict_proba(self, X) -> np.ndarray:
        if self.fail:
            raise RuntimeError("model backend down")
        return np.full(np.asarray(X).shape[0], self.score)


def make_ce(t, dimm="d0", **overrides):
    payload = dict(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )
    payload.update(overrides)
    return CERecord(**payload)


def make_config(dimm="d0"):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer="A", part_number="pn", capacity_gb=32, data_width=4,
        frequency_mts=2666, chip_process="1y",
    )


def _service(model, staleness_budget_hours=5.0, threshold=2.0):
    store = LogStore()
    store.add_config(make_config())
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    registry = ModelRegistry()
    service = OnlinePredictionService(
        FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
        min_ces_before_scoring=2, rescore_interval_hours=0.0,
        staleness_budget_hours=staleness_budget_hours,
    )
    service.register_config("d0", make_config())
    version = registry.register(
        "intel_purley", "flaky", model, threshold, {"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return service


class TestDegradationLadder:
    def test_stale_score_served_within_budget(self):
        model = _FlakyModel(0.7)
        service = _service(model, staleness_budget_hours=5.0)
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))  # fresh score: 0.7 cached
        assert service.scored == 1 and service.extract_errors == 0
        model.fail = True
        service.observe(make_ce(4.0))  # age 2h <= 5h budget
        assert service.extract_errors == 1
        assert service.fallback_stale == 1
        assert service.fallback_heuristic == 0
        assert service.scored == 2  # degraded scores still count as served

    def test_heuristic_beyond_budget(self):
        model = _FlakyModel(0.7)
        service = _service(model, staleness_budget_hours=5.0)
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))
        model.fail = True
        service.observe(make_ce(20.0))  # age 18h > 5h budget
        assert service.fallback_stale == 0
        assert service.fallback_heuristic == 1

    def test_no_prior_score_goes_straight_to_heuristic(self):
        model = _FlakyModel(0.7)
        model.fail = True  # dead from the first scored CE
        service = _service(model, staleness_budget_hours=24.0)
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))
        assert service.fallback_stale == 0
        assert service.fallback_heuristic == 1
        assert service.scored == 1

    def test_zero_budget_disables_stale_tier(self):
        model = _FlakyModel(0.7)
        service = _service(model, staleness_budget_hours=0.0)
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))
        model.fail = True
        service.observe(make_ce(2.5))
        assert service.fallback_stale == 0
        assert service.fallback_heuristic == 1

    def test_recovery_resumes_fresh_scoring(self):
        model = _FlakyModel(0.7)
        service = _service(model, staleness_budget_hours=5.0)
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))
        model.fail = True
        service.observe(make_ce(3.0))
        model.fail = False
        service.observe(make_ce(4.0))
        assert service.scored == 3
        assert service.extract_errors == 1  # only the one degraded CE
        state = service._states["d0"]
        assert state.last_score == 0.7
        assert state.last_score_hour == 4.0

    def test_degraded_score_can_still_alarm(self):
        model = _FlakyModel(0.9)
        service = _service(model, staleness_budget_hours=5.0, threshold=0.5)
        service.observe(make_ce(1.0))
        alarm = service.observe(make_ce(2.0))
        assert alarm is not None and alarm.score == 0.9
        service.alarm_system.acknowledge("d0")
        service._states["d0"].alarmed = False
        model.fail = True
        stale_alarm = service.observe(make_ce(3.0))
        assert stale_alarm is not None
        assert stale_alarm.score == 0.9  # the cached last-known score


class TestHeuristicScore:
    def _history(self, ces):
        history = AppendableDimmHistory("d0")
        for ce in ces:
            history.append_ce(ce)
        return history.view()

    def test_empty_history_scores_zero(self):
        assert heuristic_risk_score(self._history([])) == 0.0

    def test_riskier_history_scores_higher(self):
        mild = self._history([make_ce(1.0)])
        risky = self._history(
            [
                make_ce(float(t), devices=(0, 1), dq_count=3, beat_count=6)
                for t in range(1, 30)
            ]
        )
        assert 0.0 <= heuristic_risk_score(mild) < heuristic_risk_score(risky)

    def test_score_is_bounded(self):
        extreme = self._history(
            [
                make_ce(float(t), devices=(0, 1, 2), dq_count=9, beat_count=9)
                for t in range(1, 200)
            ]
        )
        assert heuristic_risk_score(extreme) <= 1.0
