"""Crashed-worker recovery in the sharded feature pass (`_shard_result`)."""

import concurrent.futures
import pickle

import pytest

import repro.features.pipeline as pipeline_module
from repro.features.pipeline import _shard_result


class _Future:
    """Scripted future: yields each outcome (value or raised exception)."""

    def __init__(self, *outcomes):
        self._outcomes = list(outcomes)

    def result(self):
        outcome = self._outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class _Pool:
    """Scripted pool: each submit pops the next future (or raises)."""

    def __init__(self, *futures):
        self._futures = list(futures)
        self.submitted = []

    def submit(self, fn, payload):
        self.submitted.append((fn, payload))
        outcome = self._futures.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


@pytest.fixture()
def inline_extract(monkeypatch):
    calls = []

    def fake_extract(payload):
        calls.append(payload)
        return ("inline", payload)

    monkeypatch.setattr(pipeline_module, "_extract_payload", fake_extract)
    return calls


PAYLOAD = ("pipeline", "shard", "configs", "jitters", 100.0)


class TestShardResult:
    def test_healthy_future_passes_through(self, inline_extract):
        pool = _Pool()
        assert _shard_result(pool, PAYLOAD, _Future("ok")) == "ok"
        assert pool.submitted == [] and inline_extract == []

    def test_infra_failure_resubmits_with_backoff(self, inline_extract):
        retry = _Future("recovered")
        pool = _Pool(retry)
        result = _shard_result(
            pool, PAYLOAD, _Future(OSError("worker killed")), backoff=0.0
        )
        assert result == "recovered"
        assert pool.submitted == [(pipeline_module._extract_payload, PAYLOAD)]
        assert inline_extract == []  # worker recovered, no inline work

    @pytest.mark.parametrize(
        "error",
        [
            OSError("pipe dropped"),
            pickle.PicklingError("bad payload"),
            MemoryError(),
        ],
    )
    def test_exhausted_retries_reassign_inline(self, inline_extract, error):
        pool = _Pool(_Future(error), _Future(error))
        result = _shard_result(
            pool, PAYLOAD, _Future(error), retries=2, backoff=0.0
        )
        assert result == ("inline", PAYLOAD)
        assert inline_extract == [PAYLOAD]

    def test_pool_shutdown_mid_retry_reassigns_inline(self, inline_extract):
        pool = _Pool(RuntimeError("cannot schedule new futures"))
        result = _shard_result(
            pool, PAYLOAD, _Future(OSError("worker killed")), backoff=0.0
        )
        assert result == ("inline", PAYLOAD)
        assert inline_extract == [PAYLOAD]

    def test_broken_pool_propagates_to_pool_fallback(self, inline_extract):
        broken = concurrent.futures.BrokenExecutor("pool died")
        with pytest.raises(concurrent.futures.BrokenExecutor):
            _shard_result(_Pool(), PAYLOAD, _Future(broken), backoff=0.0)
        assert inline_extract == []

    def test_genuine_bug_propagates_immediately(self, inline_extract):
        pool = _Pool()
        with pytest.raises(ValueError, match="deterministic bug"):
            _shard_result(
                pool, PAYLOAD, _Future(ValueError("deterministic bug"))
            )
        assert pool.submitted == [] and inline_extract == []
