"""Checkpoint/resume: a killed replay resumes bit-identically, both engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.checkpoint import ReplayCheckpointer, load_checkpoint
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import ActionBudget, PolicyEngine
from repro.fleetops.stream import merge_fleet_streams
from repro.streaming.bus import EventBus
from repro.streaming.replay import REPLAY_ENGINES, ReplayEngine

THRESHOLD = 0.985


class _EchoModel:
    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="module")
def purley(tiny_study):
    simulation = tiny_study["intel_purley"]
    pipeline = FeaturePipeline()
    pipeline.fit(simulation.store)
    return simulation, pipeline


def _engine(simulation, pipeline, **kwargs):
    defaults = dict(
        configs=simulation.store.configs,
        labeling=LabelingParams(),
        bus=EventBus(),
        rescore_interval_hours=0.0,
        batch_size=64,
        collect_scores=True,
    )
    defaults.update(kwargs)
    return ReplayEngine(
        pipeline, _EchoModel(), THRESHOLD, "intel_purley", **defaults
    )


def _incidents(engine):
    return [
        (inc.dimm_id, inc.opened_hour, inc.score, inc.status)
        for inc in engine.alarms.incidents
    ]


_TIMING_KEYS = {
    "seconds", "predict_seconds", "events_per_second", "scores_per_second",
    "stage_seconds",
}


def _strip_timing(payload):
    """Report payload minus wall-clock fields (the one documented
    exception to resumed-run bit-identity)."""
    if isinstance(payload, dict):
        return {
            key: _strip_timing(value)
            for key, value in payload.items()
            if key not in _TIMING_KEYS
        }
    if isinstance(payload, list):
        return [_strip_timing(item) for item in payload]
    return payload


class TestCheckpointer:
    def test_every_needs_a_path(self):
        with pytest.raises(ValueError):
            ReplayCheckpointer(every=10)

    def test_kind_and_engine_must_match(self, tmp_path, purley):
        simulation, pipeline = purley
        path = tmp_path / "ckpt.pkl"
        engine = _engine(simulation, pipeline, engine="batched")
        engine.replay(simulation.store, checkpoint_every=50,
                      checkpoint_path=path, halt_after=60)
        snap = load_checkpoint(path)
        assert snap["kind"] == "replay" and snap["engine"] == "batched"
        with pytest.raises(ValueError, match="kind="):
            ReplayCheckpointer(resume_from=path, engine="batched",
                               kind="fleet")
        with pytest.raises(ValueError, match="engine="):
            ReplayCheckpointer(resume_from=path, engine="per_event",
                               kind="replay")

    def test_version_check(self, tmp_path):
        import pickle

        bad = tmp_path / "bad.pkl"
        bad.write_bytes(pickle.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(bad)


class TestReplayResume:
    """Kill at an arbitrary point; the resumed run matches the clean run."""

    @pytest.fixture(scope="class")
    def full_runs(self, purley):
        simulation, pipeline = purley
        runs = {}
        for kind in REPLAY_ENGINES:
            engine = _engine(simulation, pipeline, engine=kind)
            report = engine.replay(simulation.store, model_name="echo")
            runs[kind] = (engine, report)
        return runs

    @pytest.mark.parametrize("kind", REPLAY_ENGINES)
    def test_halt_then_resume_is_bit_identical(
        self, tmp_path, purley, full_runs, kind
    ):
        simulation, pipeline = purley
        full_engine, full = full_runs[kind]
        path = tmp_path / f"{kind}.pkl"
        halted_engine = _engine(simulation, pipeline, engine=kind)
        halted = halted_engine.replay(
            simulation.store, model_name="echo",
            checkpoint_every=40, checkpoint_path=path, halt_after=137,
        )
        assert halted.halted
        assert not full.halted
        resumed_engine = _engine(simulation, pipeline, engine=kind)
        resumed = resumed_engine.replay(
            simulation.store, model_name="echo", resume_from=path
        )
        assert not resumed.halted
        assert resumed_engine.score_log == full_engine.score_log
        assert _incidents(resumed_engine) == _incidents(full_engine)
        assert resumed.alarms == full.alarms
        assert resumed.bus_counts == full.bus_counts
        assert resumed.scored == full.scored
        assert _strip_timing(resumed.to_dict()) == _strip_timing(
            full.to_dict()
        )

    @settings(max_examples=4, deadline=None)
    @given(halt_after=st.integers(min_value=1, max_value=400))
    def test_any_kill_point_resumes_exactly(
        self, tmp_path_factory, purley, full_runs, halt_after
    ):
        """Property form of the acceptance bar, on the reference engine:
        killing after *any* number of processed entries and resuming
        reproduces the uninterrupted score log and alarms."""
        simulation, pipeline = purley
        full_engine, full = full_runs["per_event"]
        path = tmp_path_factory.mktemp("ckpt") / "kill.pkl"
        halted_engine = _engine(simulation, pipeline, engine="per_event")
        halted_engine.replay(
            simulation.store, model_name="echo",
            checkpoint_path=path, halt_after=halt_after,
        )
        resumed_engine = _engine(simulation, pipeline, engine="per_event")
        resumed = resumed_engine.replay(
            simulation.store, model_name="echo", resume_from=path
        )
        assert resumed_engine.score_log == full_engine.score_log
        assert resumed.alarms == full.alarms
        assert resumed.bus_counts == full.bus_counts

    def test_double_kill_chain(self, tmp_path, purley, full_runs):
        """Kill, resume, kill again, resume again — still bit-identical."""
        simulation, pipeline = purley
        full_engine, full = full_runs["per_event"]
        path = tmp_path / "chain.pkl"
        first = _engine(simulation, pipeline, engine="per_event")
        first.replay(simulation.store, model_name="echo",
                     checkpoint_path=path, halt_after=60)
        second = _engine(simulation, pipeline, engine="per_event")
        report = second.replay(simulation.store, model_name="echo",
                               resume_from=path, checkpoint_path=path,
                               halt_after=90)
        assert report.halted
        third = _engine(simulation, pipeline, engine="per_event")
        final = third.replay(simulation.store, model_name="echo",
                             resume_from=path)
        assert third.score_log == full_engine.score_log
        assert final.alarms == full.alarms
        assert final.bus_counts == full.bus_counts


class TestFleetResume:
    """The fleet engine's resumed run reproduces score logs, alarms,
    actions and settled cost digests exactly."""

    def _parts(self, tiny_study):
        pipelines = {}
        assignments = {}
        model = _EchoModel()
        for name, simulation in tiny_study.items():
            pipeline = FeaturePipeline()
            pipeline.fit(simulation.store)
            pipelines[name] = pipeline
            assignments[name] = ServingAssignment(
                platform=name, model_name="echo", train_platform=name,
                model=model, threshold=THRESHOLD, pipeline=pipeline,
                configs=simulation.store.configs,
                live_from_hour=0.6 * simulation.duration_hours,
            )
        stores = {name: sim.store for name, sim in tiny_study.items()}
        return assignments, stores

    def _run(self, assignments, stores, engine_kind, **replay_kwargs):
        engine = FleetReplayEngine(
            assignments,
            labeling=LabelingParams(),
            policy=PolicyEngine(budget=ActionBudget(), seed=7),
            rescore_interval_hours=0.0,
            batch_size=64,
            collect_scores=True,
            engine=engine_kind,
        )
        stream = merge_fleet_streams(
            stores, decode_payloads=(engine_kind != "batched")
        )
        report = engine.replay(stream, stores, **replay_kwargs)
        return engine, report

    @pytest.mark.parametrize("kind", REPLAY_ENGINES)
    def test_halt_then_resume_matches_uninterrupted(
        self, tmp_path, tiny_study, kind
    ):
        assignments, stores = self._parts(tiny_study)
        full_engine, full = self._run(assignments, stores, kind)
        path = tmp_path / f"fleet-{kind}.pkl"
        _, halted = self._run(
            assignments, stores, kind,
            checkpoint_every=64, checkpoint_path=path, halt_after=211,
        )
        assert halted.halted
        assert not halted.costs  # partial report: nothing settled
        resumed_engine, resumed = self._run(
            assignments, stores, kind, resume_from=path
        )
        assert resumed_engine.score_logs == full_engine.score_logs
        assert _strip_timing(resumed.to_dict()) == _strip_timing(
            full.to_dict()
        )
        # The money columns, spelled out: settled economics and actions.
        assert resumed.costs == full.costs
        assert resumed.fleet_cost == full.fleet_cost
        assert resumed.actions == full.actions
        assert resumed.bus_counts == full.bus_counts
