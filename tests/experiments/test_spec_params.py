"""--set coercion for nested JSON params: merge, round-trip, clear errors."""

import pytest

from repro.experiments.spec import RunSpec


class TestDottedParamsOverrides:
    def test_dotted_path_builds_nested_dicts(self):
        spec = RunSpec().with_overrides(
            ["params.budget.vm_migrate=2", "params.budget.window_hours=12.5"]
        )
        assert spec.params == {
            "budget": {"vm_migrate": 2, "window_hours": 12.5}
        }

    def test_json_values_parse_with_types(self):
        spec = RunSpec().with_overrides(
            [
                'params.assignments={"k920": {"train_platform": "intel_purley"}}',
                "params.collect_scores=true",
                "params.note=smoke",
            ]
        )
        assert spec.params["assignments"] == {
            "k920": {"train_platform": "intel_purley"}
        }
        assert spec.params["collect_scores"] is True
        assert spec.params["note"] == "smoke"

    def test_merges_with_existing_params(self):
        base = RunSpec(params={"policy": {"vm_migrate_score": 0.9}})
        spec = base.with_overrides(["params.policy.bank_spare_score=0.7"])
        assert spec.params["policy"] == {
            "vm_migrate_score": 0.9,
            "bank_spare_score": 0.7,
        }
        # the original spec is untouched (deep copy, not aliasing)
        assert base.params == {"policy": {"vm_migrate_score": 0.9}}

    def test_whole_object_assignment_replaces(self):
        base = RunSpec(params={"old": 1})
        spec = base.with_overrides(['params={"fresh": {"a": [1, 2]}}'])
        assert spec.params == {"fresh": {"a": [1, 2]}}

    def test_whole_object_then_dotted_merge(self):
        spec = RunSpec().with_overrides(
            ['params={"budget": {"vm_migrate": 1}}',
             "params.budget.bank_spare=3"]
        )
        assert spec.params == {"budget": {"vm_migrate": 1, "bank_spare": 3}}

    def test_round_trips_through_json_files(self, tmp_path):
        spec = RunSpec(scenario="fleet_ops").with_overrides(
            [
                'params.assignments={"k920": {"train_platform": "intel_purley"}}',
                "params.budget.vm_migrate=2",
                "params.rescore_interval_hours=0.25",
            ]
        )
        path = tmp_path / "spec.json"
        spec.to_json_file(path)
        reloaded = RunSpec.from_json_file(path)
        assert reloaded == spec
        assert reloaded.params["assignments"]["k920"]["train_platform"] == (
            "intel_purley"
        )

    def test_malformed_json_object_is_a_clear_error(self):
        with pytest.raises(ValueError, match=r"params\.assignments"):
            RunSpec().with_overrides(
                ['params.assignments={"k920": {"train_platform"']
            )
        with pytest.raises(ValueError, match="params must be a JSON object"):
            RunSpec().with_overrides(["params={broken"])
        with pytest.raises(ValueError, match="params must be a JSON object"):
            RunSpec().with_overrides(["params=[1, 2]"])

    def test_truncated_number_is_an_error_not_a_string(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            RunSpec().with_overrides(["params.budget.vm_migrate=1.2.3"])

    def test_empty_path_segment_rejected(self):
        with pytest.raises(ValueError, match="empty segment"):
            RunSpec().with_overrides(["params.=1"])
        with pytest.raises(ValueError, match="empty segment"):
            RunSpec().with_overrides(["params.budget..x=1"])

    def test_descending_into_scalar_rejected(self):
        base = RunSpec(params={"batch_size": 64})
        with pytest.raises(ValueError, match="cannot descend"):
            base.with_overrides(["params.batch_size.nested=1"])

    def test_non_dict_params_rejected_at_validate(self):
        with pytest.raises(ValueError, match="params must be a dict"):
            RunSpec(params=[1, 2]).validate()

    def test_non_serialisable_params_rejected_at_validate(self):
        with pytest.raises(ValueError, match="JSON-serialisable"):
            RunSpec(params={"bad": object()}).validate()

    def test_platform_override_value_error_is_clear(self):
        with pytest.raises(ValueError, match="must be numeric"):
            RunSpec().with_overrides(["platform_overrides=k920:scale=big"])
