"""Per-platform scale/hours overrides: spec round-trips and context wiring."""

import pytest

from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec


class TestSpecOverrides:
    def test_effective_values_default_to_spec_wide(self):
        spec = RunSpec(scale=0.25, hours=2880.0)
        assert spec.effective_scale("k920") == 0.25
        assert spec.effective_hours("k920") == 2880.0

    def test_overrides_apply_per_platform(self):
        spec = RunSpec(
            scale=0.25,
            hours=2880.0,
            platform_overrides={"k920": {"scale": 0.5, "hours": 1440.0}},
        )
        assert spec.effective_scale("k920") == 0.5
        assert spec.effective_hours("k920") == 1440.0
        assert spec.effective_scale("intel_purley") == 0.25
        assert spec.effective_hours("intel_purley") == 2880.0

    def test_json_round_trip(self, tmp_path):
        spec = RunSpec(
            platform_overrides={
                "k920": {"scale": 0.5},
                "intel_whitley": {"hours": 1440.0},
            }
        )
        path = tmp_path / "spec.json"
        spec.to_json_file(path)
        restored = RunSpec.from_json_file(path)
        assert restored == spec
        assert restored.effective_scale("k920") == 0.5
        assert restored.effective_hours("intel_whitley") == 1440.0

    def test_set_coercion_compact_syntax(self):
        spec = RunSpec().with_overrides(
            ["platform_overrides=k920:scale=0.5,k920:hours=1440,"
             "intel_purley:scale=0.1"]
        )
        assert spec.platform_overrides == {
            "k920": {"scale": 0.5, "hours": 1440.0},
            "intel_purley": {"scale": 0.1},
        }
        spec.validate()

    def test_set_coercion_json_syntax(self):
        spec = RunSpec().with_overrides(
            ['platform_overrides={"k920": {"scale": 0.5}}']
        )
        assert spec.platform_overrides == {"k920": {"scale": 0.5}}

    def test_platform_alias_sets_platforms(self):
        spec = RunSpec().with_overrides(["platform=k920"])
        assert spec.platforms == ("k920",)

    def test_bad_override_syntax_rejected(self):
        with pytest.raises(ValueError, match="platform:key=value"):
            RunSpec().with_overrides(["platform_overrides=k920-scale-0.5"])

    def test_validation_rejects_overrides_for_absent_platforms(self):
        spec = RunSpec(
            platforms=("intel_purley",),
            platform_overrides={"k92": {"scale": 0.5}},  # typo for k920
        )
        with pytest.raises(ValueError, match="not in spec.platforms"):
            spec.validate()

    def test_validation_rejects_unknown_keys_and_nonpositive(self):
        with pytest.raises(ValueError, match="unknown keys"):
            RunSpec(platform_overrides={"k920": {"seed": 9.0}}).validate()
        with pytest.raises(ValueError, match="positive"):
            RunSpec(platform_overrides={"k920": {"scale": -1.0}}).validate()
        with pytest.raises(ValueError, match="must be a dict"):
            RunSpec(platform_overrides={"k920": 0.5}).validate()


class TestContextWiring:
    def test_simulation_keys_carry_overrides(self):
        spec = RunSpec(
            platforms=("intel_purley", "k920"),
            scale=0.25,
            hours=2880.0,
            platform_overrides={"k920": {"scale": 0.5, "hours": 1440.0}},
        )
        context = RunContext(spec)
        assert context.simulation_key("intel_purley").scale == 0.25
        assert context.simulation_key("intel_purley").hours == 2880.0
        assert context.simulation_key("k920").scale == 0.5
        assert context.simulation_key("k920").hours == 1440.0
        assert context.effective_hours("k920") == 1440.0

    def test_override_changes_artifact_identity(self):
        base = RunSpec(platforms=("k920",))
        overridden = RunSpec(
            platforms=("k920",),
            platform_overrides={"k920": {"scale": 0.5}},
        )
        key_a = RunContext(base).simulation_key("k920")
        key_b = RunContext(overridden).simulation_key("k920")
        assert key_a.digest() != key_b.digest()

    def test_heterogeneous_simulation_end_to_end(self):
        """The override actually changes the simulated fleet and campaign."""
        base = RunSpec(
            platforms=("intel_purley",), scale=0.02, hours=500.0, seed=3
        )
        overridden = RunSpec(
            platforms=("intel_purley",),
            scale=0.02,
            hours=500.0,
            seed=3,
            platform_overrides={
                "intel_purley": {"scale": 0.06, "hours": 300.0}
            },
        )
        small = RunContext(base).simulation("intel_purley")
        large = RunContext(overridden).simulation("intel_purley")
        assert large.duration_hours == 300.0
        assert small.duration_hours == 500.0
        # Three times the scale simulates three times the DIMM population.
        assert len(large.store.configs) == 3 * len(small.store.configs)
