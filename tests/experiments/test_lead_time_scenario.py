"""The lead_time scenario: cells match single_platform, extras are sane."""

import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec


def _spec(tiny_protocol, platforms, models):
    return RunSpec(
        scenario="lead_time",
        platforms=platforms,
        models=models,
        scale=tiny_protocol.scale,
        hours=tiny_protocol.duration_hours,
        seed=tiny_protocol.seed,
        max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
    )


@pytest.fixture(scope="module")
def result(tiny_study, tiny_protocol):
    spec = _spec(tiny_protocol, ("intel_purley",), ("lightgbm",))
    cache = ArtifactCache()
    context = RunContext(spec, cache=cache)
    cache.put_simulation(
        context.simulation_key("intel_purley"), tiny_study["intel_purley"]
    )
    return run_spec(spec, protocol=tiny_protocol, cache=cache)


class TestLeadTimeScenario:
    def test_cells_are_the_single_platform_evaluation(self, result):
        cell = result.cell("intel_purley", "intel_purley", "lightgbm")
        assert cell.result.supported
        assert result.any_nonfinite() == []

    def test_extras_report_achieved_lead_times(self, result):
        stats = result.extras["lead_time"]["intel_purley"]["lightgbm"]
        assert stats["caught_dimms"] >= 0
        assert stats["lead_budget_hours"] == 3.0
        if stats["caught_dimms"]:
            assert stats["min_hours"] > 0
            assert stats["median_hours"] >= stats["min_hours"]
            assert (
                0.0
                <= stats["fraction_at_least_24h"]
                <= stats["fraction_at_least_budget"]
                <= 1.0
            )

    def test_extras_render(self, result):
        from repro.experiments.scenarios import render_lead_time_extras

        rendered = render_lead_time_extras(result.extras)
        assert "LEAD TIME" in rendered
        assert "intel_purley/lightgbm" in rendered

    def test_unsupported_model_has_no_extras_entry(
        self, tiny_study, tiny_protocol
    ):
        spec = _spec(tiny_protocol, ("intel_whitley",), ("risky_ce_pattern",))
        cache = ArtifactCache()
        context = RunContext(spec, cache=cache)
        cache.put_simulation(
            context.simulation_key("intel_whitley"),
            tiny_study["intel_whitley"],
        )
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        cell = result.cell("intel_whitley", "intel_whitley", "risky_ce_pattern")
        assert not cell.result.supported
        assert result.extras["lead_time"]["intel_whitley"] == {}
