"""Scenario runs: transfer-matrix parity, pooled/mixed smoke, spec handling."""

import math

import numpy as np
import pytest

from repro.evaluation.table2 import run_table2
from repro.experiments.cache import ArtifactCache
from repro.experiments.registry import UnknownNameError
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec

PAIR = ("intel_purley", "intel_whitley")


def assert_results_bit_identical(left, right):
    """Field-wise ModelResult equality where NaN == NaN (bit parity)."""
    import dataclasses

    for field in dataclasses.fields(left):
        a = getattr(left, field.name)
        b = getattr(right, field.name)
        if isinstance(a, float) and math.isnan(a):
            assert isinstance(b, float) and math.isnan(b), field.name
        else:
            assert a == b, (field.name, a, b)


def _seeded_cache(spec, study):
    """An in-memory cache pre-populated with the session fixtures' campaigns.

    The fixture campaigns were simulated at per-platform scales, so they are
    seeded under the spec's keys — the cache is content-addressed by key,
    which is exactly what lets tests (or callers with their own campaigns)
    bypass re-simulation.
    """
    cache = ArtifactCache()
    context = RunContext(spec, cache=cache)
    for platform in spec.platforms:
        cache.put_simulation(context.simulation_key(platform), study[platform])
    return cache


@pytest.fixture(scope="module")
def pair_spec(tiny_protocol):
    return RunSpec(
        scenario="transfer_matrix",
        platforms=PAIR,
        models=("lightgbm",),
        scale=tiny_protocol.scale,
        hours=tiny_protocol.duration_hours,
        seed=tiny_protocol.seed,
        max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
    )


@pytest.fixture(scope="module")
def transfer_result(pair_spec, tiny_study, tiny_protocol):
    cache = _seeded_cache(pair_spec, tiny_study)
    return run_spec(pair_spec, protocol=tiny_protocol, cache=cache)


class TestTransferMatrix:
    def test_grid_is_complete(self, transfer_result):
        assert len(transfer_result.cells) == 4  # 2x2 pairs, one model
        for train in PAIR:
            for test in PAIR:
                cell = transfer_result.cell(train, test, "lightgbm")
                assert cell.result.platform == test

    def test_diagonal_matches_legacy_table2_bit_for_bit(
        self, transfer_result, tiny_study, tiny_protocol
    ):
        legacy = run_table2(
            tiny_protocol,
            simulations={name: tiny_study[name] for name in PAIR},
            model_names=("lightgbm",),
        )
        for platform in PAIR:
            old = legacy.result("lightgbm", platform)
            new = transfer_result.cell(platform, platform, "lightgbm").result
            assert_results_bit_identical(old, new)

    def test_off_diagonal_metrics_finite(self, transfer_result):
        for train in PAIR:
            for test in PAIR:
                if train == test:
                    continue
                result = transfer_result.cell(train, test, "lightgbm").result
                assert result.supported
                for value in (result.precision, result.recall, result.f1):
                    assert math.isfinite(value)
                assert result.test_dimms > 0
        assert transfer_result.any_nonfinite() == []

    def test_each_platform_simulated_and_extracted_once(
        self, pair_spec, tiny_study, tiny_protocol
    ):
        cache = _seeded_cache(pair_spec, tiny_study)
        run_spec(pair_spec, protocol=tiny_protocol, cache=cache)
        stats = cache.stats()
        assert stats["simulation"]["builds"] == 0  # all seeded
        assert stats["samples"]["builds"] == len(PAIR)  # one per platform
        # 2x2 grid touches each platform's artifacts multiple times:
        assert stats["samples"]["memory_hits"] == 0  # memoised experiments

    def test_rule_baseline_unsupported_off_its_platform(
        self, pair_spec, tiny_study, tiny_protocol
    ):
        spec = pair_spec.with_overrides(["models=risky_ce_pattern"])
        cache = _seeded_cache(spec, tiny_study)
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        # Purley-only heuristic: any pair that touches whitley is X.
        assert result.cell(
            "intel_purley", "intel_purley", "risky_ce_pattern"
        ).result.supported
        for train, test in (
            ("intel_purley", "intel_whitley"),
            ("intel_whitley", "intel_purley"),
            ("intel_whitley", "intel_whitley"),
        ):
            assert not result.cell(train, test, "risky_ce_pattern").result.supported


class TestOtherScenarios:
    def test_single_platform_equals_transfer_diagonal(
        self, pair_spec, tiny_study, tiny_protocol, transfer_result
    ):
        spec = pair_spec.with_overrides(["scenario=single_platform"])
        cache = _seeded_cache(spec, tiny_study)
        single = run_spec(spec, protocol=tiny_protocol, cache=cache)
        assert len(single.cells) == 2
        for platform in PAIR:
            assert_results_bit_identical(
                single.cell(platform, platform, "lightgbm").result,
                transfer_result.cell(platform, platform, "lightgbm").result,
            )

    def test_pooled_training_covers_every_platform(
        self, pair_spec, tiny_study, tiny_protocol
    ):
        spec = pair_spec.with_overrides(["scenario=pooled_training"])
        cache = _seeded_cache(spec, tiny_study)
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        assert len(result.cells) == 2
        for platform in PAIR:
            cell = result.cell("pooled", platform, "lightgbm")
            assert cell.result.supported
            assert math.isfinite(cell.result.f1)

    def test_pooled_training_fits_each_model_once(
        self, pair_spec, tiny_study, tiny_protocol
    ):
        """The pooled model is trained once and shared across platforms."""
        from repro.experiments.registry import MODELS
        from repro.ml.gbdt import GbdtClassifier, GbdtParams

        fits = []

        class _CountingGbdt(GbdtClassifier):
            def fit(self, X, y, eval_set=None):
                fits.append(len(y))
                return super().fit(X, y, eval_set=eval_set)

        MODELS.register(
            "counting_gbdt",
            lambda names, seed: _CountingGbdt(
                GbdtParams(n_estimators=20, seed=seed)
            ),
        )
        try:
            spec = pair_spec.with_overrides(
                ["scenario=pooled_training", "models=counting_gbdt"]
            )
            cache = _seeded_cache(spec, tiny_study)
            result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        finally:
            MODELS.unregister("counting_gbdt")
        assert len(result.cells) == len(PAIR)  # one cell per test platform
        assert len(fits) == 1  # ... from a single shared fit

    def test_mixed_fleet_single_combined_test(
        self, pair_spec, tiny_study, tiny_protocol
    ):
        spec = pair_spec.with_overrides(["scenario=mixed_fleet"])
        cache = _seeded_cache(spec, tiny_study)
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        assert len(result.cells) == 1
        cell = result.cell("pooled", "mixed_fleet", "lightgbm")
        assert cell.result.supported
        assert math.isfinite(cell.result.f1)
        # The mixed test fleet is the union of the per-platform test fleets.
        per_platform = [
            run_spec(
                pair_spec.with_overrides(
                    ["scenario=single_platform", f"platforms={p}"]
                ),
                protocol=tiny_protocol,
                cache=_seeded_cache(
                    pair_spec.with_overrides([f"platforms={p}"]), tiny_study
                ),
            ).cell(p, p, "lightgbm").result.test_dimms
            for p in PAIR
        ]
        assert cell.result.test_dimms == sum(per_platform)


class TestRunResult:
    def test_render_and_serialisation(self, transfer_result, tmp_path):
        rendered = transfer_result.render()
        assert "transfer_matrix" in rendered
        assert "intel_purley" in rendered and "intel_whitley" in rendered
        payload = transfer_result.to_dict()
        assert payload["scenario"] == "transfer_matrix"
        assert len(payload["cells"]) == 4
        out = tmp_path / "result.json"
        transfer_result.to_json_file(out)
        assert out.exists()

    def test_to_table2_diagonal_only(self, transfer_result):
        table = transfer_result.to_table2()
        for platform in PAIR:
            assert table.result("lightgbm", platform).platform == platform


class TestSpec:
    def test_override_round_trip(self):
        spec = RunSpec().with_overrides(
            ["scale=0.1", "models=lightgbm,random_forest", "workers=4",
             "engine=batch", "seed=11"]
        )
        assert spec.scale == 0.1
        assert spec.models == ("lightgbm", "random_forest")
        assert spec.workers == 4
        assert spec.engine == "batch"
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = RunSpec(scenario="transfer_matrix", scale=0.05)
        path = tmp_path / "spec.json"
        spec.to_json_file(path)
        assert RunSpec.from_json_file(path) == spec

    def test_bad_overrides_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            RunSpec().with_overrides(["scale"])
        with pytest.raises(ValueError, match="unknown RunSpec key"):
            RunSpec().with_overrides(["frobnicate=1"])

    def test_validation(self):
        with pytest.raises(ValueError, match="engine"):
            RunSpec(engine="warp").validate()
        with pytest.raises(ValueError, match="positive"):
            RunSpec(scale=0.0).validate()
        with pytest.raises(ValueError, match="duplicates"):
            RunSpec(platforms=("k920", "k920")).validate()

    def test_unknown_scenario_raises(self, tiny_protocol):
        with pytest.raises(UnknownNameError, match="frobnicate"):
            run_spec(
                RunSpec(scenario="frobnicate", platforms=("intel_purley",)),
                protocol=tiny_protocol,
            )

    def test_unknown_platform_raises_before_simulating(self):
        spec = RunSpec(
            scenario="single_platform",
            platforms=("vax_11",),
            models=("lightgbm",),
            scale=0.02,
            hours=100.0,
        )
        with pytest.raises(UnknownNameError, match="vax_11"):
            run_spec(spec)
