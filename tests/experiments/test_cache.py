"""Artifact cache: hit/miss accounting, disk round-trips, invalidation."""

import json

import numpy as np
import pytest

from repro.evaluation.protocol import ExperimentProtocol
from repro.experiments.cache import (
    ArtifactCache,
    SampleSetKey,
    SimulationKey,
)
from repro.experiments.spec import RunSpec
from repro.experiments.runner import RunContext
from repro.features.sampling import SamplingParams

MINI_SPEC = RunSpec(
    scenario="single_platform",
    platforms=("intel_purley",),
    models=("ce_count_threshold",),
    scale=0.02,
    hours=500.0,
    seed=3,
    max_samples_per_dimm=8,
)


@pytest.fixture(scope="module")
def mini_context():
    return RunContext(MINI_SPEC)


class TestMemoryTier:
    def test_simulation_build_then_hit(self, mini_context):
        context = mini_context
        first = context.simulation("intel_purley")
        counters = context.cache.counters["simulation"]
        builds_after_first = counters.builds
        second = context.simulation("intel_purley")
        assert second is first
        assert counters.builds == builds_after_first  # no rebuild
        assert counters.memory_hits >= 1

    def test_samples_build_then_hit(self, mini_context):
        context = mini_context
        first = context.samples("intel_purley")
        counters = context.cache.counters["samples"]
        builds_after_first = counters.builds
        second = context.samples("intel_purley")
        assert second is first
        assert counters.builds == builds_after_first
        assert counters.memory_hits >= 1

    def test_key_change_invalidates(self, mini_context):
        """A different seed is a different artifact: build, not hit."""
        context = mini_context
        context.simulation("intel_purley")
        counters = context.cache.counters["simulation"]
        builds_before = counters.builds
        other_key = SimulationKey(
            platform="intel_purley",
            scale=MINI_SPEC.scale,
            seed=MINI_SPEC.seed + 1,
            hours=MINI_SPEC.hours,
        )
        calls = []

        def build():
            calls.append(1)
            return context._simulate("intel_purley")

        context.cache.simulation(other_key, build)
        assert calls == [1]
        assert counters.builds == builds_before + 1


class TestDiskTier:
    def test_simulation_round_trip(self, tmp_path, mini_context):
        source = mini_context.simulation("intel_purley")
        key = mini_context.simulation_key("intel_purley")

        writer = ArtifactCache(tmp_path)
        writer.simulation(key, lambda: source)
        assert writer.counters["simulation"].builds == 1

        reader = ArtifactCache(tmp_path)  # fresh process stand-in
        loaded = reader.simulation(
            key, lambda: pytest.fail("must come from disk")
        )
        assert reader.counters["simulation"].disk_hits == 1
        assert loaded.platform.name == "intel_purley"
        assert loaded.duration_hours == MINI_SPEC.hours
        assert len(loaded.store) == len(source.store)
        assert sorted(loaded.store.configs) == sorted(source.store.configs)
        np.testing.assert_array_equal(
            loaded.store.fleet_arrays().times,
            source.store.fleet_arrays().times,
        )

    def test_samples_round_trip_bit_for_bit(self, tmp_path, mini_context):
        samples = mini_context.samples("intel_purley")
        key = mini_context.samples_key("intel_purley")

        writer = ArtifactCache(tmp_path)
        writer.samples(key, lambda: samples)
        reader = ArtifactCache(tmp_path)
        loaded = reader.samples(key, lambda: pytest.fail("must come from disk"))
        assert reader.counters["samples"].disk_hits == 1
        np.testing.assert_array_equal(loaded.X, samples.X)
        np.testing.assert_array_equal(loaded.y, samples.y)
        np.testing.assert_array_equal(loaded.times, samples.times)
        assert list(loaded.dimm_ids) == [str(d) for d in samples.dimm_ids]
        assert loaded.feature_names == samples.feature_names
        assert loaded.feature_groups == samples.feature_groups
        assert loaded.platform == samples.platform

    def test_protocol_change_misses(self, tmp_path, mini_context):
        samples = mini_context.samples("intel_purley")
        key = mini_context.samples_key("intel_purley")
        cache = ArtifactCache(tmp_path)
        cache.samples(key, lambda: samples)

        other_protocol = ExperimentProtocol(
            scale=MINI_SPEC.scale,
            duration_hours=MINI_SPEC.hours,
            seed=MINI_SPEC.seed,
            sampling=SamplingParams(max_samples_per_dimm=99),
        )
        other_key = SampleSetKey(
            simulation=key.simulation,
            protocol_fingerprint=other_protocol.features_fingerprint(),
        )
        assert other_key.digest() != key.digest()
        built = []
        cache.samples(other_key, lambda: built.append(1) or samples)
        assert built == [1]

    def test_corrupt_artifact_falls_back_to_build(self, tmp_path, mini_context):
        samples = mini_context.samples("intel_purley")
        key = mini_context.samples_key("intel_purley")
        cache = ArtifactCache(tmp_path)
        cache.samples(key, lambda: samples)
        path = cache._samples_path(key.digest())
        path.write_bytes(b"not an npz")

        reader = ArtifactCache(tmp_path)
        rebuilt = []
        reader.samples(key, lambda: rebuilt.append(1) or samples)
        assert rebuilt == [1]
        assert reader.counters["samples"].disk_hits == 0
        assert reader.counters["samples"].builds == 1

    def test_corrupt_simulation_jsonl_falls_back_to_build(
        self, tmp_path, mini_context
    ):
        """Garbage in the logs file must rebuild, not crash."""
        source = mini_context.simulation("intel_purley")
        key = mini_context.simulation_key("intel_purley")
        cache = ArtifactCache(tmp_path)
        cache.simulation(key, lambda: source)
        logs_path, _ = cache._simulation_paths(key.digest())
        logs_path.write_text('{"record_type": "ce", "truncated...\n')

        reader = ArtifactCache(tmp_path)
        rebuilt = []
        served = reader.simulation(key, lambda: rebuilt.append(1) or source)
        assert rebuilt == [1]
        assert served is source
        assert reader.counters["simulation"].disk_hits == 0
        assert reader.counters["simulation"].builds == 1

    def test_rebuild_after_corruption_repairs_the_disk_tier(
        self, tmp_path, mini_context
    ):
        """The fallback build rewrites the artifact for the next process."""
        samples = mini_context.samples("intel_purley")
        key = mini_context.samples_key("intel_purley")
        cache = ArtifactCache(tmp_path)
        cache.samples(key, lambda: samples)
        cache._samples_path(key.digest()).write_bytes(b"not an npz")

        repairer = ArtifactCache(tmp_path)
        repairer.samples(key, lambda: samples)
        assert repairer.counters["samples"].builds == 1

        third = ArtifactCache(tmp_path)
        served = third.samples(
            key, lambda: pytest.fail("repaired artifact must serve from disk")
        )
        assert third.counters["samples"].disk_hits == 1
        np.testing.assert_array_equal(served.X, samples.X)

    def test_counters_consistent_across_tiers(self, tmp_path, mini_context):
        """builds + memory_hits + disk_hits always equals accesses."""
        samples = mini_context.samples("intel_purley")
        key = mini_context.samples_key("intel_purley")

        cache = ArtifactCache(tmp_path)
        cache.samples(key, lambda: samples)  # build (writes disk)
        cache.samples(key, lambda: samples)  # memory hit
        cache.samples(key, lambda: samples)  # memory hit
        counters = cache.counters["samples"]
        assert (counters.builds, counters.memory_hits, counters.disk_hits) == (
            1, 2, 0,
        )
        assert counters.hits == 2

        reader = ArtifactCache(tmp_path)  # fresh process stand-in
        reader.samples(key, lambda: samples)  # disk hit (promotes to memory)
        reader.samples(key, lambda: samples)  # memory hit
        counters = reader.counters["samples"]
        assert (counters.builds, counters.memory_hits, counters.disk_hits) == (
            0, 1, 1,
        )
        assert counters.builds + counters.hits == 2

    def test_meta_mismatch_is_not_served(self, tmp_path, mini_context):
        """A digest collision (tampered meta) must not serve wrong data."""
        source = mini_context.simulation("intel_purley")
        key = mini_context.simulation_key("intel_purley")
        cache = ArtifactCache(tmp_path)
        cache.simulation(key, lambda: source)
        _, meta_path = cache._simulation_paths(key.digest())
        meta = json.loads(meta_path.read_text())
        meta["key"]["seed"] = 12345
        meta_path.write_text(json.dumps(meta))

        reader = ArtifactCache(tmp_path)
        rebuilt = []
        reader.simulation(key, lambda: rebuilt.append(1) or source)
        assert rebuilt == [1]


class TestAccounting:
    def test_stats_and_render(self, mini_context):
        stats = mini_context.cache.stats()
        assert set(stats) == {"simulation", "samples", "shards"}
        for counters in stats.values():
            assert set(counters) == {"memory_hits", "disk_hits", "builds"}
        rendered = mini_context.cache.render_stats()
        assert "artifact cache" in rendered and "built" in rendered

    def test_put_simulation_counts_as_memory_hit_later(self, mini_context):
        cache = ArtifactCache()
        key = mini_context.simulation_key("intel_purley")
        sentinel = object()
        cache.put_simulation(key, sentinel)
        served = cache.simulation(key, lambda: pytest.fail("seeded"))
        assert served is sentinel
        assert cache.counters["simulation"].memory_hits == 1
        assert cache.counters["simulation"].builds == 0
