"""Registry semantics: round-trip, duplicates, strict lookup, builtins."""

import pytest

from repro.experiments.registry import (
    MODELS,
    PLATFORMS,
    SCENARIOS,
    DuplicateNameError,
    Registry,
    UnknownNameError,
)


class TestRegistry:
    def test_round_trip(self):
        registry = Registry("thing")

        @registry.register("alpha")
        def build_alpha():
            return "a"

        assert registry.resolve("alpha") is build_alpha
        assert registry["alpha"] is build_alpha
        assert registry.get("alpha") is build_alpha
        assert "alpha" in registry
        assert registry.names() == ("alpha",)
        assert len(registry) == 1
        assert list(registry) == ["alpha"]

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")

        def build_one():
            return 1

        def build_two():
            return 2

        registry.register("alpha", build_one)
        with pytest.raises(DuplicateNameError, match="already registered"):
            registry.register("alpha", build_two)

    def test_same_object_reregistration_is_idempotent(self):
        registry = Registry("thing")

        def build():
            return 1

        registry.register("alpha", build)
        registry.register("alpha", build)  # module re-import: no error
        assert registry.resolve("alpha") is build

    def test_reloaded_incarnation_replaces_silently(self):
        """importlib.reload re-runs decorators with fresh function objects."""
        registry = Registry("thing")
        namespace_one: dict = {"__name__": "fake_module"}
        namespace_two: dict = {"__name__": "fake_module"}
        exec("def build():\n    return 1", namespace_one)
        exec("def build():\n    return 2", namespace_two)
        registry.register("alpha", namespace_one["build"])
        registry.register("alpha", namespace_two["build"])  # same qualname
        assert registry.resolve("alpha") is namespace_two["build"]

    def test_overwrite_flag(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        replacement = lambda: 2  # noqa: E731
        registry.register("alpha", replacement, overwrite=True)
        assert registry.get("alpha") is replacement

    def test_unknown_lookup_lists_choices(self):
        registry = Registry("model")
        registry.register("alpha", lambda: 1)
        with pytest.raises(UnknownNameError) as excinfo:
            registry.resolve("beta")
        message = str(excinfo.value)
        assert "beta" in message and "alpha" in message
        assert excinfo.value.choices == ("alpha",)

    def test_mapping_get_returns_default_on_miss(self):
        registry = Registry("thing")
        assert registry.get("absent") is None
        assert registry.get("absent", 42) == 42

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("alpha", lambda: 1)
        registry.unregister("alpha")
        assert "alpha" not in registry
        registry.unregister("alpha")  # absent: no error


class TestBuiltinRegistrations:
    def test_models_cover_the_table2_lineup(self):
        import repro.evaluation.experiment  # noqa: F401  (registers models)

        for name in (
            "risky_ce_pattern",
            "random_forest",
            "lightgbm",
            "ft_transformer",
            "ce_count_threshold",
        ):
            assert name in MODELS

    def test_model_builders_alias_is_the_registry(self):
        from repro.evaluation.experiment import MODEL_BUILDERS

        assert MODEL_BUILDERS is MODELS
        model = MODEL_BUILDERS["lightgbm"](["f0"], seed=3)
        assert hasattr(model, "fit") and hasattr(model, "predict_proba")

    def test_platforms_registered(self):
        import repro.simulator.platforms  # noqa: F401

        assert PLATFORMS.names() == ("intel_purley", "intel_whitley", "k920")
        spec = PLATFORMS.resolve("k920")(0.05)
        assert spec.name == "k920"

    def test_scenarios_registered(self):
        import repro.experiments.scenarios  # noqa: F401

        for name in (
            "single_platform",
            "transfer_matrix",
            "pooled_training",
            "mixed_fleet",
        ):
            assert name in SCENARIOS
