"""Coordinator contract: sharded replay merges bit-for-bit, faults heal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.coordinator import (
    ReplayCoordinator,
    build_samples_distributed,
)
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.cost import CostModel
from repro.streaming.bus import EventBus


def make_coordinator(assignments, make_fleet_policy, **kwargs):
    defaults = dict(
        policy=make_fleet_policy(),
        cost_model=CostModel(),
        bus=EventBus(),
        workers=2,
        rescore_interval_hours=0.0,
        batch_size=256,
        engine="batched",
    )
    defaults.update(kwargs)
    return ReplayCoordinator(assignments, **defaults)


class TestReplayParity:
    def test_two_workers_match_single_process(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check
    ):
        coordinator = make_coordinator(fleet_assignments, make_fleet_policy)
        report = coordinator.replay(fleet_stores)
        parity_check(coordinator, report)
        assert report.distributed["partitions"] == 2

    def test_three_workers_match_single_process(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check
    ):
        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, workers=3
        )
        report = coordinator.replay(fleet_stores)
        parity_check(coordinator, report)
        assert report.distributed["partitions"] == 3

    def test_per_event_engine_matches_too(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check
    ):
        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, engine="per_event"
        )
        report = coordinator.replay(fleet_stores)
        parity_check(coordinator, report)

    def test_single_worker_runs_inline(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check
    ):
        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, workers=1
        )
        report = coordinator.replay(fleet_stores)
        parity_check(coordinator, report)
        assert report.distributed["partitions"] == 1


class TestFaultPaths:
    def test_halted_worker_resumes_from_checkpoint(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check,
        tmp_path,
    ):
        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, shard_dir=tmp_path
        )
        report = coordinator.replay(
            fleet_stores, halt_partition=1, halt_after=40
        )
        parity_check(coordinator, report)
        assert (tmp_path / "checkpoint_0001.pkl").exists()

    def test_crashed_worker_is_retried(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check,
        tmp_path,
    ):
        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, shard_dir=tmp_path
        )
        report = coordinator.replay(fleet_stores, fail_partition=0)
        parity_check(coordinator, report)
        # The injected crash left its one-shot marker behind.
        assert (tmp_path / "failed_0000.marker").exists()

    def test_duplicate_outcome_delivery_is_idempotent(
        self, fleet_stores, fleet_assignments, make_fleet_policy, parity_check,
        tmp_path,
    ):
        import time

        from repro.fleetops.stream import merge_fleet_streams

        coordinator = make_coordinator(
            fleet_assignments, make_fleet_policy, shard_dir=tmp_path
        )
        stream = merge_fleet_streams(fleet_stores, decode_payloads=False)
        start = time.perf_counter()
        from repro.distributed.shards import write_fleet_shards

        manifest = write_fleet_shards(
            {name: s.columns for name, s in fleet_stores.items()},
            coordinator.n_shards,
            tmp_path,
        )
        coordinator.manifest = manifest
        payloads = coordinator._payloads(
            tmp_path, manifest, dict(stream.end_hours), None, None, None
        )
        outcomes = coordinator._run_payloads(payloads)
        # An at-least-once transport redelivers partition 0: merge must
        # keep the first outcome per index and drop the duplicate.
        report = coordinator.merge(
            outcomes + [outcomes[0]],
            stream,
            time.perf_counter() - start,
        )
        parity_check(coordinator, report)
        assert report.distributed["partitions"] == coordinator.n_shards


class TestShardedSampleBuild:
    def test_distributed_build_is_bit_identical(self, purley_sim):
        pipeline = FeaturePipeline()
        pipeline.fit(purley_sim.store)
        serial = pipeline.build_samples(
            purley_sim.store, platform="intel_purley"
        )
        sharded = build_samples_distributed(
            pipeline,
            purley_sim.store,
            platform="intel_purley",
            workers=2,
        )
        assert np.array_equal(serial.X, sharded.X)
        assert np.array_equal(serial.y, sharded.y)
        assert np.array_equal(serial.times, sharded.times)
        assert list(serial.dimm_ids) == list(sharded.dimm_ids)
        assert serial.feature_names == sharded.feature_names
