"""Shard format: deterministic partitions, round-trips, stale detection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed.shards import (
    MANIFEST_NAME,
    SHARD_FORMAT_VERSION,
    ShardManifest,
    StaleShardFormatError,
    load_shard,
    partition_fleet,
    shard_columns,
    shard_fingerprint,
    write_fleet_shards,
)
from repro.telemetry.columnar import CE_DIMM, EV_DIMM, UE_DIMM


class TestPartitionFleet:
    def test_ranges_cover_sorted_dimms_disjointly(self, purley_sim):
        columns = purley_sim.store.columns
        n = len(columns.dimms)
        for n_shards in (1, 2, 3, 7):
            ranges = partition_fleet(columns, n_shards)
            assert len(ranges) == n_shards
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_partitioning_is_deterministic(self, purley_sim):
        columns = purley_sim.store.columns
        assert partition_fleet(columns, 3) == partition_fleet(columns, 3)

    def test_partitions_balance_event_counts(self, purley_sim):
        columns = purley_sim.store.columns
        ranges = partition_fleet(columns, 2)
        names = sorted(columns.dimms.names())
        all_names = columns.dimms.names()
        tables = (
            (columns.ces.rows(), CE_DIMM),
            (columns.ues.rows(), UE_DIMM),
            (columns.events.rows(), EV_DIMM),
        )
        totals = []
        for lo, hi in ranges:
            keep = set(names[lo:hi])
            count = 0
            for table, col in tables:
                for code in table[:, col].astype(int):
                    if all_names[code] in keep:
                        count += 1
            totals.append(count)
        # Balanced by event count: no shard more than double the other.
        assert max(totals) <= 2 * max(1, min(totals))

    def test_more_shards_than_dimms_leaves_trailing_empty(self, purley_sim):
        columns = purley_sim.store.columns
        n = len(columns.dimms)
        ranges = partition_fleet(columns, n + 5)
        assert sum(hi - lo for lo, hi in ranges) == n
        assert all(hi >= lo for lo, hi in ranges)


class TestShardRoundTrip:
    @pytest.fixture(scope="class")
    def shard_set(self, fleet_stores, tmp_path_factory):
        out = tmp_path_factory.mktemp("shards")
        stores = {
            name: store.columns for name, store in fleet_stores.items()
        }
        manifest = write_fleet_shards(stores, 3, out)
        return out, manifest, stores

    def test_manifest_shape(self, shard_set):
        _, manifest, stores = shard_set
        assert manifest.format == SHARD_FORMAT_VERSION
        assert manifest.n_shards == 3
        assert set(manifest.platforms) == set(stores)
        assert len(manifest.shards) == 3

    def test_shards_jointly_hold_every_row(self, shard_set):
        _, manifest, stores = shard_set
        for platform, columns in stores.items():
            for attr in ("ces", "ues", "events"):
                total = sum(
                    entry["platforms"][platform][attr]
                    for entry in manifest.shards
                )
                assert total == len(getattr(columns, attr))

    def test_loaded_shard_matches_fingerprint(self, shard_set):
        out, manifest, _ = shard_set
        for index in range(manifest.n_shards):
            load_shard(out, manifest, index, mmap=True, verify=True)

    def test_mmap_load_is_zero_copy_and_read_only(self, shard_set):
        def mapped_base(array):
            while isinstance(array, np.ndarray):
                if isinstance(array, np.memmap):
                    return array
                array = array.base
            return None

        out, manifest, _ = shard_set
        columns_by = load_shard(out, manifest, 0, mmap=True)
        nonempty = [
            rows
            for columns in columns_by.values()
            for rows in (
                columns.ces.rows(), columns.ues.rows(), columns.events.rows()
            )
            if rows.size
        ]
        # The tables are views over file-backed maps — no data copies —
        # and the maps are opened read-only, so mutation is refused.
        assert nonempty
        for rows in nonempty:
            assert mapped_base(rows) is not None
            assert not rows.flags.writeable
            with pytest.raises(ValueError):
                rows[0, 0] = 0.0

    def test_shard_rows_preserve_source_order(self, shard_set):
        out, manifest, stores = shard_set
        for index in range(manifest.n_shards):
            columns_by = load_shard(out, manifest, index)
            for platform, part in columns_by.items():
                source = stores[platform]
                names = part.dimms.names()
                keep = {source.dimms.intern(n) for n in names}
                src = source.ces.rows()
                expected = src[
                    np.isin(src[:, CE_DIMM].astype(int), list(keep))
                ]
                got = part.ces.rows()
                assert got.shape == expected.shape
                # Every column except the remapped dimm code matches rows
                # in order — append order within the shard is preserved.
                cols = [c for c in range(src.shape[1]) if c != CE_DIMM]
                assert np.array_equal(got[:, cols], expected[:, cols])

    def test_reload_round_trips_manifest(self, shard_set):
        out, manifest, _ = shard_set
        again = ShardManifest.load(out)
        assert again == manifest

    def test_stale_format_raises(self, shard_set):
        out, manifest, _ = shard_set
        path = out / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["format"] = SHARD_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        try:
            with pytest.raises(StaleShardFormatError, match="format"):
                ShardManifest.load(out)
        finally:
            path.write_text(json.dumps(manifest.to_dict()))

    def test_tampered_shard_fails_verification(self, shard_set, tmp_path):
        out, manifest, stores = shard_set
        # Re-derive shard 0's fingerprint from a *different* DIMM subset:
        # content changed => verify must refuse.
        platform = manifest.platforms[0]
        part = shard_columns(
            stores[platform], sorted(stores[platform].dimms.names())[:1]
        )
        assert shard_fingerprint({platform: part}) != (
            manifest.shards[0]["fingerprint"]
        )


class TestShardColumns:
    def test_empty_keep_list_gives_empty_store(self, purley_sim):
        part = shard_columns(purley_sim.store.columns, [])
        assert len(part.ces) == 0
        assert len(part.ues) == 0
        assert len(part.events) == 0
        assert len(part.dimms) == 0

    def test_full_keep_list_round_trips_counts(self, purley_sim):
        columns = purley_sim.store.columns
        part = shard_columns(columns, sorted(columns.dimms.names()))
        assert len(part.ces) == len(columns.ces)
        assert len(part.ues) == len(columns.ues)
        assert len(part.events) == len(columns.events)
