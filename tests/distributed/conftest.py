"""Shared fixtures: echo-model fleets + the single-process parity baseline.

The coordinator's contract is bit-for-bit equality with a single-process
:class:`~repro.fleetops.engine.FleetReplayEngine` run in coherent-flush
mode.  The baseline is computed once per session and every parity /
fault-path test compares against the same digests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.coordinator import apply_policy
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.cost import CostModel, combine_summaries
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import ActionBudget, PolicyEngine
from repro.fleetops.stream import merge_fleet_streams

THRESHOLD = 0.985
BATCH_SIZE = 256


class EchoModel:
    """Deterministic stateless scorer: no fitting, pickles into workers."""

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="session")
def echo_model():
    return EchoModel()


@pytest.fixture(scope="session")
def make_fleet_policy():
    return lambda: PolicyEngine(budget=ActionBudget(), seed=7)


@pytest.fixture(scope="session")
def fleet_sims(purley_sim, k920_sim):
    return {"intel_purley": purley_sim, "k920": k920_sim}


@pytest.fixture(scope="session")
def fleet_stores(fleet_sims):
    return {name: sim.store for name, sim in fleet_sims.items()}


@pytest.fixture(scope="session")
def fleet_assignments(fleet_sims, echo_model):
    assignments = {}
    for name, sim in fleet_sims.items():
        pipeline = FeaturePipeline()
        pipeline.fit(sim.store)
        assignments[name] = ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=echo_model,
            threshold=THRESHOLD,
            pipeline=pipeline,
            configs=sim.store.configs,
            live_from_hour=0.5 * sim.duration_hours,
        )
    return assignments


@pytest.fixture(scope="session")
def parity_baseline(fleet_stores, fleet_assignments, make_fleet_policy):
    """Single-process coherent-flush replay + canonical mitigation pass.

    Returns the digests the coordinator must reproduce exactly:
    canonical score logs, alarm summaries, settled per-platform and
    fleet cost dicts, and per-topic bus counts.
    """
    engine = FleetReplayEngine(
        fleet_assignments,
        labeling=LabelingParams(),
        policy=None,
        cost_model=CostModel(),
        rescore_interval_hours=0.0,
        batch_size=BATCH_SIZE,
        engine="batched",
        collect_scores=True,
        coherent_flush=True,
    )
    stream = merge_fleet_streams(fleet_stores, decode_payloads=False)
    report = engine.replay(stream, fleet_stores)
    policy = make_fleet_policy()
    alarms = {
        name: runtime.alarms for name, runtime in engine.runtimes.items()
    }
    apply_policy(policy, alarms, stream.end_hours)
    costs = {}
    summaries = []
    for name, manager in alarms.items():
        summary, _ = CostModel().settle(
            name, manager, policy, fleet_assignments[name].live_from_hour
        )
        costs[name] = summary.to_dict()
        summaries.append(summary)
    return {
        "score_logs": {
            name: sorted(log, key=lambda row: (row[1], row[0]))
            for name, log in engine.score_logs.items()
        },
        "alarm_summaries": {
            name: manager.summary(fleet_assignments[name].live_from_hour)
            for name, manager in alarms.items()
        },
        "costs": costs,
        "fleet_cost": combine_summaries(summaries).to_dict(),
        "bus_counts": report.bus_counts,
        "platforms": report.platforms,
    }


@pytest.fixture(scope="session")
def parity_check(parity_baseline, fleet_assignments):
    """The full bit-for-bit check of a coordinator run vs the baseline."""

    def check(coordinator, report):
        baseline = parity_baseline
        for name in baseline["score_logs"]:
            assert (
                coordinator.score_logs[name] == baseline["score_logs"][name]
            ), f"{name}: score log diverged"
            live = fleet_assignments[name].live_from_hour
            assert (
                coordinator.alarm_managers[name].summary(live)
                == baseline["alarm_summaries"][name]
            )
            assert report.costs[name] == baseline["costs"][name]
            for key in ("events", "ces", "ues", "mem_events", "scored",
                        "scored_dimms", "fallbacks"):
                assert (
                    report.platforms[name][key]
                    == baseline["platforms"][name][key]
                ), (name, key)
        assert report.fleet_cost == baseline["fleet_cost"]
        assert report.bus_counts == baseline["bus_counts"]

    return check
