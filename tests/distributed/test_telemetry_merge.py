"""Distributed telemetry merge: one coordinator scrape shows the fleet.

Workers serialize their registry snapshots alongside the partition
outcomes; the coordinator folds them in under ``worker="wN"`` labels,
grafts each worker's span tree beneath the fanout span, and records the
merged report as ``worker="merged"`` — all while staying bit-for-bit
the single-process baseline.
"""

from __future__ import annotations

import urllib.request

from repro.distributed.coordinator import ReplayCoordinator
from repro.fleetops.cost import CostModel
from repro.obs import Observability, TelemetryServer, parse_prometheus
from repro.streaming.bus import EventBus

WORKERS = 4


def _find(spans, name):
    found = []
    for span in spans:
        if span["name"] == name:
            found.append(span)
        found.extend(_find(span.get("children", ()), name))
    return found


class TestWorkerTelemetryMerge:
    def test_four_worker_run_scrapes_as_one_fleet(
        self, fleet_stores, fleet_assignments, make_fleet_policy,
        parity_check,
    ):
        obs = Observability()
        coordinator = ReplayCoordinator(
            fleet_assignments,
            policy=make_fleet_policy(),
            cost_model=CostModel(),
            bus=EventBus(),
            workers=WORKERS,
            rescore_interval_hours=0.0,
            batch_size=256,
            engine="batched",
            obs=obs,
            heartbeat_every=40,
        )
        with TelemetryServer(obs, port=0) as server:
            report = coordinator.replay(fleet_stores)
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5
            ) as response:
                parsed = parse_prometheus(response.read().decode("utf-8"))

        # Telemetry never perturbs the replay itself.
        parity_check(coordinator, report)
        assert report.distributed["partitions"] == WORKERS

        # One scrape exposes every worker's heartbeats plus the merge.
        workers = {
            dict(labels).get("worker")
            for (name, labels) in parsed["samples"]
            if name == "repro_heartbeats_total"
        }
        assert workers == {f"w{i}" for i in range(WORKERS)}
        merged = {
            dict(labels).get("worker")
            for (name, labels) in parsed["samples"]
            if name == "repro_replay_events_total"
        }
        assert merged == {"merged"} | {f"w{i}" for i in range(WORKERS)}

        # Each worker's span tree grafts under the fanout span.
        payload = obs.payload()
        mounts = _find(payload["spans"], "coordinator.worker")
        assert len(mounts) == WORKERS
        assert {
            mount["attributes"]["worker"] for mount in mounts
        } == {f"w{i}" for i in range(WORKERS)}
        for mount in mounts:
            grafted = [child["name"] for child in mount["children"]]
            assert "fleet_replay" in grafted

    def test_merge_without_server_matches_baseline_too(
        self, fleet_stores, fleet_assignments, make_fleet_policy,
        parity_check,
    ):
        """Folding worker snapshots is write-only: parity holds bare."""
        coordinator = ReplayCoordinator(
            fleet_assignments,
            policy=make_fleet_policy(),
            cost_model=CostModel(),
            bus=EventBus(),
            workers=2,
            rescore_interval_hours=0.0,
            batch_size=256,
            engine="batched",
            obs=Observability(),
            heartbeat_every=25,
        )
        report = coordinator.replay(fleet_stores)
        parity_check(coordinator, report)
