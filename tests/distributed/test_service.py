"""Async batched serving: observe-equivalence, coalescing, backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.service import AsyncScoringService, serve_stream
from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import LogStore, iter_stream
from repro.telemetry.records import CERecord, DimmConfigRecord

N_DIMMS = 8


class SumModel:
    """Deterministic stateless scorer over the feature row sums."""

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 50.0))


class ExplodingModel:
    def predict_proba(self, X):
        raise RuntimeError("model backend down")


def make_ce(t, dimm):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )


def make_config(dimm):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer="A", part_number="pn", capacity_gb=32, data_width=4,
        frequency_mts=2666, chip_process="1y",
    )


def make_records(n_per_dimm=12):
    records = []
    for step in range(n_per_dimm):
        for index in range(N_DIMMS):
            records.append(make_ce(1.0 + step + index / 100.0, f"d{index}"))
    records.sort(key=lambda r: r.timestamp_hours)
    return records


def make_service(model=None, threshold=0.9):
    store = LogStore()
    for index in range(N_DIMMS):
        store.add_config(make_config(f"d{index}"))
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    registry = ModelRegistry()
    service = OnlinePredictionService(
        FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
        min_ces_before_scoring=2, rescore_interval_hours=0.0,
    )
    for index in range(N_DIMMS):
        service.register_config(f"d{index}", make_config(f"d{index}"))
    version = registry.register(
        "intel_purley", "sum", model or SumModel(), threshold, {}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return service


def alarm_keys(alarms):
    return sorted((a.dimm_id, a.timestamp_hours, a.score) for a in alarms)


class TestObserveEquivalence:
    def test_serial_submission_equals_sequential_observe(self):
        # concurrency=1 keeps per-DIMM request order identical to the
        # synchronous path, so every answer and counter must match
        # exactly (batches degenerate to single rows).
        records = make_records()
        sync_service = make_service(threshold=0.6)
        sync_alarms = [
            alarm
            for alarm in (sync_service.observe(r) for r in records)
            if alarm is not None
        ]
        async_service = make_service(threshold=0.6)
        batched_alarms, slo = serve_stream(
            async_service, records, concurrency=1
        )
        assert alarm_keys(batched_alarms) == alarm_keys(sync_alarms)
        assert async_service.scored == sync_service.scored
        assert slo["lost"] == 0
        assert slo["answered"] == len(records)

    def test_concurrent_submission_raises_the_same_alarms(self):
        # Under real concurrency same-DIMM requests can overlap in
        # flight, so scoring counters may differ from the serial path —
        # but the raised alarm set stays the same and nothing is lost.
        records = make_records()
        sync_service = make_service(threshold=0.6)
        sync_alarms = [
            alarm
            for alarm in (sync_service.observe(r) for r in records)
            if alarm is not None
        ]
        async_service = make_service(threshold=0.6)
        batched_alarms, slo = serve_stream(async_service, records)
        assert alarm_keys(batched_alarms) == alarm_keys(sync_alarms)
        assert slo["lost"] == 0
        assert slo["answered"] == len(records)

    def test_batches_actually_coalesce(self):
        records = make_records()
        service = make_service(threshold=0.99)
        _, slo = serve_stream(service, records, max_wait_ms=50.0)
        assert slo["scored"] > 0
        assert slo["mean_batch"] > 1.0
        assert slo["batches"] < slo["scored"]
        assert sum(
            int(size) * count
            for size, count in slo["batch_histogram"].items()
        ) == slo["scored"]

    def test_slo_summary_shape(self):
        records = make_records()
        service = make_service()
        _, slo = serve_stream(service, records)
        for key in ("p50_ms", "p95_ms", "p99_ms", "throughput_rps",
                    "submitted", "answered", "lost", "shed", "fallbacks"):
            assert key in slo
        assert slo["p50_ms"] <= slo["p95_ms"] <= slo["p99_ms"]
        assert slo["submitted"] == len(records)


class TestBackpressure:
    def test_zero_lost_under_tiny_queue(self):
        records = make_records(n_per_dimm=20)
        service = make_service(threshold=0.6)
        alarms, slo = serve_stream(
            service, records, max_queue=1, max_batch=2, concurrency=64
        )
        assert slo["shed"] > 0  # the queue really overflowed
        assert slo["lost"] == 0  # ...and every request was still answered
        assert slo["answered"] == len(records)
        # Shed requests degrade but still account + can alarm.
        assert slo["fallbacks"] >= slo["shed"]

    def test_model_failure_degrades_whole_batch(self):
        records = make_records()
        service = make_service(model=ExplodingModel())
        _, slo = serve_stream(service, records)
        assert slo["lost"] == 0
        assert slo["scored"] == 0
        assert slo["fallbacks"] > 0
        assert service.extract_errors > 0


class TestStreamDriver:
    def test_iter_stream_feeds_the_service(self, purley_sim):
        import itertools

        store = purley_sim.store
        pipeline = FeaturePipeline()
        pipeline.fit(store)
        registry = ModelRegistry()
        service = OnlinePredictionService(
            FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
            rescore_interval_hours=0.0,
        )
        for dimm_id, config in store.configs.items():
            service.register_config(dimm_id, config)
        version = registry.register(
            "intel_purley", "sum", SumModel(), 0.95, {}
        )
        registry.promote_to_staging(version)
        registry.promote_to_production(version)
        records = list(itertools.islice(iter_stream(store), 500))
        _, slo = serve_stream(service, records)
        assert slo["submitted"] == len(records)
        assert slo["lost"] == 0


class TestLifecycleEdges:
    def test_stop_without_start_is_a_noop(self):
        import asyncio

        service = AsyncScoringService(make_service())
        asyncio.run(service.stop())

    def test_empty_record_list(self):
        service = make_service()
        alarms, slo = serve_stream(service, [])
        assert alarms == []
        assert slo["submitted"] == 0
        assert slo["lost"] == 0
