"""The ``distributed_replay`` scenario, the shard cache tier, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ArtifactCache, ShardSetKey, SimulationKey
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec


def tiny_spec(tiny_protocol, scenario="distributed_replay", **params):
    return RunSpec(
        scenario=scenario,
        platforms=("intel_purley", "k920"),
        models=("lightgbm",),
        scale=tiny_protocol.scale,
        hours=tiny_protocol.duration_hours,
        seed=tiny_protocol.seed,
        max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
        params=params,
    )


def seeded_cache(spec, tiny_study, root=None):
    cache = ArtifactCache(root)
    context = RunContext(spec, cache=cache)
    for platform in spec.platforms:
        cache.put_simulation(
            context.simulation_key(platform), tiny_study[platform]
        )
    return cache


class TestDistributedReplayScenario:
    @pytest.fixture(scope="class")
    def result(self, tiny_study, tiny_protocol):
        spec = tiny_spec(
            tiny_protocol,
            replay_workers=2,
            serve={"max_records": 300},
        )
        cache = seeded_cache(spec, tiny_study)
        return run_spec(spec, protocol=tiny_protocol, cache=cache)

    def test_parity_gates_all_pass(self, result):
        parity = result.extras["distributed_replay"]["parity"]
        assert parity == {
            "score_logs": True,
            "alarm_summaries": True,
            "costs": True,
            "fleet_cost": True,
            "bus_counts": True,
            "all": True,
        }

    def test_serving_slice_loses_nothing(self, result):
        serving = result.extras["distributed_replay"]["serving"]
        assert serving["lost"] == 0
        assert serving["answered"] == serving["submitted"]
        assert serving["records"] > 0
        assert serving["p50_ms"] <= serving["p99_ms"]

    def test_report_and_cells_shape(self, result):
        payload = result.extras["distributed_replay"]
        assert payload["workers"] == 2
        report = payload["report"]
        assert report["distributed"]["partitions"] == 2
        assert set(report["platforms"]) == {"intel_purley", "k920"}
        assert payload["baseline"]["events_per_second"] > 0
        assert len(result.cells) == 2
        assert result.any_nonfinite() == []

    def test_renderer_mentions_parity(self, result):
        from repro.distributed.scenario import render_distributed_extras

        rendered = render_distributed_extras(result.extras)
        assert "parity: OK" in rendered
        assert "async serving" in rendered


class TestWorkersParams:
    def test_fleet_ops_with_workers_reports_distributed(
        self, tiny_study, tiny_protocol
    ):
        spec = tiny_spec(tiny_protocol, scenario="fleet_ops")
        spec.params["replay_workers"] = 2
        cache = seeded_cache(spec, tiny_study)
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        report = result.extras["fleet_ops"]["report"]
        assert report["distributed"]["workers"] == 2
        assert report["distributed"]["partitions"] == 2
        assert report["scored"] > 0

    def test_streaming_verify_rejects_workers(self, tiny_protocol):
        spec = RunSpec(
            scenario="streaming_replay",
            platforms=("intel_purley",),
            models=("lightgbm",),
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
            params={"verify_parity": True, "replay_workers": 2},
        )
        with pytest.raises(ValueError, match="replay_workers"):
            run_spec(spec, protocol=tiny_protocol)


class TestShardCacheTier:
    @pytest.fixture()
    def shard_key(self, tiny_protocol):
        return ShardSetKey(
            simulations=(
                SimulationKey(
                    "intel_purley", tiny_protocol.scale, tiny_protocol.seed,
                    tiny_protocol.duration_hours,
                ),
            ),
            n_shards=2,
        )

    def test_build_then_disk_hit(self, tiny_study, shard_key, tmp_path):
        cache = ArtifactCache(tmp_path)
        stores = {
            "intel_purley": tiny_study["intel_purley"].store.columns
        }
        shard_dir, manifest = cache.shard_set(shard_key, lambda: stores)
        assert manifest.n_shards == 2
        assert cache.counters["shards"].builds == 1
        # Memory tier.
        again_dir, _ = cache.shard_set(
            shard_key, lambda: pytest.fail("must not rebuild")
        )
        assert again_dir == shard_dir
        assert cache.counters["shards"].memory_hits == 1
        # Disk tier (fresh cache object, same root).
        fresh = ArtifactCache(tmp_path)
        fresh_dir, fresh_manifest = fresh.shard_set(
            shard_key, lambda: pytest.fail("must not rebuild")
        )
        assert fresh_dir == shard_dir
        assert fresh_manifest == manifest
        assert fresh.counters["shards"].disk_hits == 1

    def test_stale_format_rebuilds_in_place(
        self, tiny_study, shard_key, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        stores = {
            "intel_purley": tiny_study["intel_purley"].store.columns
        }
        shard_dir, _ = cache.shard_set(shard_key, lambda: stores)
        manifest_path = shard_dir / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["format"] = 0  # a different (older) shard layout
        manifest_path.write_text(json.dumps(payload))
        fresh = ArtifactCache(tmp_path)
        _, manifest = fresh.shard_set(shard_key, lambda: stores)
        assert fresh.counters["shards"].builds == 1
        assert fresh.counters["shards"].disk_hits == 0
        assert json.loads(manifest_path.read_text())["format"] == (
            manifest.format
        )

    def test_missing_shard_file_rebuilds(
        self, tiny_study, shard_key, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        stores = {
            "intel_purley": tiny_study["intel_purley"].store.columns
        }
        shard_dir, manifest = cache.shard_set(shard_key, lambda: stores)
        (shard_dir / manifest.shards[0]["path"]).unlink()
        fresh = ArtifactCache(tmp_path)
        fresh.shard_set(shard_key, lambda: stores)
        assert fresh.counters["shards"].builds == 1
        assert (shard_dir / manifest.shards[0]["path"]).exists()

    def test_memory_only_cache_refuses(self, shard_key):
        cache = ArtifactCache()
        with pytest.raises(ValueError, match="disk cache root"):
            cache.shard_set(shard_key, dict)


class TestShardCli:
    def test_shard_command_writes_set_and_caches(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "set"
        argv = [
            "shard", "--platforms", "intel_purley", "--scale", "0.05",
            "--hours", "720", "--seed", "7", "--shards", "2",
            "--out", str(out),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr().out
        assert "wrote 2 shards" in captured
        assert (out / "manifest.json").exists()

    def test_shard_command_into_cache_tier(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "artifacts"
        argv = [
            "shard", "--platforms", "intel_purley", "--scale", "0.05",
            "--hours", "720", "--seed", "7", "--shards", "2",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "shard sets built=1" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "shard sets built=0" in second
        assert "disk_hits=1" in second

    def test_shard_command_needs_a_destination(self, capsys):
        from repro.cli import main

        assert main(["shard", "--platforms", "intel_purley"]) == 2
        assert "give --out" in capsys.readouterr().err
