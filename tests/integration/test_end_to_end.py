"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

from repro.core import MemoryFailurePredictor
from repro.evaluation import PlatformExperiment, render_table1, render_table2
from repro.evaluation.ablation import feature_group_ablation, virr_sensitivity
from repro.evaluation.table2 import Table2Results, run_table2
from repro.analysis import table1_series
from repro.mlops.lifecycle import run_lifecycle


class TestExperimentPipeline:
    def test_prepare_and_run_gbdt(self, purley_sim, tiny_protocol):
        experiment = PlatformExperiment.prepare(purley_sim, tiny_protocol)
        assert len(experiment.train) > 0
        assert len(experiment.test) > 0
        result = experiment.run_model("lightgbm")
        assert result.supported
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert result.test_dimms > 0

    def test_risky_baseline_unsupported_elsewhere(self, whitley_sim, tiny_protocol):
        experiment = PlatformExperiment.prepare(whitley_sim, tiny_protocol)
        result = experiment.run_model("risky_ce_pattern")
        assert not result.supported
        assert result.as_row() == ("X", "X", "X", "X")

    def test_model_beats_chance_on_samples(self, purley_sim, tiny_protocol):
        experiment = PlatformExperiment.prepare(purley_sim, tiny_protocol)
        result = experiment.run_model("lightgbm")
        if not np.isnan(result.sample_auc):
            assert result.sample_auc > 0.6


class TestPredictorFacade:
    def test_fit_evaluate_and_assess(self, purley_sim, tiny_protocol):
        predictor = MemoryFailurePredictor(
            platform="intel_purley", algorithm="lightgbm", protocol=tiny_protocol
        )
        result = predictor.fit_evaluate(purley_sim)
        assert result.supported
        assert predictor.is_fitted
        assessments = predictor.assess(purley_sim.store, at_hour=900.0)
        assert assessments
        scores = [a.score for a in assessments]
        assert scores == sorted(scores, reverse=True)
        labels, holdout_scores = predictor.evaluate_holdout()
        assert len(labels) == len(holdout_scores)

    def test_platform_mismatch_rejected(self, whitley_sim, tiny_protocol):
        predictor = MemoryFailurePredictor(platform="intel_purley", protocol=tiny_protocol)
        with pytest.raises(ValueError, match="predictor built for"):
            predictor.fit_evaluate(whitley_sim)

    def test_unfitted_predictor_raises(self):
        predictor = MemoryFailurePredictor(platform="intel_purley")
        with pytest.raises(RuntimeError):
            predictor.score_samples(np.zeros((1, 3)))


class TestHarnesses:
    def test_run_table2_on_tiny_study(self, tiny_study, tiny_protocol):
        results = run_table2(
            tiny_protocol,
            simulations=tiny_study,
            model_names=("risky_ce_pattern", "lightgbm"),
        )
        assert isinstance(results, Table2Results)
        cell = results.result("lightgbm", "intel_purley")
        assert cell.supported
        rendered = render_table2(results)
        assert "LightGBM" in rendered and "X" in rendered

    def test_render_table1(self, tiny_study):
        stats = table1_series({k: v.store for k, v in tiny_study.items()})
        rendered = render_table1(stats)
        assert "Intel Purley" in rendered and "K920" in rendered

    def test_feature_ablation_runs(self, purley_sim, tiny_protocol):
        rows = feature_group_ablation(purley_sim, tiny_protocol, "lightgbm")
        labels = [row.label for row in rows]
        assert labels[0] == "all_features"
        assert any("without_bitlevel" in label for label in labels)

    def test_virr_sensitivity_monotone(self, purley_sim, tiny_protocol):
        experiment = PlatformExperiment.prepare(purley_sim, tiny_protocol)
        result = experiment.run_model("lightgbm")
        rows = virr_sensitivity(result)
        values = [row.virr for row in rows]
        assert values == sorted(values, reverse=True)  # VIRR falls with y_c


class TestMlopsLifecycle:
    def test_lifecycle_end_to_end(self, purley_sim, tiny_protocol, tmp_path):
        report = run_lifecycle(
            purley_sim, tiny_protocol, tmp_path / "lake", algorithm="lightgbm"
        )
        assert report.platform == "intel_purley"
        if report.deployed:
            assert report.scored > 0
            assert report.confusion is not None
            assert report.dashboard["feature_store.snapshots"] == 1
        else:
            assert report.gate_reason
