"""Persistence invariants: analysis results survive a JSONL roundtrip."""

from repro.analysis import dataset_stats, fig5_panels, relative_ue_rates
from repro.telemetry.log_store import LogStore


def test_jsonl_roundtrip_preserves_analysis(purley_sim, tmp_path):
    store = purley_sim.store
    path = tmp_path / "campaign.jsonl"
    written = store.dump_jsonl(path)
    assert written == len(store) + len(store.configs)

    loaded = LogStore.load_jsonl(path)

    original_stats = dataset_stats("intel_purley", store)
    loaded_stats = dataset_stats("intel_purley", loaded)
    assert original_stats == loaded_stats

    original_rates = relative_ue_rates(store)
    loaded_rates = relative_ue_rates(loaded)
    assert original_rates == loaded_rates

    original_panels = fig5_panels(store)
    loaded_panels = fig5_panels(loaded)
    assert original_panels == loaded_panels


def test_roundtrip_preserves_record_counts(whitley_sim, tmp_path):
    store = whitley_sim.store
    path = tmp_path / "whitley.jsonl"
    store.dump_jsonl(path)
    loaded = LogStore.load_jsonl(path)
    assert len(loaded.ces) == len(store.ces)
    assert len(loaded.ues) == len(store.ues)
    assert len(loaded.events) == len(store.events)
    assert set(loaded.configs) == set(store.configs)
