"""Alarm incident lifecycle and event-bus behaviour."""

from repro.streaming.alarms import AlarmManager, IncidentStatus
from repro.streaming.bus import ALL_TOPICS, EventBus

LEAD = 3.0
WINDOW = 100.0
HORIZON = LEAD + WINDOW


def manager(bus=None):
    return AlarmManager(LEAD, WINDOW, bus)


class TestIncidentLifecycle:
    def test_first_alarm_opens_later_alarms_suppressed(self):
        alarms = manager()
        incident = alarms.on_alarm("d1", 10.0, 0.9)
        assert incident is not None and incident.status is IncidentStatus.OPEN
        assert alarms.on_alarm("d1", 11.0, 0.95) is None
        assert alarms.raised == 1
        assert alarms.suppressed == 1
        assert incident.suppressed == 1
        assert alarms.blocked("d1", 12.0)
        assert not alarms.blocked("d2", 12.0)

    def test_resolution_by_ue_and_tp_disposition(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_ue("d1", 10.0 + LEAD + 1.0)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["tp"] == 1
        assert summary["precision"] == 1.0
        assert summary["recall"] == 1.0
        assert alarms.incidents[0].status is IncidentStatus.RESOLVED

    def test_insufficient_lead_counts_as_late(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_ue("d1", 10.0 + LEAD / 2.0)  # beat the lead-time budget
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["late"] == 1
        assert summary["tp"] == 0
        assert summary["precision"] == 0.0
        assert summary["recall"] == 0.0  # the UE DIMM was not caught in time

    def test_expiry_frees_the_dimm_to_alarm_again(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        late = 10.0 + HORIZON + 1.0
        assert not alarms.blocked("d1", late)  # expired lazily
        second = alarms.on_alarm("d1", late, 0.8)
        assert second is not None
        assert alarms.expired == 1
        assert alarms.incidents[0].status is IncidentStatus.EXPIRED
        assert alarms.incidents[0].closed_hour == 10.0 + HORIZON

    def test_finalize_expires_or_censors_open_incidents(self):
        alarms = manager()
        alarms.on_alarm("old", 0.0, 0.9)
        alarms.on_alarm("new", 400.0, 0.9)
        alarms.finalize(end_hour=450.0)
        by_dimm = {incident.dimm_id: incident for incident in alarms.incidents}
        assert by_dimm["old"].status is IncidentStatus.EXPIRED  # budget passed
        assert by_dimm["new"].status is IncidentStatus.CENSORED
        summary = alarms.summary()
        assert summary["fp"] == 1
        assert summary["censored"] == 1
        assert summary["precision"] == 0.0

    def test_recall_over_predictable_ue_dimms(self):
        alarms = manager()
        alarms.on_alarm("caught", 10.0, 0.9)
        alarms.on_ue("caught", 20.0)
        alarms.on_ue("missed", 30.0)
        alarms.on_ue("sudden", 40.0, predictable=False)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["ue_dimms"] == 3
        assert summary["ue_dimms_predictable"] == 2
        assert summary["ue_dimms_caught"] == 1
        assert summary["recall"] == 0.5

    def test_live_from_filters_pre_deployment_incidents(self):
        alarms = manager()
        alarms.on_alarm("early", 5.0, 0.9)
        alarms.on_ue("early", 5.0 + LEAD + 1.0)
        alarms.on_ue("late-ue", 200.0)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary(live_from_hour=100.0)
        assert summary["tp"] == 0  # opened pre-deployment: not judged
        assert summary["ue_dimms"] == 1  # only the live-period UE counts


class TestEventBus:
    def test_topic_and_wildcard_delivery_with_counts(self):
        bus = EventBus()
        seen = []
        bus.subscribe("alarm.raised", lambda topic, p: seen.append((topic, p)))
        everything = []
        bus.subscribe(ALL_TOPICS, lambda topic, p: everything.append(topic))
        bus.publish("alarm.raised", {"dimm": "d1"})
        bus.publish("incident.expired", {"dimm": "d1"})
        assert seen == [("alarm.raised", {"dimm": "d1"})]
        assert everything == ["alarm.raised", "incident.expired"]
        assert bus.counts() == {"alarm.raised": 1, "incident.expired": 1}

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("t", lambda topic, p: seen.append(p))
        bus.publish("t", 1)
        unsubscribe()
        bus.publish("t", 2)
        assert seen == [1]

    def test_manager_publishes_lifecycle_topics(self):
        bus = EventBus()
        alarms = manager(bus)
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_alarm("d1", 11.0, 0.9)  # suppressed
        alarms.on_ue("d1", 10.0 + LEAD + 1.0)  # resolved
        alarms.on_alarm("d2", 10.0, 0.9)
        alarms.finalize(end_hour=10.0 + HORIZON + 1.0)  # d2 expires
        assert bus.counts() == {
            "alarm.raised": 2,
            "alarm.suppressed": 1,
            "incident.resolved": 1,
            "incident.expired": 1,
        }
