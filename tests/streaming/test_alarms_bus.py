"""Alarm incident lifecycle and event-bus behaviour."""

from repro.streaming.alarms import AlarmManager, IncidentStatus
from repro.streaming.bus import ALL_TOPICS, EventBus

LEAD = 3.0
WINDOW = 100.0
HORIZON = LEAD + WINDOW


def manager(bus=None):
    return AlarmManager(LEAD, WINDOW, bus)


class TestIncidentLifecycle:
    def test_first_alarm_opens_later_alarms_suppressed(self):
        alarms = manager()
        incident = alarms.on_alarm("d1", 10.0, 0.9)
        assert incident is not None and incident.status is IncidentStatus.OPEN
        assert alarms.on_alarm("d1", 11.0, 0.95) is None
        assert alarms.raised == 1
        assert alarms.suppressed == 1
        assert incident.suppressed == 1
        assert alarms.blocked("d1", 12.0)
        assert not alarms.blocked("d2", 12.0)

    def test_resolution_by_ue_and_tp_disposition(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_ue("d1", 10.0 + LEAD + 1.0)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["tp"] == 1
        assert summary["precision"] == 1.0
        assert summary["recall"] == 1.0
        assert alarms.incidents[0].status is IncidentStatus.RESOLVED

    def test_insufficient_lead_counts_as_late(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_ue("d1", 10.0 + LEAD / 2.0)  # beat the lead-time budget
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["late"] == 1
        assert summary["tp"] == 0
        assert summary["precision"] == 0.0
        assert summary["recall"] == 0.0  # the UE DIMM was not caught in time

    def test_expiry_frees_the_dimm_to_alarm_again(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        late = 10.0 + HORIZON + 1.0
        assert not alarms.blocked("d1", late)  # expired lazily
        second = alarms.on_alarm("d1", late, 0.8)
        assert second is not None
        assert alarms.expired == 1
        assert alarms.incidents[0].status is IncidentStatus.EXPIRED
        assert alarms.incidents[0].closed_hour == 10.0 + HORIZON

    def test_finalize_expires_or_censors_open_incidents(self):
        alarms = manager()
        alarms.on_alarm("old", 0.0, 0.9)
        alarms.on_alarm("new", 400.0, 0.9)
        alarms.finalize(end_hour=450.0)
        by_dimm = {incident.dimm_id: incident for incident in alarms.incidents}
        assert by_dimm["old"].status is IncidentStatus.EXPIRED  # budget passed
        assert by_dimm["new"].status is IncidentStatus.CENSORED
        summary = alarms.summary()
        assert summary["fp"] == 1
        assert summary["censored"] == 1
        assert summary["precision"] == 0.0

    def test_recall_over_predictable_ue_dimms(self):
        alarms = manager()
        alarms.on_alarm("caught", 10.0, 0.9)
        alarms.on_ue("caught", 20.0)
        alarms.on_ue("missed", 30.0)
        alarms.on_ue("sudden", 40.0, predictable=False)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["ue_dimms"] == 3
        assert summary["ue_dimms_predictable"] == 2
        assert summary["ue_dimms_caught"] == 1
        assert summary["recall"] == 0.5

    def test_live_from_filters_pre_deployment_incidents(self):
        alarms = manager()
        alarms.on_alarm("early", 5.0, 0.9)
        alarms.on_ue("early", 5.0 + LEAD + 1.0)
        alarms.on_ue("late-ue", 200.0)
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary(live_from_hour=100.0)
        assert summary["tp"] == 0  # opened pre-deployment: not judged
        assert summary["ue_dimms"] == 1  # only the live-period UE counts


class TestEdgeOrderings:
    """Boundary orderings production streams actually produce."""

    def test_alarm_and_ue_at_the_same_timestamp_resolves(self):
        """A UE sharing the alarm's timestamp resolves the incident —
        as a *late* catch (zero achieved lead < the lead budget)."""
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_ue("d1", 10.0)
        assert alarms.resolved == 1
        assert alarms.incidents[0].status is IncidentStatus.RESOLVED
        assert alarms.incidents[0].ue_hour == 10.0
        alarms.finalize(end_hour=500.0)
        summary = alarms.summary()
        assert summary["late"] == 1 and summary["tp"] == 0

    def test_ue_then_alarm_at_the_same_timestamp_opens_fresh_incident(self):
        """The opposite arrival order: the UE settles first, a same-hour
        alarming score then opens a *new* incident (a replacement DIMM
        reusing the id), which must expire on its own budget."""
        alarms = manager()
        alarms.on_ue("d1", 10.0)
        incident = alarms.on_alarm("d1", 10.0, 0.9)
        assert incident is not None and alarms.raised == 1
        alarms.finalize(end_hour=10.0 + HORIZON + 1.0)
        assert incident.status is IncidentStatus.EXPIRED
        summary = alarms.summary()
        assert summary["fp"] == 1
        # the UE stays on the books exactly once
        assert summary["ue_dimms"] == 1

    def test_expiry_boundary_is_exclusive(self):
        """An event exactly at the budget boundary still sees the incident
        (strict > in expiry), one tick later it does not."""
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        boundary = 10.0 + HORIZON
        assert alarms.blocked("d1", boundary)
        assert not alarms.blocked("d1", boundary + 1e-9)
        assert alarms.incidents[0].closed_hour == boundary

    def test_re_raise_after_expiry_then_ue_splits_dispositions(self):
        """First incident expires (fp), the re-raise catches the UE (tp);
        recall credits the DIMM exactly once."""
        alarms = manager()
        alarms.on_alarm("d1", 0.0, 0.9)
        second_hour = HORIZON + 10.0
        second = alarms.on_alarm("d1", second_hour, 0.8)
        assert second is not None
        alarms.on_ue("d1", second_hour + LEAD + 1.0)
        alarms.finalize(end_hour=second_hour + LEAD + 2.0)
        summary = alarms.summary()
        assert summary["fp"] == 1
        assert summary["tp"] == 1
        assert summary["ue_dimms_caught"] == 1
        assert summary["recall"] == 1.0
        assert summary["precision"] == 0.5

    def test_suppressed_alarms_never_change_dispositions(self):
        """Suppression is bookkeeping only: a storm of alarming scores
        inside one incident moves `suppressed`, not tp/fp or P/R."""
        quiet = manager()
        quiet.on_alarm("d1", 10.0, 0.9)
        quiet.on_ue("d1", 10.0 + LEAD + 1.0)

        noisy = manager()
        noisy.on_alarm("d1", 10.0, 0.9)
        for offset in range(1, 4):
            assert noisy.on_alarm("d1", 10.0 + offset * 0.01, 0.95) is None
        noisy.on_ue("d1", 10.0 + LEAD + 1.0)

        for alarms in (quiet, noisy):
            alarms.finalize(end_hour=500.0)
        assert noisy.suppressed == 3
        assert noisy.incidents[0].suppressed == 3
        assert quiet.summary() == {
            **noisy.summary(), "suppressed": 0,
        }

    def test_suppressed_count_survives_resolution_and_expiry(self):
        alarms = manager()
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_alarm("d1", 11.0, 0.9)  # suppressed inside the incident
        # after expiry the DIMM re-alarms; the old incident keeps its count
        re_raise_hour = 10.0 + HORIZON + 1.0
        alarms.on_alarm("d1", re_raise_hour, 0.9)
        alarms.on_alarm("d1", re_raise_hour + 0.5, 0.9)  # suppressed again
        alarms.finalize(end_hour=re_raise_hour + 1.0)
        assert [incident.suppressed for incident in alarms.incidents] == [1, 1]
        assert alarms.suppressed == 2


class TestEventBus:
    def test_topic_and_wildcard_delivery_with_counts(self):
        bus = EventBus()
        seen = []
        bus.subscribe("alarm.raised", lambda topic, p: seen.append((topic, p)))
        everything = []
        bus.subscribe(ALL_TOPICS, lambda topic, p: everything.append(topic))
        bus.publish("alarm.raised", {"dimm": "d1"})
        bus.publish("incident.expired", {"dimm": "d1"})
        assert seen == [("alarm.raised", {"dimm": "d1"})]
        assert everything == ["alarm.raised", "incident.expired"]
        assert bus.counts() == {"alarm.raised": 1, "incident.expired": 1}

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("t", lambda topic, p: seen.append(p))
        bus.publish("t", 1)
        unsubscribe()
        bus.publish("t", 2)
        assert seen == [1]

    def test_manager_publishes_lifecycle_topics(self):
        bus = EventBus()
        alarms = manager(bus)
        alarms.on_alarm("d1", 10.0, 0.9)
        alarms.on_alarm("d1", 11.0, 0.9)  # suppressed
        alarms.on_ue("d1", 10.0 + LEAD + 1.0)  # resolved
        alarms.on_alarm("d2", 10.0, 0.9)
        alarms.finalize(end_hour=10.0 + HORIZON + 1.0)  # d2 expires
        assert bus.counts() == {
            "alarm.raised": 2,
            "alarm.suppressed": 1,
            "incident.resolved": 1,
            "incident.expired": 1,
        }
