"""Replay engine: columnar stream merge, micro-batching, scenario wiring."""

import numpy as np
import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.streaming.bus import EventBus
from repro.streaming.replay import ReplayEngine
from repro.telemetry.records import CERecord, MemEventRecord, UERecord


class _EchoModel:
    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="module")
def purley(tiny_study):
    simulation = tiny_study["intel_purley"]
    pipeline = FeaturePipeline()
    pipeline.fit(simulation.store)
    return simulation, pipeline


def _engine(simulation, pipeline, **kwargs):
    defaults = dict(
        configs=simulation.store.configs,
        labeling=LabelingParams(),
        bus=EventBus(),
        rescore_interval_hours=0.0,
        batch_size=64,
    )
    defaults.update(kwargs)
    return ReplayEngine(
        pipeline, _EchoModel(), 0.985, "intel_purley", **defaults
    )


class TestReplayEngine:
    def test_replay_counts_every_record_and_is_parity_clean(self, purley):
        simulation, pipeline = purley
        store = simulation.store
        engine = _engine(simulation, pipeline, verify_parity=True)
        report = engine.replay(store, model_name="echo")
        assert report.events == len(store)
        assert report.ces == len(store.ces)
        assert report.ues == len(store.ues)
        assert report.mem_events == len(store.events)
        assert report.scored > 0
        assert report.batches >= 1
        assert report.seconds > 0
        assert report.events_per_second > 0
        assert report.fallbacks == 0
        assert report.parity == {"checked": report.scored, "mismatches": 0}

    def test_replay_is_deterministic(self, purley):
        simulation, pipeline = purley
        first = _engine(simulation, pipeline).replay(simulation.store)
        second = _engine(simulation, pipeline).replay(simulation.store)
        assert first.alarms == second.alarms
        assert first.scored == second.scored

    def test_batch_size_does_not_change_incidents(self, purley):
        """Micro-batching never changes the incident set or its metrics.

        Only the bookkeeping of *redundant* scores moves: with a large
        batch, a DIMM's queued scores behind a fresh incident surface as
        suppressed alarms instead of being skipped before scoring.
        """
        simulation, pipeline = purley
        small_engine = _engine(simulation, pipeline, batch_size=1)
        small = small_engine.replay(simulation.store)
        large_engine = _engine(simulation, pipeline, batch_size=4096)
        large = large_engine.replay(simulation.store)

        def incident_keys(engine):
            return [
                (incident.dimm_id, incident.opened_hour, incident.score,
                 incident.status)
                for incident in engine.alarms.incidents
            ]

        assert incident_keys(small_engine) == incident_keys(large_engine)
        invariant = lambda summary: {  # noqa: E731
            key: value
            for key, value in summary.items()
            if key != "suppressed"
        }
        assert invariant(small.alarms) == invariant(large.alarms)
        assert large.scored >= small.scored > 0

    def test_bus_carries_lifecycle_outcomes(self, purley):
        simulation, pipeline = purley
        bus = EventBus()
        seen = []
        bus.subscribe("alarm.raised", lambda topic, inc: seen.append(inc))
        engine = _engine(simulation, pipeline, bus=bus)
        report = engine.replay(simulation.store)
        assert len(seen) == report.alarms["raised"]
        assert report.bus_counts.get("alarm.raised", 0) == len(seen)

    def test_live_from_hour_gates_scoring(self, purley):
        simulation, pipeline = purley
        split = simulation.duration_hours * 0.6
        engine = _engine(simulation, pipeline, live_from_hour=split)
        live = engine.replay(simulation.store)
        full = _engine(simulation, pipeline).replay(simulation.store)
        assert 0 < live.scored < full.scored
        # every incident opened in the live window
        assert engine.alarms.incidents, "expected at least one incident"
        assert all(
            incident.opened_hour >= split
            for incident in engine.alarms.incidents
        )

    def test_rescore_interval_thins_scoring(self, purley):
        simulation, pipeline = purley
        dense = _engine(simulation, pipeline).replay(simulation.store)
        sparse = _engine(
            simulation, pipeline, rescore_interval_hours=24.0
        ).replay(simulation.store)
        assert sparse.scored < dense.scored

    def test_stream_order_matches_iter_stream(self, purley):
        """The columnar merge preserves iter_stream's tie order."""
        from repro.telemetry.log_store import iter_stream
        from repro.telemetry.columnar import CE_T, EV_T, UE_T

        simulation, _ = purley
        store = simulation.store
        columns = store.columns
        ce = columns.ces.rows()
        ue = columns.ues.rows()
        ev = columns.events.rows()
        n_ce, n_ue = len(ce), len(ue)
        times = np.concatenate([ce[:, CE_T], ue[:, UE_T], ev[:, EV_T]])
        tags = np.empty(times.size, dtype=np.int8)
        tags[:n_ce] = 0
        tags[n_ce:n_ce + n_ue] = 1
        tags[n_ce + n_ue:] = 2
        order = np.lexsort((tags, times))
        merged = [(float(times[i]), int(tags[i])) for i in order]
        kind_tag = {CERecord: 0, UERecord: 1, MemEventRecord: 2}
        expected = [
            (record.timestamp_hours, kind_tag[type(record)])
            for record in iter_stream(store)
        ]
        assert merged == expected


class TestStreamingScenario:
    @pytest.fixture(scope="class")
    def result(self, tiny_study, tiny_protocol):
        spec = RunSpec(
            scenario="streaming_replay",
            platforms=("intel_purley",),
            models=("lightgbm",),
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
            max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
            params={"verify_parity": True, "batch_size": 64},
        )
        cache = ArtifactCache()
        context = RunContext(spec, cache=cache)
        cache.put_simulation(
            context.simulation_key("intel_purley"), tiny_study["intel_purley"]
        )
        return run_spec(spec, protocol=tiny_protocol, cache=cache)

    def test_cell_grid_and_extras(self, result):
        assert len(result.cells) == 1
        cell = result.cell("intel_purley", "intel_purley", "lightgbm")
        assert cell.result.supported
        payload = result.extras["streaming_replay"]["intel_purley"]["lightgbm"]
        assert payload["streaming"]["parity"]["mismatches"] == 0
        assert payload["streaming"]["events"] > 0
        assert "offline" in payload
        assert result.any_nonfinite() == []

    def test_result_round_trips_to_json(self, result, tmp_path):
        out = tmp_path / "result.json"
        result.to_json_file(out)
        import json

        payload = json.loads(out.read_text())
        assert "extras" in payload
        assert "streaming_replay" in payload["extras"]

    def test_unsupported_model_yields_unsupported_cell(
        self, tiny_study, tiny_protocol
    ):
        spec = RunSpec(
            scenario="streaming_replay",
            platforms=("intel_whitley",),
            models=("risky_ce_pattern",),  # purley-only heuristic
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
        )
        cache = ArtifactCache()
        context = RunContext(spec, cache=cache)
        cache.put_simulation(
            context.simulation_key("intel_whitley"),
            tiny_study["intel_whitley"],
        )
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        cell = result.cell("intel_whitley", "intel_whitley", "risky_ce_pattern")
        assert not cell.result.supported
