"""Batched replay kernels vs the per-event reference: cross-engine parity.

The batched engine (:mod:`repro.streaming.kernels`) must be bit-for-bit
the pure-Python per-event loop on ANY stream — the property suite here
drives both engines over randomized synthetic campaigns full of the
hard cases (out-of-order appends, same-timestamp CE/UE/storm ties,
storm and repair interleavings, rescore-throttled regressing queries)
and asserts the complete observable state matches: score logs, alarm
ledgers, bus traffic, batch structure and fallback counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.streaming.bus import EventBus
from repro.streaming.replay import ReplayEngine
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
)

#: Timestamps live on a coarse grid so exact same-hour ties are common.
GRID_HOURS = 0.25
MAX_TICK = 240  # 60 hours of campaign

EVENT_KINDS = (
    MemEventKind.CE_STORM,
    MemEventKind.CE_SUPPRESSED,
    MemEventKind.PAGE_OFFLINE,
    MemEventKind.ROW_SPARED,
    MemEventKind.BANK_SPARED,
)


class _SpreadModel:
    """Deterministic scores spread over (0, 1) so alarms fire sometimes."""

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 10.0))


def _config(dimm_id: str, server_id: str, flavor: int) -> DimmConfigRecord:
    return DimmConfigRecord(
        dimm_id=dimm_id,
        server_id=server_id,
        platform="synthetic",
        manufacturer=("m0", "m1")[flavor % 2],
        part_number=f"p{flavor % 3}",
        capacity_gb=(16, 32)[flavor % 2],
        data_width=(4, 8)[flavor % 2],
        frequency_mts=(2400, 2933)[flavor % 2],
        chip_process=("1x", "1y")[flavor % 2],
    )


@st.composite
def stream_case(draw):
    """One synthetic campaign: records (in arrival order) + engine knobs."""
    n_dimms = draw(st.integers(min_value=1, max_value=3))
    records = []
    for i in range(n_dimms):
        dimm, server = f"d{i}", f"s{i % 2}"
        ticks = sorted(
            draw(
                st.lists(
                    st.integers(0, MAX_TICK), min_size=0, max_size=12
                )
            )
        )
        for tick in ticks:
            records.append(
                CERecord(
                    timestamp_hours=tick * GRID_HOURS,
                    server_id=server,
                    dimm_id=dimm,
                    rank=draw(st.integers(0, 1)),
                    bank=draw(st.integers(0, 3)),
                    row=draw(st.integers(0, 7)),
                    column=draw(st.integers(0, 7)),
                    devices=tuple(range(draw(st.integers(1, 2)))),
                    dq_count=draw(st.integers(1, 4)),
                    beat_count=draw(st.integers(1, 8)),
                    dq_interval=draw(st.integers(0, 4)),
                    beat_interval=draw(st.integers(0, 8)),
                    error_bit_count=draw(st.integers(1, 16)),
                )
            )
        # Storms / repairs / suppressions, often exactly at a CE's hour —
        # the tie the storm-window semantics are most sensitive to.
        for _ in range(draw(st.integers(0, 3))):
            if ticks and draw(st.booleans()):
                tick = draw(st.sampled_from(ticks))
            else:
                tick = draw(st.integers(0, MAX_TICK))
            records.append(
                MemEventRecord(
                    timestamp_hours=tick * GRID_HOURS,
                    server_id=server,
                    dimm_id=dimm,
                    kind=draw(st.sampled_from(EVENT_KINDS)),
                )
            )
        # Optional mid-stream UE, possibly tying a CE timestamp exactly.
        if draw(st.booleans()):
            if ticks and draw(st.booleans()):
                tick = draw(st.sampled_from(ticks))
            else:
                tick = draw(st.integers(0, MAX_TICK))
            records.append(
                UERecord(
                    timestamp_hours=tick * GRID_HOURS,
                    server_id=server,
                    dimm_id=dimm,
                    rank=0,
                    bank=0,
                    row=0,
                    column=0,
                    devices=(0,),
                )
            )
    # Out-of-order arrival: append order is a random permutation.
    order = draw(st.permutations(range(len(records))))
    knobs = {
        "rescore_interval_hours": draw(st.sampled_from([0.0, 1.0])),
        "live_from_hour": draw(
            st.sampled_from([0.0, MAX_TICK * GRID_HOURS / 2])
        ),
        "batch_size": draw(st.sampled_from([3, 64])),
        "threshold": draw(st.sampled_from([0.45, 0.7, 0.999])),
    }
    return [records[i] for i in order], knobs


def _build_store(records, n_dimms: int = 3) -> LogStore:
    store = LogStore()
    for i in range(n_dimms):
        store.add_config(_config(f"d{i}", f"s{i % 2}", i))
    store.extend(records)
    return store


def _run(store, engine: str, knobs: dict) -> tuple[ReplayEngine, object]:
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    replayer = ReplayEngine(
        pipeline,
        _SpreadModel(),
        knobs["threshold"],
        "synthetic",
        configs=store.configs,
        labeling=LabelingParams(),
        bus=EventBus(),
        live_from_hour=knobs["live_from_hour"],
        rescore_interval_hours=knobs["rescore_interval_hours"],
        batch_size=knobs["batch_size"],
        engine=engine,
        verify_parity=True,
        collect_scores=True,
    )
    report = replayer.replay(store, model_name="spread")
    return replayer, report


def _assert_engines_identical(store, knobs):
    batched, b_report = _run(store, "batched", knobs)
    per_event, p_report = _run(store, "per_event", knobs)
    # The served vectors themselves are pinned against transform_one...
    assert b_report.parity == {
        "checked": b_report.scored, "mismatches": 0
    }
    assert p_report.parity == {
        "checked": p_report.scored, "mismatches": 0
    }
    # ...and every observable output matches the reference loop exactly.
    assert batched.score_log == per_event.score_log
    assert b_report.scored == p_report.scored
    assert b_report.batches == p_report.batches
    assert b_report.scored_dimms == p_report.scored_dimms
    assert b_report.fallbacks == p_report.fallbacks == 0
    assert b_report.alarms == p_report.alarms
    assert b_report.bus_counts == p_report.bus_counts
    assert (b_report.events, b_report.ces, b_report.ues) == (
        p_report.events, p_report.ces, p_report.ues
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=stream_case())
def test_batched_matches_per_event_on_random_streams(case):
    records, knobs = case
    _assert_engines_identical(_build_store(records), knobs)


class TestDeterministicTies:
    """Hand-built worst cases the randomized sweep should never miss."""

    KNOBS = {
        "rescore_interval_hours": 0.0,
        "live_from_hour": 0.0,
        "batch_size": 3,
        "threshold": 0.45,
    }

    def _ce(self, t, dimm="d0", server="s0", **overrides):
        fields = dict(
            timestamp_hours=t, server_id=server, dimm_id=dimm,
            rank=0, bank=1, row=2, column=3, devices=(0,),
            dq_count=2, beat_count=3, dq_interval=1, beat_interval=4,
            error_bit_count=6,
        )
        fields.update(overrides)
        return CERecord(**fields)

    def test_storm_exactly_at_ce_time(self):
        records = [
            self._ce(1.0),
            self._ce(2.0),
            MemEventRecord(
                timestamp_hours=2.0, server_id="s0", dimm_id="d0",
                kind=MemEventKind.CE_STORM,
            ),
            self._ce(2.0),  # same hour as the storm AND the prior CE
            self._ce(3.0),
        ]
        _assert_engines_identical(_build_store(records), self.KNOBS)

    def test_ue_exactly_at_ce_time_then_recovery(self):
        records = [
            self._ce(1.0),
            self._ce(5.0),
            UERecord(
                timestamp_hours=5.0, server_id="s0", dimm_id="d0",
                rank=0, bank=0, row=0, column=0, devices=(0,),
            ),
            # Post-UE CEs open a fresh epoch on the same DIMM.
            self._ce(6.0),
            self._ce(7.0),
        ]
        _assert_engines_identical(_build_store(records), self.KNOBS)

    def test_repair_interleaving_and_rescore_throttle(self):
        records = [
            self._ce(1.0),
            self._ce(1.5),
            MemEventRecord(
                timestamp_hours=1.5, server_id="s0", dimm_id="d0",
                kind=MemEventKind.BANK_SPARED,
            ),
            self._ce(1.75),  # throttled under a 1h rescore interval
            self._ce(3.0),
            MemEventRecord(
                timestamp_hours=3.0, server_id="s0", dimm_id="d0",
                kind=MemEventKind.PAGE_OFFLINE,
            ),
            self._ce(4.0),
        ]
        knobs = dict(self.KNOBS, rescore_interval_hours=1.0)
        _assert_engines_identical(_build_store(records), knobs)

    def test_two_dimms_share_every_timestamp(self):
        records = []
        for t in (1.0, 2.0, 2.0, 3.0):
            records.append(self._ce(t, dimm="d0", server="s0"))
            records.append(self._ce(t, dimm="d1", server="s1"))
        records.append(
            UERecord(
                timestamp_hours=3.0, server_id="s1", dimm_id="d1",
                rank=0, bank=0, row=0, column=0, devices=(0,),
            )
        )
        _assert_engines_identical(_build_store(records), self.KNOBS)

    def test_empty_and_config_only_stream(self):
        _assert_engines_identical(_build_store([]), self.KNOBS)


class TestRealCampaignCrossEngine:
    """Both engines on a real simulated campaign (storms, repairs, UEs)."""

    @pytest.mark.parametrize("rescore", [0.0, 1.0 / 12.0])
    def test_purley_tiny_campaign(self, tiny_study, rescore):
        simulation = tiny_study["intel_purley"]
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        logs = {}
        reports = {}
        for engine in ("batched", "per_event"):
            replayer = ReplayEngine(
                pipeline,
                _SpreadModel(),
                0.985,
                "intel_purley",
                configs=simulation.store.configs,
                labeling=LabelingParams(),
                bus=EventBus(),
                live_from_hour=simulation.duration_hours * 0.6,
                rescore_interval_hours=rescore,
                batch_size=64,
                engine=engine,
                collect_scores=True,
            )
            reports[engine] = replayer.replay(
                simulation.store, model_name="spread"
            )
            logs[engine] = replayer.score_log
        assert logs["batched"] == logs["per_event"]
        assert (
            reports["batched"].alarms == reports["per_event"].alarms
        )
        assert (
            reports["batched"].bus_counts
            == reports["per_event"].bus_counts
        )
        assert reports["batched"].batches == reports["per_event"].batches
        assert reports["batched"].scored > 0
