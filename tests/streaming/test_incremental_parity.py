"""Incremental windowed features: bit-for-bit parity with transform_one.

The acceptance bar for the streaming subsystem: at EVERY CE of EVERY DIMM,
across all three platforms, the incrementally maintained feature vector
equals ``FeaturePipeline.transform_one`` on the same history prefix — the
exact array, not approximately.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.features.windows import AppendableDimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.streaming.incremental import IncrementalFeatureExtractor
from repro.telemetry.log_store import iter_stream
from repro.telemetry.records import CERecord, MemEventRecord, UERecord

PLATFORMS = ("intel_purley", "intel_whitley", "k920")


@pytest.fixture(scope="module", params=PLATFORMS)
def fitted(request, tiny_study):
    simulation = tiny_study[request.param]
    pipeline = FeaturePipeline()
    pipeline.fit(simulation.store)
    return simulation, pipeline


def test_parity_at_every_event(fitted):
    """Streamed vector == transform_one at every CE, whole campaign."""
    simulation, pipeline = fitted
    store = simulation.store
    extractor = IncrementalFeatureExtractor(pipeline)
    states: dict[str, object] = {}
    histories: dict[str, AppendableDimmHistory] = {}
    checked = 0
    for record in iter_stream(store):
        dimm_id = record.dimm_id
        if isinstance(record, UERecord):
            states.pop(dimm_id, None)
            histories.pop(dimm_id, None)
            continue
        state = states.get(dimm_id)
        if state is None:
            state = extractor.state_for(dimm_id)
            states[dimm_id] = state
            histories[dimm_id] = AppendableDimmHistory(dimm_id)
        if isinstance(record, MemEventRecord):
            state.add_event_record(record)
            histories[dimm_id].append_event(record)
            continue
        assert isinstance(record, CERecord)
        state.add_ce_record(record)
        histories[dimm_id].append_ce(record)
        config = store.config_for(dimm_id)
        streamed = extractor.serve(state, config, record.timestamp_hours)
        reference = pipeline.transform_one(
            histories[dimm_id], config, record.timestamp_hours
        )
        assert np.array_equal(streamed, reference), (
            dimm_id, record.timestamp_hours,
        )
        checked += 1
    assert checked > 0
    assert sum(state.fallbacks for state in states.values()) == 0


def test_parity_at_late_and_between_ce_instants(fitted):
    """Rescoring long after the last CE (stale/empty windows) stays exact."""
    simulation, pipeline = fitted
    store = simulation.store
    extractor = IncrementalFeatureExtractor(pipeline)
    dimm_id = store.dimm_ids_with_ces()[0]
    config = store.config_for(dimm_id)
    ces = store.ces_for_dimm(dimm_id)
    state = extractor.state_for(dimm_id)
    history = AppendableDimmHistory(dimm_id)
    for ce in ces:
        state.add_ce_record(ce)
        history.append_ce(ce)
    last = ces[-1].timestamp_hours
    for offset in (0.01, 1.0, 23.0, 119.0, 121.0, 500.0):
        t = last + offset
        assert np.array_equal(
            extractor.serve(state, config, t),
            pipeline.transform_one(history, config, t),
        ), offset
    assert state.fallbacks == 0


def test_out_of_order_and_regressing_queries_fall_back_exactly(fitted):
    """Late arrivals rebuild; queries behind the stream take the reference
    path — both still produce the exact transform_one vector."""
    simulation, pipeline = fitted
    store = simulation.store
    extractor = IncrementalFeatureExtractor(pipeline)
    dimm_id = store.dimm_ids_with_ces()[0]
    config = store.config_for(dimm_id)
    ces = store.ces_for_dimm(dimm_id)
    if len(ces) < 4:
        pytest.skip("need a few CEs")
    state = extractor.state_for(dimm_id)
    # Feed out of order: swap the middle two CEs.
    shuffled = list(ces)
    mid = len(shuffled) // 2
    shuffled[mid], shuffled[mid - 1] = shuffled[mid - 1], shuffled[mid]
    for ce in shuffled:
        state.add_ce_record(ce)
    history = AppendableDimmHistory(dimm_id)
    for ce in shuffled:
        history.append_ce(ce)
    t = ces[-1].timestamp_hours
    assert np.array_equal(
        extractor.serve(state, config, t),
        pipeline.transform_one(history, config, t),
    )
    # A query behind the stream head must fall back, still exact.
    earlier = ces[mid].timestamp_hours
    assert np.array_equal(
        extractor.serve(state, config, earlier),
        pipeline.transform_one(history, config, earlier),
    )
    assert state.fallbacks == 1


def test_empty_history_query_matches(fitted):
    """Serving a DIMM that only saw memory events (no CEs) stays exact."""
    simulation, pipeline = fitted
    store = simulation.store
    extractor = IncrementalFeatureExtractor(pipeline)
    dimm_id = store.dimm_ids_with_ces()[0]
    config = store.config_for(dimm_id)
    state = extractor.state_for(dimm_id)
    history = AppendableDimmHistory(dimm_id)
    for event in store.events_for_dimm(dimm_id):
        state.add_event_record(event)
        history.append_event(event)
    t = simulation.duration_hours / 2.0
    assert np.array_equal(
        extractor.serve(state, config, t),
        pipeline.transform_one(history, config, t),
    )


class _EchoModel:
    """Score depends on the whole feature vector (catches any drift)."""

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def test_incremental_service_scores_and_alarms_identical(tiny_study):
    """OnlinePredictionService(incremental=True) is invisible end to end."""
    store = tiny_study["intel_purley"].store
    pipeline = FeaturePipeline()
    pipeline.fit(store)

    def replay(incremental):
        registry = ModelRegistry()
        version = registry.register(
            "intel_purley", "echo", _EchoModel(), threshold=0.985,
            metrics={"f1": 0.9},
        )
        registry.promote_to_staging(version)
        registry.promote_to_production(version)
        service = OnlinePredictionService(
            FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
            rescore_interval_hours=0.0, incremental=incremental,
        )
        for dimm_id, config in store.configs.items():
            service.register_config(dimm_id, config)
        alarms = [
            alarm
            for record in iter_stream(store)
            if (alarm := service.observe(record)) is not None
        ]
        return service, alarms

    base_service, base_alarms = replay(False)
    inc_service, inc_alarms = replay(True)
    assert inc_service.scored == base_service.scored > 0
    assert inc_service.incremental_served == inc_service.scored
    assert base_service.incremental_served == 0
    assert [a.__dict__ for a in inc_alarms] == [a.__dict__ for a in base_alarms]
