"""Tests for the histogram tree engine, Random Forest and GBDT."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestParams
from repro.ml.gbdt import GbdtClassifier, GbdtParams, _sigmoid
from repro.ml.metrics import roc_auc
from repro.ml.tree import Binner, GradientTree, TreeParams


def xor_data(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestBinner:
    def test_bins_are_uint8_and_ordered(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        binner = Binner(max_bins=16)
        binned = binner.fit_transform(X)
        assert binned.dtype == np.uint8
        assert binned.max() < 16
        # Binning preserves order within a feature.
        order = np.argsort(X[:, 0])
        assert np.all(np.diff(binned[order, 0].astype(int)) >= 0)

    def test_constant_feature_gets_single_bin(self):
        X = np.ones((100, 1))
        binner = Binner(max_bins=8)
        assert set(binner.fit_transform(X)[:, 0].tolist()) <= {0, 1}

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Binner().transform(np.ones((2, 2)))

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)


class TestGradientTree:
    def test_learns_a_simple_threshold(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(600, 1))
        y = (X[:, 0] > 0.25).astype(float)
        binner = Binner()
        binned = binner.fit_transform(X)
        tree = GradientTree(TreeParams(max_leaves=4, min_samples_leaf=5))
        tree.fit(binned, g=-y, h=np.ones(len(y)))
        predictions = tree.predict(binned)
        assert np.mean((predictions > 0.5) == (y > 0.5)) > 0.97

    def test_respects_max_leaves(self):
        X, y = xor_data(800)
        binned = Binner().fit_transform(X)
        tree = GradientTree(TreeParams(max_leaves=5, min_samples_leaf=5))
        tree.fit(binned, g=-y.astype(float), h=np.ones(len(y)))
        assert tree.n_leaves <= 5

    def test_min_samples_leaf_enforced(self):
        X, y = xor_data(200)
        binned = Binner().fit_transform(X)
        tree = GradientTree(TreeParams(min_samples_leaf=80, max_leaves=31))
        tree.fit(binned, g=-y.astype(float), h=np.ones(len(y)))
        # With 200 rows and 80-minimum leaves, at most 2 leaves are possible.
        assert tree.n_leaves <= 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientTree().predict(np.zeros((1, 1), dtype=np.uint8))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TreeParams(max_leaves=1)
        with pytest.raises(ValueError):
            TreeParams(max_bins=256)


class TestRandomForest:
    def test_learns_xor(self):
        # XOR is hard for a forest with sqrt-feature subsampling (2 of 6
        # features per tree): assert clearly-better-than-chance ranking.
        X, y = xor_data()
        model = RandomForestClassifier(RandomForestParams(n_estimators=150))
        model.fit(X[:1500], y[:1500])
        assert roc_auc(y[1500:], model.predict_proba(X[1500:])) > 0.8

    def test_probabilities_in_unit_interval(self):
        X, y = xor_data(400)
        model = RandomForestClassifier(RandomForestParams(n_estimators=10)).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_deterministic_given_seed(self):
        X, y = xor_data(400)
        p1 = RandomForestClassifier(RandomForestParams(n_estimators=10, seed=3)).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(RandomForestParams(n_estimators=10, seed=3)).fit(X, y).predict_proba(X)
        assert np.array_equal(p1, p2)

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))


class TestGbdt:
    def test_learns_xor_better_than_chance(self):
        X, y = xor_data()
        model = GbdtClassifier(GbdtParams(n_estimators=80, early_stopping_rounds=None))
        model.fit(X[:1500], y[:1500])
        assert roc_auc(y[1500:], model.predict_proba(X[1500:])) > 0.95

    def test_early_stopping_truncates_trees(self):
        X, y = xor_data(1200)
        model = GbdtClassifier(
            GbdtParams(n_estimators=200, early_stopping_rounds=5, learning_rate=0.3)
        )
        model.fit(X[:800], y[:800], eval_set=(X[800:1000], y[800:1000]))
        assert model.best_iteration_ < 200

    def test_goss_still_learns(self):
        X, y = xor_data()
        model = GbdtClassifier(
            GbdtParams(n_estimators=60, goss=True, early_stopping_rounds=None)
        )
        model.fit(X[:1500], y[:1500])
        assert roc_auc(y[1500:], model.predict_proba(X[1500:])) > 0.9

    def test_class_weighting_raises_minority_scores(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(1000, 4))
        y = (X[:, 0] > 1.6).astype(int)  # ~5% positive
        weighted = GbdtClassifier(GbdtParams(n_estimators=30, early_stopping_rounds=None))
        unweighted = GbdtClassifier(
            GbdtParams(n_estimators=30, scale_pos_weight=1.0, early_stopping_rounds=None)
        )
        weighted.fit(X, y)
        unweighted.fit(X, y)
        assert weighted.predict_proba(X)[y == 1].mean() > unweighted.predict_proba(X)[y == 1].mean()

    def test_feature_importance_sums_to_one(self):
        X, y = xor_data(1500)
        model = GbdtClassifier(GbdtParams(n_estimators=60, early_stopping_rounds=None)).fit(X, y)
        importance = model.feature_importance()
        assert importance.shape == (6,)
        assert importance.sum() == pytest.approx(1.0)
        # The two informative features should carry outsized importance.
        assert importance[:2].sum() > 2.0 / 6.0

    def test_sigmoid_is_stable_at_extremes(self):
        values = _sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)

    def test_rejects_inconsistent_shapes(self):
        with pytest.raises(ValueError):
            GbdtClassifier().fit(np.zeros((4, 2)), np.zeros(5))
