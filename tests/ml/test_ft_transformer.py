"""Small end-to-end tests for the FT-Transformer."""

import numpy as np
import pytest

from repro.ml.ft_transformer import FtTransformerClassifier, FtTransformerParams
from repro.ml.metrics import roc_auc

FAST = FtTransformerParams(
    dim=16, n_heads=2, n_blocks=1, ffn_hidden=32, max_epochs=10, patience=4,
    batch_size=128, seed=0,
)


def linear_data(n=900, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = ((X[:, 0] - X[:, 1] + 0.3 * rng.normal(size=n)) > 0).astype(int)
    return X, y


def test_learns_linear_signal():
    X, y = linear_data()
    model = FtTransformerClassifier(FAST)
    model.fit(X[:600], y[:600], eval_set=(X[600:750], y[600:750]))
    assert roc_auc(y[750:], model.predict_proba(X[750:])) > 0.85


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        FtTransformerClassifier(FAST).predict_proba(np.zeros((2, 6)))


def test_probabilities_in_unit_interval():
    X, y = linear_data(300)
    model = FtTransformerClassifier(FAST).fit(X, y)
    proba = model.predict_proba(X)
    assert proba.min() >= 0.0 and proba.max() <= 1.0


def test_categorical_features_are_embedded():
    rng = np.random.default_rng(1)
    n = 600
    numeric = rng.normal(size=(n, 3))
    category = rng.integers(0, 4, size=(n, 1))
    y = ((category[:, 0] >= 2) ^ (numeric[:, 0] > 0)).astype(int)
    X = np.hstack([numeric, category.astype(float)])
    model = FtTransformerClassifier(FAST, categorical_cardinalities=(4,))
    model.fit(X[:400], y[:400], eval_set=(X[400:500], y[400:500]))
    assert roc_auc(y[500:], model.predict_proba(X[500:])) > 0.7


def test_early_stopping_restores_best_weights():
    X, y = linear_data(400)
    model = FtTransformerClassifier(FAST)
    model.fit(X[:250], y[:250], eval_set=(X[250:], y[250:]))
    assert model.best_epoch_ is not None
