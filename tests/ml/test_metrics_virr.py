"""Tests for metrics, VIRR and threshold selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import (
    ConfusionCounts,
    average_precision,
    confusion,
    f1_score,
    log_loss,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc,
)
from repro.ml.threshold import apply_threshold, select_threshold, sweep_operating_points
from repro.ml.virr import breakeven_precision, virr, virr_from_counts


class TestConfusion:
    def test_counts(self):
        counts = confusion([1, 1, 0, 0, 1], [1, 0, 1, 0, 1])
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (2, 1, 1, 1)
        assert counts.precision == pytest.approx(2 / 3)
        assert counts.recall == pytest.approx(2 / 3)
        assert counts.f1 == pytest.approx(2 / 3)

    def test_degenerate_cases(self):
        empty = ConfusionCounts(0, 0, 0, 5)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            confusion([1, 0], [1])
        with pytest.raises(ValueError):
            confusion([2, 0], [1, 0])
        with pytest.raises(ValueError):
            confusion([], [])


class TestCurves:
    def test_perfect_ranking(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.2, 0.8, 0.9]
        assert roc_auc(y, s) == 1.0
        assert average_precision(y, s) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_auc_handles_ties(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_auc_is_half(self):
        assert roc_auc([1, 1], [0.3, 0.9]) == 0.5

    def test_pr_curve_monotone_recall(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 100)
        s = rng.random(100)
        precision, recall, thresholds = precision_recall_curve(y, s)
        assert np.all(np.diff(recall) >= 0)
        assert np.all(np.diff(thresholds) <= 0)
        assert recall[-1] == 1.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ap_between_base_rate_and_one(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 50)
        if y.sum() in (0, 50):
            return
        s = rng.random(50)
        ap = average_precision(y, s)
        assert 0.0 < ap <= 1.0

    def test_log_loss_prefers_confident_truth(self):
        assert log_loss([1, 0], [0.9, 0.1]) < log_loss([1, 0], [0.6, 0.4])


class TestVirr:
    def test_paper_formula_examples(self):
        # LightGBM Purley row of Table II: P=0.54, R=0.80 -> VIRR ~ 0.65.
        assert virr(0.54, 0.80, y_c=0.1) == pytest.approx(0.652, abs=1e-3)

    def test_no_prediction_gives_zero(self):
        assert virr(0.0, 0.0) == 0.0

    def test_precision_below_y_c_goes_negative(self):
        assert virr(0.05, 0.5, y_c=0.1) < 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            virr(0.5, 0.5, y_c=1.5)
        with pytest.raises(ValueError):
            virr(0.0, 0.5)

    def test_breakeven(self):
        assert breakeven_precision(0.2) == 0.2

    @given(
        tp=st.integers(1, 500),
        fp=st.integers(0, 500),
        fn=st.integers(0, 500),
        y_c=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_closed_form_matches_exact_accounting(self, tp, fp, fn, y_c):
        counts = ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=10)
        breakdown = virr_from_counts(counts, y_c=y_c)
        closed_form = virr(counts.precision, counts.recall, y_c)
        assert breakdown.virr == pytest.approx(closed_form, abs=1e-9)


class TestThreshold:
    def test_select_threshold_maximises_objective(self):
        y = [0, 0, 0, 1, 1]
        s = [0.1, 0.2, 0.3, 0.8, 0.9]
        point = select_threshold(y, s, objective="f1")
        assert point.f1 == 1.0
        predictions = apply_threshold(s, point.threshold)
        assert f1_score(y, predictions) == 1.0

    def test_sweep_contains_all_distinct_scores(self):
        y = [0, 1, 0, 1]
        s = [0.1, 0.4, 0.4, 0.9]
        points = sweep_operating_points(y, s)
        assert len(points) == 3  # distinct scores

    def test_virr_objective_falls_back_when_all_negative(self):
        y = [1, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        s = [0.2, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.35, 0.3, 0.25]
        point = select_threshold(y, s, objective="virr", y_c=0.9)
        assert point.f1 > 0

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            select_threshold([0, 1], [0.1, 0.9], objective="accuracy")
