"""Gradient checks for the autograd engine and NN layers."""

import numpy as np
import pytest

from repro.ml.autograd import Tensor, no_grad, parameter
from repro.ml.nn import (
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    TransformerBlock,
    binary_cross_entropy_with_logits,
)
from repro.ml.optim import SGD, Adam


def numeric_gradient(f, tensor, eps=1e-6):
    grad = np.zeros_like(tensor.data)
    it = np.nditer(tensor.data, flags=["multi_index"])
    for _ in it:
        index = it.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        plus = float(f().data.sum())
        tensor.data[index] = original - eps
        minus = float(f().data.sum())
        tensor.data[index] = original
        grad[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(f, tensors, atol=1e-6):
    out = f()
    out.backward(np.ones_like(out.data))
    for tensor in tensors:
        numeric = numeric_gradient(f, tensor)
        assert np.allclose(tensor.grad, numeric, atol=atol), (
            f"gradient mismatch: max err "
            f"{np.abs(tensor.grad - numeric).max():.2e}"
        )
        tensor.grad = None


RNG = np.random.default_rng(0)


def make(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestPrimitiveGradients:
    def test_add_mul_broadcast(self):
        a, b = make((3, 4)), make((4,))
        check_gradients(lambda: (a * b + b) * 2.0, [a, b])

    def test_matmul_2d(self):
        a, b = make((3, 4)), make((4, 5))
        check_gradients(lambda: a @ b, [a, b])

    def test_matmul_batched(self):
        a, b = make((2, 3, 4)), make((2, 4, 5))
        check_gradients(lambda: a @ b, [a, b])

    def test_matmul_broadcast_weight(self):
        a, w = make((2, 3, 4)), make((4, 5))
        check_gradients(lambda: a @ w, [a, w])

    def test_reductions(self):
        a = make((3, 4))
        check_gradients(lambda: a.sum(axis=1), [a])
        check_gradients(lambda: a.mean(axis=0, keepdims=True), [a])
        check_gradients(lambda: a.sum(), [a])

    def test_reshape_transpose_getitem(self):
        a = make((2, 3, 4))
        check_gradients(lambda: a.reshape(6, 4).transpose(1, 0), [a])
        check_gradients(lambda: a[:, 0, :], [a])

    def test_nonlinearities(self):
        a = make((3, 4))
        check_gradients(lambda: a.tanh(), [a])
        check_gradients(lambda: a.sigmoid(), [a])
        check_gradients(lambda: a.gelu(), [a], atol=1e-5)
        check_gradients(lambda: a.exp(), [a])
        check_gradients(lambda: (a * a + 1.0).log(), [a])

    def test_softmax(self):
        a = make((3, 5))
        weights = Tensor(RNG.normal(size=(3, 5)))
        check_gradients(lambda: a.softmax(axis=-1) * weights, [a])

    def test_cat_and_broadcast_to(self):
        a, b = make((2, 3)), make((1, 3))
        check_gradients(
            lambda: Tensor.cat([a, b.broadcast_to((2, 3))], axis=0), [a, b]
        )

    def test_take_rows(self):
        table = make((6, 4))
        indices = np.array([0, 2, 2, 5])
        check_gradients(lambda: table.take_rows(indices), [table])

    def test_division(self):
        a, b = make((3,)), Tensor(np.array([2.0, 4.0, 8.0]), requires_grad=True)
        check_gradients(lambda: a / b, [a, b], atol=1e-5)


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        a = make((2, 2))
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_on_nongrad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_gradient_accumulates_over_reuse(self):
        a = make((2,))
        out = a * 3.0 + a * 2.0
        out.backward(np.ones(2))
        assert np.allclose(a.grad, [5.0, 5.0])


class TestLayers:
    def test_linear_gradcheck(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng)
        x = make((5, 4))
        check_gradients(lambda: layer(x), [x, layer.weight, layer.bias])

    def test_layernorm_normalises(self):
        layer = LayerNorm(8)
        x = make((4, 8))
        out = layer(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradcheck(self):
        layer = LayerNorm(6)
        x = make((3, 6))
        check_gradients(lambda: layer(x), [x, layer.gamma, layer.beta], atol=1e-5)

    def test_attention_shape_and_gradflow(self):
        rng = np.random.default_rng(2)
        attention = MultiHeadSelfAttention(dim=8, n_heads=2, rng=rng)
        x = make((2, 5, 8))
        out = attention(x)
        assert out.shape == (2, 5, 8)
        out.sum().backward()
        assert x.grad is not None
        assert attention.query.weight.grad is not None

    def test_attention_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=8, n_heads=3, rng=np.random.default_rng(0))

    def test_transformer_block_preserves_shape(self):
        rng = np.random.default_rng(3)
        block = TransformerBlock(dim=8, n_heads=2, ffn_hidden=16, rng=rng)
        block.set_training(False)
        x = make((2, 4, 8))
        assert block(x).shape == (2, 4, 8)

    def test_bce_matches_reference(self):
        logits = Tensor(np.array([0.0, 2.0, -2.0]), requires_grad=True)
        targets = np.array([1.0, 1.0, 0.0])
        loss = binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.data))
        reference = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert float(loss.data) == pytest.approx(reference, abs=1e-9)

    def test_bce_gradcheck(self):
        logits = make((6,))
        targets = (RNG.random(6) > 0.5).astype(float)
        weights = RNG.uniform(0.5, 2.0, size=6)
        check_gradients(
            lambda: binary_cross_entropy_with_logits(logits, targets, weights),
            [logits],
            atol=1e-6,
        )


class TestOptimisers:
    def test_adam_minimises_quadratic(self):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        for _ in range(300):
            loss = (x * x).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.abs(x.data).max() < 0.05

    def test_sgd_minimises_quadratic(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        optimizer = SGD([x], lr=0.05, momentum=0.5)
        for _ in range(200):
            loss = (x * x).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(float(x.data[0])) < 0.05

    def test_gradient_clipping_bounds_norm(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([x], lr=1e-3, grad_clip=0.5)
        (x * 1e6).sum().backward()
        optimizer._clip()
        assert np.linalg.norm(x.grad) <= 0.5 + 1e-9

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)
