"""Tests for Platt calibration and ECE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.calibration import PlattCalibrator, expected_calibration_error


def miscalibrated_scores(n=2000, seed=0):
    """True probability is sigmoid(2x); scores are the overconfident 5x."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    true_p = 1 / (1 + np.exp(-2 * x))
    labels = (rng.random(n) < true_p).astype(float)
    scores = 1 / (1 + np.exp(-5 * x))
    return scores, labels


class TestPlattCalibrator:
    def test_reduces_calibration_error(self):
        scores, labels = miscalibrated_scores()
        calibrator = PlattCalibrator().fit(scores[:1500], labels[:1500])
        raw_ece = expected_calibration_error(labels[1500:], scores[1500:])
        calibrated = calibrator.transform(scores[1500:])
        calibrated_ece = expected_calibration_error(labels[1500:], calibrated)
        assert calibrated_ece < raw_ece

    def test_preserves_ranking(self):
        scores, labels = miscalibrated_scores(500)
        calibrator = PlattCalibrator().fit(scores, labels)
        calibrated = calibrator.transform(scores)
        order_raw = np.argsort(scores)
        order_cal = np.argsort(calibrated)
        assert np.array_equal(order_raw, order_cal)  # monotone map (a > 0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit([0.1, 0.9], [1, 1])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().transform([0.5])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_outputs_are_probabilities(self, seed):
        scores, labels = miscalibrated_scores(300, seed)
        calibrator = PlattCalibrator().fit(scores, labels)
        out = calibrator.transform(scores)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestEce:
    def test_perfectly_calibrated_is_near_zero(self):
        rng = np.random.default_rng(0)
        p = rng.random(5000)
        labels = (rng.random(5000) < p).astype(float)
        assert expected_calibration_error(labels, p) < 0.05

    def test_constant_wrong_probability_is_large(self):
        labels = np.array([0.0] * 90 + [1.0] * 10)
        probabilities = np.full(100, 0.9)
        assert expected_calibration_error(labels, probabilities) > 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_calibration_error([1, 0], [0.5])
