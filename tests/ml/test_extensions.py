"""Tests for model persistence, hyperparameter search and the cost model."""

import numpy as np
import pytest

from repro.ml.cost import CostModel
from repro.ml.forest import RandomForestClassifier, RandomForestParams
from repro.ml.gbdt import GbdtClassifier, GbdtParams
from repro.ml.metrics import ConfusionCounts
from repro.ml.model_io import load_forest, load_gbdt, save_forest, save_gbdt


def fitted_models(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0.3).astype(int)
    gbdt = GbdtClassifier(
        GbdtParams(n_estimators=20, early_stopping_rounds=None)
    ).fit(X, y)
    forest = RandomForestClassifier(RandomForestParams(n_estimators=15)).fit(X, y)
    return X, gbdt, forest


class TestModelIo:
    def test_gbdt_roundtrip_predicts_identically(self, tmp_path):
        X, gbdt, _ = fitted_models()
        path = save_gbdt(gbdt, tmp_path / "model.json")
        loaded = load_gbdt(path)
        assert np.allclose(loaded.predict_proba(X), gbdt.predict_proba(X))

    def test_forest_roundtrip_predicts_identically(self, tmp_path):
        X, _, forest = fitted_models()
        path = save_forest(forest, tmp_path / "forest.json")
        loaded = load_forest(path)
        assert np.allclose(loaded.predict_proba(X), forest.predict_proba(X))

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_gbdt(GbdtClassifier(), tmp_path / "x.json")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_gbdt(path)
        with pytest.raises(ValueError):
            load_forest(path)


class TestSearch:
    def test_random_search_finds_learnable_config(self):
        from repro.features.sampling import SampleSet
        from repro.ml.search import random_search_gbdt

        rng = np.random.default_rng(0)
        n = 800
        X = rng.normal(size=(n, 6))
        y = (X[:, 0] > 0.8).astype(int)
        dimms = np.array([f"d{i // 4}" for i in range(n)], dtype=object)
        samples = SampleSet(
            X=X, y=y, times=np.arange(n, dtype=float), dimm_ids=dimms,
            feature_names=[f"f{i}" for i in range(6)],
        )
        train = samples.subset(np.arange(n) < 600)
        validation = samples.subset(np.arange(n) >= 600)
        results = random_search_gbdt(train, validation, n_trials=4, seed=1)
        assert len(results) == 4
        assert results[0].validation_ap >= results[-1].validation_ap
        assert results[0].validation_ap > 0.5

    def test_search_requires_validation_positives(self):
        from repro.features.sampling import SampleSet
        from repro.ml.search import random_search_gbdt

        samples = SampleSet(
            X=np.zeros((10, 2)), y=np.zeros(10, dtype=int),
            times=np.arange(10.0),
            dimm_ids=np.array([f"d{i}" for i in range(10)], dtype=object),
            feature_names=["a", "b"],
        )
        with pytest.raises(ValueError):
            random_search_gbdt(samples, samples, n_trials=1)


class TestCostModel:
    COUNTS = ConfusionCounts(tp=10, fp=5, fn=5, tn=100)

    def test_savings_positive_for_decent_predictor(self):
        model = CostModel()
        assert model.savings(self.COUNTS) > 0
        assert 0 < model.relative_savings(self.COUNTS) <= 1

    def test_no_prediction_baseline(self):
        model = CostModel(unplanned_failure_cost=100)
        assert model.cost_without_prediction(self.COUNTS) == 1500.0

    def test_breakeven_matches_closed_form(self):
        model = CostModel(
            unplanned_failure_cost=100, planned_migration_cost=10,
            false_alarm_cost=10,
        )
        p = model.breakeven_precision()
        # At exactly break-even precision, expected alarm value is zero:
        # p * (100 - 10) == (1 - p) * 10
        assert p * 90 == pytest.approx((1 - p) * 10)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(false_alarm_cost=-1)

    def test_useless_migration_never_breaks_even(self):
        model = CostModel(unplanned_failure_cost=10, planned_migration_cost=10)
        assert model.breakeven_precision() == 1.0
