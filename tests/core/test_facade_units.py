"""Unit tests for the core facade that don't need a fitted model."""

import pytest

from repro.core import DimmRiskAssessment, MemoryFailurePredictor
from repro.evaluation.protocol import ExperimentProtocol


def test_default_construction():
    predictor = MemoryFailurePredictor(platform="intel_purley")
    assert predictor.algorithm == "lightgbm"
    assert not predictor.is_fitted
    assert isinstance(predictor.protocol, ExperimentProtocol)


def test_assess_requires_fit():
    predictor = MemoryFailurePredictor(platform="k920")
    with pytest.raises(RuntimeError):
        predictor.assess(None, at_hour=1.0)


def test_evaluate_holdout_requires_fit():
    predictor = MemoryFailurePredictor(platform="k920")
    with pytest.raises(RuntimeError):
        predictor.evaluate_holdout()


def test_risk_assessment_dataclass():
    assessment = DimmRiskAssessment(dimm_id="d0", score=0.9, flagged=True)
    assert assessment.flagged
    assert assessment.score == 0.9
