"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_simulate_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    code = main([
        "simulate", "--platform", "intel_purley", "--scale", "0.02",
        "--hours", "500", "--seed", "3", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    captured = capsys.readouterr().out
    assert "wrote" in captured and "CE DIMMs" in captured


def test_analyze_reads_logs_back(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    main([
        "simulate", "--platform", "intel_purley", "--scale", "0.02",
        "--hours", "500", "--seed", "3", "--out", str(out),
    ])
    capsys.readouterr()
    code = main(["analyze", "--logs", str(out), "--platform", "intel_purley"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Relative UE rate" in captured
    assert "dq_count" in captured


def test_analyze_mismatched_platform_count_errors(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    out.write_text("")
    code = main([
        "analyze", "--logs", str(out),
        "--platform", "a", "--platform", "b",
    ])
    assert code == 2


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
