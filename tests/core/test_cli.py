"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

RUN_MINI = [
    "run", "single_platform",
    "--set", "platforms=intel_purley",
    "--set", "models=ce_count_threshold",
    "--set", "scale=0.05",
    "--set", "hours=1440",
    "--set", "max_samples_per_dimm=8",
]


def test_run_single_platform_prints_matrix_and_cache_stats(tmp_path, capsys):
    out = tmp_path / "result.json"
    code = main(RUN_MINI + ["--out", str(out)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "SCENARIO single_platform" in captured
    assert "artifact cache" in captured
    payload = json.loads(out.read_text())
    assert payload["scenario"] == "single_platform"
    assert payload["cells"][0]["train_platform"] == "intel_purley"
    assert payload["cache_stats"]["simulation"]["builds"] == 1


def test_run_second_invocation_served_from_disk_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "artifacts")
    assert main(RUN_MINI + ["--cache-dir", cache_dir]) == 0
    first = capsys.readouterr().out
    assert "simulations built=1" in first
    assert main(RUN_MINI + ["--cache-dir", cache_dir]) == 0
    second = capsys.readouterr().out
    assert "simulations built=0" in second
    assert "sample sets built=0" in second


def test_run_spec_file_with_engine_and_workers(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "scenario": "single_platform",
        "platforms": ["intel_purley"],
        "models": ["ce_count_threshold"],
        "scale": 0.05,
        "hours": 1440.0,
        "max_samples_per_dimm": 8,
    }))
    code = main([
        "run", "--spec", str(spec_path),
        "--engine", "batch", "--workers", "2",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "engine=batch" in captured


def test_run_unknown_scenario_lists_choices(capsys):
    code = main(["run", "frobnicate"])
    captured = capsys.readouterr()
    assert code == 2
    assert "frobnicate" in captured.err
    assert "transfer_matrix" in captured.err


def test_run_without_scenario_or_spec_errors(capsys):
    code = main(["run"])
    captured = capsys.readouterr()
    assert code == 2
    assert "scenario" in captured.err


def test_run_bad_override_errors(capsys):
    code = main(["run", "single_platform", "--set", "frobnicate=1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "frobnicate" in captured.err


def test_simulate_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    code = main([
        "simulate", "--platform", "intel_purley", "--scale", "0.02",
        "--hours", "500", "--seed", "3", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    captured = capsys.readouterr().out
    assert "wrote" in captured and "CE DIMMs" in captured


def test_analyze_reads_logs_back(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    main([
        "simulate", "--platform", "intel_purley", "--scale", "0.02",
        "--hours", "500", "--seed", "3", "--out", str(out),
    ])
    capsys.readouterr()
    code = main(["analyze", "--logs", str(out), "--platform", "intel_purley"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Relative UE rate" in captured
    assert "dq_count" in captured


def test_analyze_mismatched_platform_count_errors(tmp_path, capsys):
    out = tmp_path / "logs.jsonl"
    out.write_text("")
    code = main([
        "analyze", "--logs", str(out),
        "--platform", "a", "--platform", "b",
    ])
    assert code == 2
    assert "counts must match" in capsys.readouterr().err


def test_analyze_duplicate_platform_labels_error(tmp_path, capsys):
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    first.write_text("")
    second.write_text("")
    code = main([
        "analyze", "--logs", str(first), "--logs", str(second),
        "--platform", "same", "--platform", "same",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "duplicate platform labels" in captured.err


def test_analyze_duplicate_file_stems_error(tmp_path, capsys):
    """Two logs files with the same stem would silently merge; refuse."""
    first = tmp_path / "x" / "logs.jsonl"
    second = tmp_path / "y" / "logs.jsonl"
    first.parent.mkdir()
    second.parent.mkdir()
    first.write_text("")
    second.write_text("")
    code = main(["analyze", "--logs", str(first), "--logs", str(second)])
    captured = capsys.readouterr()
    assert code == 2
    assert "duplicate platform labels" in captured.err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def _dump_obs(path, events, extra=False):
    from repro.obs import Observability, write_observability

    obs = Observability()
    obs.metrics.counter(
        "repro_replay_events_total", "Events.", labels=("platform",)
    ).labels(platform="k920").inc(events)
    if extra:
        obs.metrics.counter("repro_alerts_total", "Alerts.").inc(2)
    write_observability(path, obs)
    return path


def test_metrics_diff_renders_per_family_deltas(tmp_path, capsys):
    a = _dump_obs(tmp_path / "a.obs.jsonl", 100)
    b = _dump_obs(tmp_path / "b.obs.jsonl", 250, extra=True)
    assert main(["metrics", "--diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "metrics diff:" in out
    assert "{platform=k920}: 100 -> 250 (+150)" in out
    assert "repro_alerts_total (counter): only in" in out


def test_metrics_diff_excludes_positional_dump(tmp_path, capsys):
    a = _dump_obs(tmp_path / "a.obs.jsonl", 1)
    assert main(["metrics", str(a), "--diff", str(a), str(a)]) == 2
    assert "not both" in capsys.readouterr().err


def test_metrics_without_dump_or_diff_errors(capsys):
    assert main(["metrics"]) == 2
    assert "give a dump file" in capsys.readouterr().err


def test_top_polls_a_live_telemetry_endpoint(capsys):
    from repro.obs import Observability, TelemetryServer

    obs = Observability()
    obs.heartbeat("replay", {"events": 120, "scored": 40})
    with TelemetryServer(obs, port=0) as server:
        assert main(["top", server.url, "--count", "1"]) == 0
    out = capsys.readouterr().out
    assert "repro top @" in out
    assert "replay #0" in out
    assert "events=120" in out


def test_top_reports_unreachable_endpoint(capsys):
    assert main(
        ["top", "127.0.0.1:1", "--count", "1", "--interval", "0"]
    ) == 1
    assert "cannot poll" in capsys.readouterr().err
