"""Observability across the stack: parity, span shape, instrument wiring."""

import numpy as np
import pytest

from repro.chaos.quarantine import quarantine_columns
from repro.distributed.service import ServiceStats
from repro.features.labeling import LabelingParams
from repro.obs import Observability, parse_prometheus, to_prometheus
from repro.streaming.bus import EventBus
from repro.streaming.replay import ReplayEngine
from repro.telemetry.log_store import LogStore


class _EchoModel:
    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="module")
def purley(tiny_study):
    from repro.features.pipeline import FeaturePipeline

    simulation = tiny_study["intel_purley"]
    pipeline = FeaturePipeline()
    pipeline.fit(simulation.store)
    return simulation, pipeline


def _replay(simulation, pipeline, obs=None):
    engine = ReplayEngine(
        pipeline,
        _EchoModel(),
        0.985,
        "intel_purley",
        configs=simulation.store.configs,
        labeling=LabelingParams(),
        bus=EventBus(),
        rescore_interval_hours=0.0,
        batch_size=64,
        collect_scores=True,
        obs=obs,
    )
    report = engine.replay(simulation.store, model_name="echo")
    return engine, report


class TestReplayParity:
    def test_instrumentation_is_bit_identical(self, purley):
        """The whole point: obs on vs off changes NOTHING observable."""
        simulation, pipeline = purley
        plain_engine, plain = _replay(simulation, pipeline)
        obs_engine, instrumented = _replay(
            simulation, pipeline, obs=Observability()
        )
        assert plain_engine.score_log == obs_engine.score_log
        assert plain.alarms == instrumented.alarms
        assert plain.bus_counts == instrumented.bus_counts
        assert plain.events == instrumented.events
        assert plain.scored == instrumented.scored
        assert plain.health == instrumented.health

    def test_registry_mirrors_the_report(self, purley):
        simulation, pipeline = purley
        obs = Observability()
        _, report = _replay(simulation, pipeline, obs=obs)
        snapshot = obs.metrics.snapshot()

        def value(name, **extra):
            labels = {
                "platform": "intel_purley", "model": "echo",
                "engine": "batched", **extra,
            }
            for sample in snapshot[name]["samples"]:
                if sample["labels"] == labels:
                    return sample["value"]
            raise AssertionError(f"no sample {labels} in {name}")

        assert value("repro_replay_events_total") == report.events
        assert value("repro_replay_scored_total") == report.scored
        assert value("repro_replay_batches_total") == report.batches
        for disposition in ("raised", "suppressed", "tp", "fp"):
            assert value(
                "repro_alarms_total", disposition=disposition
            ) == report.alarms[disposition]
        stage_total = sum(
            sample["value"]
            for sample in snapshot["repro_replay_stage_seconds_total"][
                "samples"
            ]
        )
        assert stage_total == pytest.approx(
            sum(report.stage_seconds.values())
        )

    def test_span_tree_shape_is_deterministic(self, purley):
        simulation, pipeline = purley
        obs = Observability()
        _replay(simulation, pipeline, obs=obs)
        (root,) = obs.tracer.tree()
        assert root["name"] == "replay"
        assert root["attributes"]["platform"] == "intel_purley"
        assert root["attributes"]["halted"] is False
        names = [child["name"] for child in root["children"]]
        assert names == [
            "replay.quarantine",
            "replay.kernel_build",
            "replay.stage.alarms",
            "replay.stage.features",
            "replay.stage.ingest",
            "replay.stage.predict",
        ]
        # a second identical run produces the identical shape
        second = Observability()
        _replay(simulation, pipeline, obs=second)
        strip = lambda t: [  # noqa: E731
            (s["name"], strip(s["children"])) for s in t
        ]
        assert strip(second.tracer.tree()) == strip(obs.tracer.tree())

    def test_prometheus_export_of_a_real_run_parses(self, purley):
        simulation, pipeline = purley
        obs = Observability()
        _replay(simulation, pipeline, obs=obs)
        parsed = parse_prometheus(to_prometheus(obs))
        assert parsed["types"]["repro_replay_events_total"] == "counter"
        assert parsed["types"]["repro_alarm_quality"] == "gauge"


class TestServiceStats:
    def test_empty_run_has_finite_percentiles(self):
        summary = ServiceStats().summary()
        assert summary["p50_ms"] == 0.0
        assert summary["p95_ms"] == 0.0
        assert summary["p99_ms"] == 0.0
        assert summary["throughput_rps"] == 0.0
        assert summary["mean_batch"] == 0.0

    def test_single_sample_percentiles_are_that_sample(self):
        stats = ServiceStats(latencies=[0.004])
        summary = stats.summary()
        assert summary["p50_ms"] == pytest.approx(4.0)
        assert summary["p95_ms"] == pytest.approx(4.0)
        assert summary["p99_ms"] == pytest.approx(4.0)

    def test_stats_land_in_the_registry(self):
        obs = Observability()
        stats = ServiceStats(
            submitted=5, answered=5, scored=4, skipped=1,
            batches=2, latencies=[0.001, 0.002], batch_sizes=[2, 2],
            wall_seconds=0.5,
        )
        obs.record_service_stats(stats)
        snapshot = obs.metrics.snapshot()
        outcomes = {
            sample["labels"]["outcome"]: sample["value"]
            for sample in snapshot["repro_serve_requests_total"]["samples"]
        }
        assert outcomes["scored"] == 4
        assert outcomes["skipped"] == 1
        (batch_sample,) = snapshot["repro_serve_batch_size"]["samples"]
        assert batch_sample["count"] == 2


class TestLedgerCounters:
    def test_logstore_skipped_lines_counter(self, tmp_path):
        obs = Observability()
        path = tmp_path / "logs.jsonl"
        path.write_text(
            '{"kind": "nonsense"}\nnot json at all\n', encoding="utf-8"
        )
        with pytest.warns(RuntimeWarning, match="skipped 2 malformed"):
            store = LogStore.load_jsonl(path, metrics=obs.metrics)
        assert store.skipped_lines == 2
        (sample,) = obs.metrics.snapshot()[
            "repro_logstore_skipped_lines_total"
        ]["samples"]
        assert sample["labels"] == {"source": "logs.jsonl"}
        assert sample["value"] == 2.0

    def test_quarantine_reject_reasons_counter(self, purley):
        simulation, _ = purley
        obs = Observability()
        columns, report = quarantine_columns(
            simulation.store.columns,
            metrics=obs.metrics,
            platform="intel_purley",
        )
        snapshot = obs.metrics.snapshot()
        by_reason = {
            sample["labels"]["reason"]: sample["value"]
            for sample in snapshot["repro_quarantine_rejects_total"][
                "samples"
            ]
        }
        # the clean fixture rejects nothing, but every reason reports
        assert set(by_reason) == {
            "bad_timestamp", "bad_coordinate", "bad_count", "bad_event_kind",
        }
        assert sum(by_reason.values()) == report.total
