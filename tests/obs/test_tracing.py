"""Tracer: deterministic span-tree shape, record(), null no-op."""

from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer


def shape(tree):
    """Names-only skeleton of a span tree (timings stripped)."""
    return [
        (span["name"], shape(span["children"])) for span in tree
    ]


class TestTracer:
    def test_nesting_builds_the_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        with tracer.span("second"):
            pass
        assert shape(tracer.tree()) == [
            ("outer", [("inner.a", []), ("inner.b", [])]),
            ("second", []),
        ]

    def test_span_measures_time_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", platform="k920") as span:
            span.attributes["events"] = 7
        (root,) = tracer.tree()
        assert root["attributes"] == {"platform": "k920", "events": 7}
        assert root["wall_seconds"] >= 0.0
        assert root["cpu_seconds"] >= 0.0

    def test_record_attaches_completed_child(self):
        tracer = Tracer()
        with tracer.span("replay"):
            tracer.record("replay.stage.predict", wall_seconds=1.25, n=3)
        (root,) = tracer.tree()
        (child,) = root["children"]
        assert child["name"] == "replay.stage.predict"
        assert child["wall_seconds"] == 1.25
        assert child["attributes"] == {"n": 3}
        assert child["children"] == []

    def test_record_at_top_level_is_a_root(self):
        tracer = Tracer()
        tracer.record("loose", wall_seconds=0.5)
        assert shape(tracer.tree()) == [("loose", [])]

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            pass
        assert shape(tracer.tree()) == [
            ("outer", [("failing", [])]),
            ("after", []),
        ]

    def test_flat_ids_are_consistent(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        flat = tracer.flat()
        by_name = {row["name"]: row for row in flat}
        assert by_name["a"]["parent_id"] is None
        assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
        ids = [row["span_id"] for row in flat]
        assert len(ids) == len(set(ids))


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", k="v") as span:
            span.attributes["w"] = 1  # write-only sink
        tracer.record("more", wall_seconds=9.0)
        assert tracer.tree() == []
        assert tracer.flat() == []

    def test_null_singleton_reuses_one_context(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second
