"""Exporters: Prometheus round-trip, JSONL dumps, human renderers."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Observability,
    parse_prometheus,
    payload_from_jsonl,
    payload_to_jsonl,
    read_observability,
    render_span_tree,
    render_summary,
    to_prometheus,
    write_observability,
)


def make_bundle() -> Observability:
    obs = Observability()
    obs.metrics.counter(
        "repro_events_total", "Events.", labels=("platform",)
    ).labels(platform="k920").inc(42)
    obs.metrics.gauge("repro_ratio", "A ratio.").set(0.625)
    obs.metrics.histogram(
        "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
    ).observe_many([0.05, 0.5, 5.0])
    with obs.tracer.span("root", platform="k920"):
        obs.tracer.record("root.stage", wall_seconds=0.25)
    return obs


class TestPrometheus:
    def test_round_trip(self):
        obs = make_bundle()
        parsed = parse_prometheus(to_prometheus(obs))
        assert parsed["types"] == {
            "repro_events_total": "counter",
            "repro_ratio": "gauge",
            "repro_latency_seconds": "histogram",
        }
        samples = parsed["samples"]
        assert samples[
            ("repro_events_total", (("platform", "k920"),))
        ] == 42.0
        assert samples[("repro_ratio", ())] == 0.625
        assert samples[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("repro_latency_seconds_bucket", (("le", "1"),))] == 2.0
        assert samples[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("repro_latency_seconds_sum", ())] == pytest.approx(5.55)
        assert samples[("repro_latency_seconds_count", ())] == 3.0

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        registry.counter("repro_x_total", labels=("s",)).labels(s=nasty).inc()
        parsed = parse_prometheus(to_prometheus(registry))
        assert parsed["samples"][("repro_x_total", (("s", nasty),))] == 1.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_x_total one two three\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_x_total not_a_number\n")

    def test_exposition_is_deterministic(self):
        assert to_prometheus(make_bundle()) == to_prometheus(make_bundle())


class TestJsonl:
    def test_round_trip_preserves_payload(self):
        obs = make_bundle()
        rebuilt = payload_from_jsonl(payload_to_jsonl(obs))
        original = obs.payload()
        assert rebuilt["spans"] == original["spans"]
        for name, family in original["metrics"].items():
            clone = rebuilt["metrics"][name]
            assert clone["type"] == family["type"]
            assert clone["samples"] == family["samples"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            payload_from_jsonl('{"kind": "meta", "format": "nope"}\n')
        with pytest.raises(ValueError):
            payload_from_jsonl('{"kind": "mystery"}\n')

    def test_file_round_trip(self, tmp_path):
        obs = make_bundle()
        path = write_observability(tmp_path / "run.obs.jsonl", obs)
        assert read_observability(path) == payload_from_jsonl(
            payload_to_jsonl(obs)
        )


class TestRenderers:
    def test_summary_lists_families_and_spans(self):
        text = render_summary(make_bundle())
        assert "3 metric families" in text
        assert "repro_events_total" in text
        assert "span root" in text

    def test_span_tree_indents_children(self):
        text = render_span_tree(make_bundle())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  root.stage")
        assert "platform=k920" in lines[0]

    def test_span_tree_empty(self):
        assert render_span_tree(MetricsRegistry()) == "(no spans)"


class TestDashboardShim:
    def test_dashboard_exports_as_prometheus(self):
        from repro.mlops.monitoring import Dashboard

        dashboard = Dashboard()
        dashboard.increment("feature_store.snapshots")
        dashboard.increment("feature_store.snapshots")
        dashboard.record("serving.latency", 1.0, 12.5)
        parsed = parse_prometheus(to_prometheus(dashboard.registry))
        assert parsed["samples"][
            ("repro_dashboard_feature_store_snapshots_total", ())
        ] == 2.0
        assert parsed["samples"][
            ("repro_dashboard_serving_latency_latest", ())
        ] == 12.5
        # the legacy dotted views still work
        assert dashboard.counters["feature_store.snapshots"] == 2
        assert dashboard.snapshot()["serving.latency.latest"] == 12.5


class TestHelpText:
    def test_help_is_emitted_for_every_family(self):
        obs = make_bundle()
        text = to_prometheus(obs)
        parsed = parse_prometheus(text)
        assert set(parsed["helps"]) == set(parsed["types"])
        assert parsed["helps"]["repro_events_total"] == "Events."
        assert parsed["helps"]["repro_ratio"] == "A ratio."

    def test_helpless_family_still_gets_a_help_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_bare_total").inc()
        parsed = parse_prometheus(to_prometheus(registry))
        assert parsed["helps"]["repro_bare_total"] == ""

    def test_duplicate_family_declaration_rejected(self):
        with pytest.raises(ValueError, match="declared twice"):
            parse_prometheus(
                "# TYPE repro_x_total counter\n"
                "repro_x_total 1\n"
                "# TYPE repro_x_total counter\n"
                "repro_x_total 2\n"
            )


class TestMetricsDiff:
    def _payloads(self):
        before = Observability()
        before.metrics.counter(
            "repro_events_total", "Events.", labels=("platform",)
        ).labels(platform="k920").inc(100)
        before.metrics.gauge("repro_ratio", "A ratio.").set(0.5)
        after = Observability()
        after.metrics.counter(
            "repro_events_total", "Events.", labels=("platform",)
        ).labels(platform="k920").inc(175)
        after.metrics.gauge("repro_ratio", "A ratio.").set(0.5)
        after.metrics.counter("repro_alerts_total", "Alerts.").inc(3)
        return before.payload(), after.payload()

    def test_diff_reports_deltas_and_new_families(self):
        from repro.obs import render_metrics_diff

        before, after = self._payloads()
        text = render_metrics_diff(before, after, "before", "after")
        assert "metrics diff: before -> after" in text
        assert "repro_events_total (counter)" in text
        assert "{platform=k920}: 100 -> 175 (+75)" in text
        assert "repro_alerts_total (counter): only in after" in text
        # unchanged gauge is not reported
        assert "repro_ratio" not in text

    def test_identical_payloads_diff_clean(self):
        from repro.obs import render_metrics_diff

        payload, _ = self._payloads()
        text = render_metrics_diff(payload, payload)
        assert "(no differences)" in text

    def test_histogram_diff_reports_count_and_quantiles(self):
        from repro.obs import render_metrics_diff

        before = Observability()
        before.metrics.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe_many([0.05, 0.05])
        after = Observability()
        after.metrics.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe_many([0.05, 0.05, 0.5, 0.5, 0.5])
        text = render_metrics_diff(before.payload(), after.payload())
        assert "count 2 -> 5 (+3)" in text
        assert "p50 le0.1 -> le1" in text
