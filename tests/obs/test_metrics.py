"""Metrics registry: typed instruments, deterministic snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_bound,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_single_sample_is_that_sample(self):
        assert percentile([4.2], 50) == 4.2
        assert percentile([4.2], 99) == 4.2
        assert percentile([4.2], 0) == 4.2

    def test_two_samples(self):
        assert percentile([1.0, 9.0], 50) == 1.0
        assert percentile([1.0, 9.0], 51) == 9.0
        assert percentile([1.0, 9.0], 100) == 9.0

    def test_extremes_clamp(self):
        vals = [3.0, 1.0, 2.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 3.0
        assert percentile(vals, 150) == 3.0

    def test_nearest_rank_is_an_observed_value(self):
        vals = list(range(1, 101))
        for q in (1, 25, 50, 90, 95, 99):
            assert percentile(vals, q) == q
            assert percentile(vals, q) in vals

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0


class TestCounterGauge:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert registry.snapshot()["repro_test_total"]["samples"] == [
            {"labels": {}, "value": 3.5}
        ]

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.labels().value == 3.0

    def test_labelled_family_requires_labels(self):
        counter = MetricsRegistry().counter(
            "repro_test_total", labels=("platform",)
        )
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels(wrong="x")
        counter.labels(platform="k920").inc()
        assert counter.labels(platform="k920").value == 1.0


class TestHistogram:
    def test_bucketing_is_upper_inclusive(self):
        hist = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        child = hist.labels()
        # le=0.1 holds {0.05, 0.1}; le=1.0 adds {0.5, 1.0}; le=10 adds 5.0;
        # +Inf catches the overflow.
        assert child.cumulative() == [
            ("0.1", 2), ("1", 4), ("10", 5), ("+Inf", 6),
        ]
        assert child.count == 6
        assert child.sum == pytest.approx(106.65)

    def test_observe_many(self):
        hist = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1.0,)
        )
        hist.labels().observe_many([0.5, 2.0, 3.0])
        assert hist.labels().cumulative() == [("1", 1), ("+Inf", 3)]

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_test_seconds", buckets=())

    def test_format_bound(self):
        assert format_bound(0.25) == "0.25"
        assert format_bound(1.0) == "1"
        assert format_bound(float("inf")) == "+Inf"


class TestRegistry:
    def test_snapshot_is_order_independent(self):
        """Same updates in different interleavings -> identical JSON."""

        def run(order):
            registry = MetricsRegistry()
            ops = {
                "a": lambda: registry.counter(
                    "repro_a_total", labels=("p",)
                ).labels(p="x").inc(3),
                "b": lambda: registry.counter(
                    "repro_a_total", labels=("p",)
                ).labels(p="y").inc(1),
                "c": lambda: registry.gauge("repro_b").set(2.5),
                "d": lambda: registry.histogram(
                    "repro_c_seconds", buckets=(1.0, 2.0)
                ).observe(1.5),
            }
            for op in order:
                ops[op]()
            return json.dumps(registry.snapshot(), sort_keys=True)

        first = run("abcd")
        for order in ("dcba", "badc", "cadb"):
            assert run(order) == first

    def test_re_registration_same_signature_returns_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", labels=("p",))
        second = registry.counter("repro_x_total", labels=("p",))
        assert first is second

    def test_re_registration_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("p",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad.name")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labels=("bad-label",))

    def test_get_and_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert [f.name for f in registry.families()] == [
            "repro_a_total", "repro_b_total",
        ]
        assert registry.get("repro_a_total") is not None
        assert registry.get("missing") is None

    def test_label_values_coerced_to_str(self):
        counter = MetricsRegistry().counter("repro_x_total", labels=("n",))
        counter.labels(n=3).inc()
        assert counter.labels(n="3").value == 1.0
