"""Live telemetry plane: snapshot series, SLO alerts, HTTP scrapes.

Covers the in-process pieces (:class:`SnapshotSeries`,
:class:`AlertRule` / :class:`AlertEngine`), the scrape endpoint's
routes and lifecycle, and the load-bearing integration contract: a
replay hammered by concurrent scrapers mid-flight stays bit-identical
to an uninstrumented run, and no scrape ever observes torn state.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.features.labeling import LabelingParams
from repro.obs import (
    DEFAULT_REPLAY_RULES,
    DEFAULT_SERVE_RULES,
    AlertEngine,
    AlertRule,
    Observability,
    SnapshotSeries,
    TelemetryServer,
    parse_prometheus,
)
from repro.streaming.bus import EventBus
from repro.streaming.replay import ReplayEngine


def _get(url: str, timeout: float = 5.0):
    """GET returning ``(status, body_text)``; HTTP errors are answers."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestSnapshotSeries:
    def test_append_and_last(self):
        series = SnapshotSeries()
        series.append("replay", {"events": 10})
        series.append("serve", {"submitted": 3})
        series.append("replay", {"events": 20})
        assert len(series) == 3
        assert series.last()["source"] == "replay"
        assert series.last("serve")["fields"] == {"submitted": 3}
        assert series.last("nope") is None

    def test_ring_is_bounded_but_seq_keeps_counting(self):
        series = SnapshotSeries(maxlen=4)
        for i in range(10):
            series.append("replay", {"events": i})
        assert len(series) == 4
        dump = series.to_dict()["entries"]
        assert [entry["seq"] for entry in dump] == [6, 7, 8, 9]

    def test_rates_between_two_most_recent_snapshots(self, monkeypatch):
        clock = iter([10.0, 12.0, 13.0])
        monkeypatch.setattr(
            "repro.obs.timeseries.time.time", lambda: next(clock)
        )
        series = SnapshotSeries()
        series.append("replay", {"events": 100, "note": "warm"})
        series.append("replay", {"events": 300, "note": "hot"})
        series.append("serve", {"submitted": 5})  # one snapshot: no rate
        rates = series.rates()
        assert rates == {"replay": {"events": 100.0}}

    def test_to_dict_is_json_serializable(self):
        series = SnapshotSeries()
        series.append("replay", {"events": 1})
        dump = series.to_dict()
        assert set(dump) == {"entries", "rates"}
        json.dumps(dump)


class TestAlertRule:
    def test_ratio_rule_fires_over_threshold(self):
        rule = AlertRule(
            name="shed_rate", field="shed", per="submitted", threshold=0.10
        )
        assert rule.check({"shed": 5, "submitted": 20}) == 0.25
        assert rule.check({"shed": 1, "submitted": 20}) is None

    def test_zero_denominator_stays_quiet(self):
        rule = AlertRule(
            name="shed_rate", field="shed", per="submitted", threshold=0.10
        )
        assert rule.check({"shed": 5, "submitted": 0}) is None

    def test_missing_fields_skip_the_rule(self):
        rule = AlertRule(
            name="shed_rate", field="shed", per="submitted", threshold=0.10
        )
        assert rule.check({"submitted": 20}) is None
        assert rule.check({"shed": 5}) is None
        assert rule.check({"shed": "n/a", "submitted": 20}) is None

    def test_absolute_rule_and_op_variants(self):
        rule = AlertRule(name="p99", field="p99_ms", threshold=250.0, op=">=")
        assert rule.check({"p99_ms": 250.0}) == 250.0
        rule = AlertRule(name="floor", field="scored", threshold=10, op="<")
        assert rule.check({"scored": 3}) == 3.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown alert op"):
            AlertRule(name="bad", field="x", threshold=1.0, op="!=")


class TestAlertEngine:
    def test_firings_hit_log_registry_and_dedicated_bus(self):
        engine = AlertEngine(DEFAULT_SERVE_RULES)
        obs = Observability(alerts=engine)
        obs.heartbeat(
            "serve",
            {"shed": 5, "submitted": 10, "p99_ms": 300.0, "answered": 0,
             "fallbacks": 0},
        )
        assert [entry["rule"] for entry in engine.log] == [
            "shed_rate", "p99_latency_ms"
        ]
        assert engine.critical_fired
        summary = engine.summary()
        assert summary == {
            "fired": 2,
            "by_rule": {"shed_rate": 1, "p99_latency_ms": 1},
            "critical": True,
        }
        snapshot = obs.metrics.snapshot()
        samples = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snapshot["repro_alerts_total"]["samples"]
        }
        assert samples[
            (("rule", "shed_rate"), ("severity", "critical"))
        ] == 1
        assert engine.bus.counts().get("obs.alert") == 2

    def test_alert_bus_is_isolated_from_replay_buses(self):
        replay_bus = EventBus()
        engine = AlertEngine(DEFAULT_REPLAY_RULES)
        engine.evaluate(
            "replay", {"dead_letters": 10, "events": 100}, None
        )
        assert engine.bus.counts().get("obs.alert") == 1
        assert replay_bus.counts() == {}

    def test_quiet_heartbeat_fires_nothing(self):
        engine = AlertEngine(DEFAULT_REPLAY_RULES)
        fired = engine.evaluate(
            "replay",
            {"dead_letters": 0, "events": 100, "fallbacks": 0, "scored": 50},
            None,
        )
        assert fired == []
        assert engine.summary() == {
            "fired": 0, "by_rule": {}, "critical": False,
        }


def make_served_bundle() -> Observability:
    obs = Observability()
    obs.metrics.counter(
        "repro_events_total", "Events.", labels=("platform",)
    ).labels(platform="k920").inc(7)
    with obs.tracer.span("replay", platform="k920"):
        obs.tracer.record("replay.stage.predict", wall_seconds=0.1)
    obs.heartbeat("replay", {"events": 7, "scored": 3})
    return obs


class TestTelemetryServer:
    def test_routes_serve_consistent_payloads(self):
        obs = make_served_bundle()
        with TelemetryServer(obs, port=0) as server:
            assert server.port != 0
            status, text = _get(server.url + "/metrics")
            assert status == 200
            parsed = parse_prometheus(text)
            assert parsed["samples"][
                ("repro_events_total", (("platform", "k920"),))
            ] == 7.0
            assert parsed["types"]["repro_heartbeat"] == "gauge"

            status, text = _get(server.url + "/metrics.json")
            assert status == 200
            metrics = json.loads(text)
            assert metrics["repro_events_total"]["type"] == "counter"

            status, text = _get(server.url + "/spans")
            assert status == 200
            spans = json.loads(text)
            assert [span["name"] for span in spans] == ["replay"]
            assert spans[0]["children"][0]["name"] == "replay.stage.predict"

            status, text = _get(server.url + "/progress")
            assert status == 200
            progress = json.loads(text)
            assert progress["entries"][0]["fields"] == {
                "events": 7, "scored": 3,
            }

    def test_unknown_route_is_a_json_404(self):
        with TelemetryServer(make_served_bundle(), port=0) as server:
            status, text = _get(server.url + "/nope")
        assert status == 404
        assert json.loads(text)["path"] == "/nope"

    def test_healthz_ok_by_default(self):
        with TelemetryServer(make_served_bundle(), port=0) as server:
            status, text = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(text)["status"] == "ok"

    def test_healthz_degrades_on_critical_alert(self):
        obs = Observability(alerts=AlertEngine(DEFAULT_SERVE_RULES))
        obs.heartbeat("serve", {"shed": 9, "submitted": 10})
        with TelemetryServer(obs, port=0) as server:
            status, text = _get(server.url + "/healthz")
        body = json.loads(text)
        assert status == 503
        assert body["status"] == "degraded"
        assert body["alerts"]["by_rule"] == {"shed_rate": 1}

    def test_healthz_consults_the_health_provider(self):
        provider = lambda: {"ok": False, "mode": "degraded_serving"}  # noqa: E731
        server = TelemetryServer(
            make_served_bundle(), port=0, health=provider
        )
        with server:
            status, text = _get(server.url + "/healthz")
        body = json.loads(text)
        assert status == 503
        assert body["health"] == {"mode": "degraded_serving"}

    def test_stop_closes_the_socket(self):
        server = TelemetryServer(make_served_bundle(), port=0)
        server.start()
        url = server.url
        assert _get(url + "/healthz")[0] == 200
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/healthz", timeout=2)


# -- live replay under concurrent scrape fire ------------------------------


class _EchoModel:
    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="module")
def purley(tiny_study):
    from repro.features.pipeline import FeaturePipeline

    simulation = tiny_study["intel_purley"]
    pipeline = FeaturePipeline()
    pipeline.fit(simulation.store)
    return simulation, pipeline


def _replay(simulation, pipeline, obs=None, heartbeat_every=0):
    engine = ReplayEngine(
        pipeline,
        _EchoModel(),
        0.985,
        "intel_purley",
        configs=simulation.store.configs,
        labeling=LabelingParams(),
        bus=EventBus(),
        rescore_interval_hours=0.0,
        batch_size=64,
        collect_scores=True,
        obs=obs,
        heartbeat_every=heartbeat_every,
    )
    report = engine.replay(simulation.store, model_name="echo")
    return engine, report


class _Scraper(threading.Thread):
    """Hammer /metrics until stopped; every response must parse whole."""

    def __init__(self, url: str, stop: threading.Event):
        super().__init__(daemon=True)
        self.url = url
        self.stop = stop
        self.heartbeat_counts: list = []
        self.scrapes = 0
        self.failures: list = []

    def run(self) -> None:
        while not self.stop.is_set():
            try:
                status, text = _get(self.url + "/metrics")
                assert status == 200
                parsed = parse_prometheus(text)
                total = sum(
                    value
                    for (name, _), value in parsed["samples"].items()
                    if name == "repro_heartbeats_total"
                )
                self.heartbeat_counts.append(total)
                self.scrapes += 1
            except Exception as error:  # noqa: BLE001 - reported below
                self.failures.append(repr(error))


class TestLiveReplayTelemetry:
    def test_heartbeats_and_server_change_nothing(self, purley):
        """The acceptance pin: scraped + heartbeating == bare replay."""
        simulation, pipeline = purley
        plain_engine, plain = _replay(simulation, pipeline)
        obs = Observability(alerts=AlertEngine(DEFAULT_REPLAY_RULES))
        with TelemetryServer(obs, port=0) as server:
            obs_engine, live = _replay(
                simulation, pipeline, obs=obs, heartbeat_every=25
            )
            status, _ = _get(server.url + "/metrics")
            assert status == 200
        assert plain_engine.score_log == obs_engine.score_log
        assert plain.alarms == live.alarms
        assert plain.bus_counts == live.bus_counts
        assert plain.events == live.events
        assert plain.scored == live.scored
        assert len(obs.progress) > 0

    def test_concurrent_scrapes_never_tear(self, purley):
        simulation, pipeline = purley
        obs = Observability()
        stop = threading.Event()
        with TelemetryServer(obs, port=0) as server:
            scrapers = [_Scraper(server.url, stop) for _ in range(3)]
            for scraper in scrapers:
                scraper.start()
            _replay(simulation, pipeline, obs=obs, heartbeat_every=10)
            stop.set()
            for scraper in scrapers:
                scraper.join(10.0)
        assert not any(scraper.failures for scraper in scrapers), [
            scraper.failures for scraper in scrapers
        ]
        assert sum(scraper.scrapes for scraper in scrapers) > 0
        for scraper in scrapers:
            # Counters are monotone: a torn scrape would show a dip.
            assert scraper.heartbeat_counts == sorted(
                scraper.heartbeat_counts
            )

    def test_heartbeat_gauges_track_the_run(self, purley):
        simulation, pipeline = purley
        obs = Observability()
        _, report = _replay(
            simulation, pipeline, obs=obs, heartbeat_every=25
        )
        snapshot = obs.metrics.snapshot()
        beats = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snapshot["repro_heartbeats_total"]["samples"]
        }
        assert beats[(("source", "replay"), ("worker", ""))] >= 1
        latest = obs.progress.last("replay")
        assert latest is not None
        assert latest["fields"]["events"] <= report.events
