"""Tests for the fleet simulator: RNG, workload, platforms, injection, fleet."""

import numpy as np
import pytest

from repro.dram.geometry import DimmGeometry
from repro.simulator import (
    ARCHETYPES,
    PLATFORM_ORDER,
    FaultSampler,
    FleetConfig,
    activation_times,
    child_rng,
    k920_platform,
    poisson_arrivals,
    purley_platform,
    sample_workload,
    simulate_fleet,
    standard_platforms,
    whitley_platform,
)
from repro.simulator.calibration import PAPER_TABLE1, PRESETS
from repro.simulator.workload import WorkloadModel


class TestRng:
    def test_child_rng_is_deterministic(self):
        a = child_rng(7, "x", 1).random(5)
        b = child_rng(7, "x", 1).random(5)
        assert np.array_equal(a, b)

    def test_child_rng_differs_by_key(self):
        a = child_rng(7, "x").random(5)
        b = child_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_poisson_arrivals_sorted_in_range(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(rng, 5.0, 10.0, 20.0)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 10.0 and times.max() < 20.0

    def test_poisson_arrivals_empty_cases(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(rng, 0.0, 0, 10).size == 0
        assert poisson_arrivals(rng, 1.0, 10, 10).size == 0

    def test_poisson_rate_is_respected(self):
        rng = np.random.default_rng(1)
        counts = [poisson_arrivals(rng, 2.0, 0, 100).size for _ in range(30)]
        assert np.mean(counts) == pytest.approx(200, rel=0.1)


class TestWorkload:
    def test_intensity_is_positive_and_bounded(self):
        model = WorkloadModel(base=1.0, diurnal_amplitude=0.3)
        hours = np.linspace(0, 48, 200)
        intensity = model.intensity(hours)
        assert np.all(intensity > 0)
        assert np.max(intensity) <= model.peak_intensity + 1e-9

    def test_diurnal_period_is_24h(self):
        model = WorkloadModel()
        assert model.intensity(3.0) == pytest.approx(model.intensity(27.0))

    def test_thinning_keeps_subset(self):
        model = WorkloadModel(diurnal_amplitude=0.5)
        rng = np.random.default_rng(0)
        times = np.linspace(0, 24, 1000)
        kept = model.thin_arrivals(rng, times)
        assert 0 < kept.size < times.size

    def test_sample_workload_varies(self):
        models = {sample_workload(np.random.default_rng(i)).base for i in range(5)}
        assert len(models) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadModel(base=0.0)
        with pytest.raises(ValueError):
            WorkloadModel(diurnal_amplitude=1.0)


class TestPlatforms:
    def test_standard_platforms_cover_paper_order(self):
        platforms = standard_platforms()
        assert tuple(platforms) == PLATFORM_ORDER

    @pytest.mark.parametrize("factory", [purley_platform, whitley_platform, k920_platform])
    def test_archetype_weights_sum_to_one(self, factory):
        platform = factory()
        assert sum(platform.archetype_weights.values()) == pytest.approx(1.0)

    def test_scale_controls_population(self):
        assert purley_platform(0.5).dimms_with_ce == 600
        assert purley_platform(1.0).dimms_with_ce == 1200

    def test_sudden_shares_match_paper(self):
        for name, platform in standard_platforms().items():
            assert platform.sudden_ue_share == pytest.approx(
                PAPER_TABLE1[name].sudden_ue_share, abs=0.01
            )

    def test_archetype_catalogue_has_risky_signature(self):
        assert "row_risky" in ARCHETYPES
        rng = np.random.default_rng(0)
        profile = ARCHETYPES["row_risky"].make_profile(rng)
        assert profile.beat_stride == 4

    def test_presets_exist(self):
        assert {"tiny", "small", "paper_shape"} <= set(PRESETS)


class TestFaultInjection:
    def test_sampler_draws_valid_faults(self):
        platform = purley_platform(0.1)
        sampler = FaultSampler(platform, DimmGeometry())
        rng = np.random.default_rng(0)
        for _ in range(30):
            injected = sampler.sample_dimm_faults(rng, 1000.0)
            assert 1 <= len(injected) <= 2
            for item in injected:
                assert item.fault.ce_rate_per_hour > 0
                assert 0 <= item.fault.onset_hour < 700.0

    def test_platform_joint_prob_override_applies(self):
        platform = whitley_platform(0.1)
        sampler = FaultSampler(platform, DimmGeometry())
        rng = np.random.default_rng(0)
        for _ in range(50):
            injected = sampler.sample_fault(rng, ARCHETYPES["multi_device"], 1000.0)
            assert injected.fault.multi_device_joint_prob == platform.multi_joint_prob

    def test_activation_times_sorted_and_bounded(self):
        platform = purley_platform(0.1)
        sampler = FaultSampler(platform, DimmGeometry())
        rng = np.random.default_rng(3)
        injected = sampler.sample_fault(rng, ARCHETYPES["row_risky"], 1000.0)
        workload = WorkloadModel()
        times = activation_times(rng, injected, workload, 1000.0)
        assert np.all(np.diff(times) >= 0)
        if times.size:
            assert times.min() >= injected.fault.onset_hour
            assert times.max() < 1000.0


class TestFleet:
    def test_simulation_is_deterministic(self):
        config = FleetConfig(platform=purley_platform(0.02), duration_hours=500.0, seed=3)
        a = simulate_fleet(config)
        b = simulate_fleet(config)
        assert len(a.store.ces) == len(b.store.ces)
        assert len(a.store.ues) == len(b.store.ues)

    def test_all_faulty_dimms_have_configs(self, purley_sim):
        store = purley_sim.store
        for dimm_id in store.dimm_ids_with_ces():
            assert store.config_for(dimm_id).platform == "intel_purley"

    def test_ue_terminates_dimm_stream(self, purley_sim):
        """No CE may be logged after a DIMM's first UE (it was replaced)."""
        store = purley_sim.store
        for ue in store.ues:
            later = store.ces_for_dimm(ue.dimm_id, start_hour=ue.timestamp_hours + 1e-9)
            assert not later

    def test_sudden_ue_dimms_have_no_ces(self, purley_sim):
        for dimm in purley_sim.truth.sudden_ue_dimms:
            assert not purley_sim.store.ces_for_dimm(dimm.dimm_id)
            ues = purley_sim.store.ues_for_dimm(dimm.dimm_id)
            assert ues and ues[0].sudden

    def test_predictable_ue_dimms_have_prior_ces(self, purley_sim):
        for dimm in purley_sim.truth.predictable_ue_dimms:
            ces = purley_sim.store.ces_for_dimm(
                dimm.dimm_id, end_hour=dimm.ue_hour
            )
            assert ces, f"{dimm.dimm_id} UE'd without prior CEs"

    def test_sudden_share_tracks_platform(self, whitley_sim):
        truth = whitley_sim.truth
        total = len(truth.predictable_ue_dimms) + len(truth.sudden_ue_dimms)
        if total >= 10:
            share = len(truth.sudden_ue_dimms) / total
            assert share == pytest.approx(0.58, abs=0.15)

    def test_timestamps_within_campaign(self, purley_sim):
        assert purley_sim.store.end_hour <= purley_sim.duration_hours

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(platform=purley_platform(0.02), duration_hours=0.0)
        with pytest.raises(ValueError):
            FleetConfig(platform=purley_platform(0.02), wear_tau_hours=-1.0)
