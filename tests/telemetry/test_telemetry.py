"""Tests for telemetry records, MCE codec, log store and BMC path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap
from repro.ras.ce_storm import StormConfig
from repro.telemetry.bmc import BmcCollector
from repro.telemetry.log_store import LogStore, iter_stream
from repro.telemetry.mce import McaSignal, decode_mce, encode_mce
from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
    record_from_dict,
)


def make_ce(t=1.0, dimm="d0", row=10, column=3, devices=(2,), **kwargs):
    defaults = dict(
        timestamp_hours=t,
        server_id="s0",
        dimm_id=dimm,
        rank=0,
        bank=1,
        row=row,
        column=column,
        devices=devices,
        dq_count=1,
        beat_count=1,
        dq_interval=0,
        beat_interval=0,
        error_bit_count=1,
    )
    defaults.update(kwargs)
    return CERecord(**defaults)


def make_ue(t=5.0, dimm="d0", sudden=False):
    return UERecord(
        timestamp_hours=t,
        server_id="s0",
        dimm_id=dimm,
        rank=0,
        bank=1,
        row=10,
        column=3,
        devices=(2, 3),
        sudden=sudden,
    )


class TestRecords:
    def test_ce_roundtrip(self):
        ce = make_ce()
        assert record_from_dict(ce.to_dict()) == ce

    def test_ue_roundtrip(self):
        ue = make_ue()
        assert record_from_dict(ue.to_dict()) == ue

    def test_event_roundtrip(self):
        event = MemEventRecord(1.0, "s0", "d0", MemEventKind.CE_STORM, "x")
        assert record_from_dict(event.to_dict()) == event

    def test_config_roundtrip(self):
        config = DimmConfigRecord(
            "d0", "s0", "intel_purley", "A", "p/n", 32, 4, 2666, "1y"
        )
        assert record_from_dict(config.to_dict()) == config

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"record_type": "mystery"})

    def test_multi_device_flag(self):
        assert make_ce(devices=(1, 2)).is_multi_device
        assert not make_ce(devices=(1,)).is_multi_device

    def test_from_pattern_uses_worst_device(self):
        pattern = BusErrorPattern.from_device_bitmaps(
            {
                1: DeviceErrorBitmap.from_positions([(0, 0)]),
                2: DeviceErrorBitmap.from_positions([(0, 0), (4, 1)]),
            }
        )
        ce = CERecord.from_pattern(
            timestamp_hours=0.0, server_id="s", dimm_id="d", rank=0,
            bank=0, row=0, column=0, pattern=pattern,
        )
        assert ce.devices == (1, 2)
        assert ce.dq_count == 2  # device 2's stats
        assert ce.beat_interval == 4


class TestMceCodec:
    @given(
        channel=st.integers(0, 15),
        rank=st.integers(0, 1),
        device=st.integers(0, 17),
        bank=st.integers(0, 15),
        row=st.integers(0, (1 << 17) - 1),
        column=st.integers(0, (1 << 10) - 1),
        dq_count=st.integers(1, 4),
        beat_count=st.integers(1, 8),
        uncorrected=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, **fields):
        signal = McaSignal(corrected_count=1, devices=(fields["device"],), **fields)
        status, addr, misc = encode_mce(signal)
        decoded = decode_mce(status, addr, misc)
        for name in ("channel", "rank", "device", "bank", "row", "column",
                     "dq_count", "beat_count", "uncorrected", "devices"):
            assert getattr(decoded, name) == getattr(signal, name), name

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError, match="not valid"):
            decode_mce(0, 0, 0)

    def test_non_memory_mca_rejected(self):
        with pytest.raises(ValueError, match="memory"):
            decode_mce((1 << 63) | 0x0150, 0, 0)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ValueError):
            encode_mce(McaSignal(channel=16, rank=0, device=0, bank=0, row=0,
                                 column=0, corrected_count=0, uncorrected=False))


class TestLogStore:
    def test_queries_are_time_sliced(self):
        store = LogStore()
        for t in (3.0, 1.0, 2.0):
            store.add_ce(make_ce(t=t))
        assert [c.timestamp_hours for c in store.ces_for_dimm("d0")] == [1, 2, 3]
        assert len(store.ces_for_dimm("d0", 1.5, 2.5)) == 1
        assert store.first_ce_hour("d0") == 1.0
        assert store.first_ce_hour("nope") is None

    def test_end_hour_spans_all_record_kinds(self):
        store = LogStore()
        store.add_ce(make_ce(t=1.0))
        store.add_ue(make_ue(t=9.0))
        assert store.end_hour == 9.0

    def test_extend_dispatches_types(self):
        store = LogStore()
        config = DimmConfigRecord("d0", "s0", "p", "A", "pn", 32, 4, 2666, "1y")
        store.extend([make_ce(), make_ue(), config,
                      MemEventRecord(1.0, "s0", "d0", MemEventKind.CE_STORM)])
        assert len(store) == 3
        assert store.config_for("d0") == config
        with pytest.raises(TypeError):
            store.extend([object()])

    def test_jsonl_roundtrip(self, tmp_path):
        store = LogStore()
        store.add_ce(make_ce())
        store.add_ue(make_ue())
        store.add_config(
            DimmConfigRecord("d0", "s0", "p", "A", "pn", 32, 4, 2666, "1y")
        )
        path = tmp_path / "logs.jsonl"
        count = store.dump_jsonl(path)
        assert count == 3
        loaded = LogStore.load_jsonl(path)
        assert len(loaded.ces) == 1
        assert len(loaded.ues) == 1
        assert loaded.config_for("d0").manufacturer == "A"
        assert loaded.skipped_lines == 0

    def test_load_jsonl_counts_and_warns_on_malformed_lines(self, tmp_path):
        store = LogStore()
        store.add_ce(make_ce(t=1.0))
        store.add_ce(make_ce(t=2.0))
        path = tmp_path / "torn.jsonl"
        store.dump_jsonl(path)
        lines = path.read_text().splitlines()
        lines.insert(1, "{ not json")  # torn write
        lines.append('{"record_type": "ce"}')  # fields missing
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="skipped 2 malformed"):
            loaded = LogStore.load_jsonl(path)
        assert loaded.skipped_lines == 2
        assert len(loaded.ces) == 2  # the good lines all survive
        assert [c.timestamp_hours for c in loaded.ces] == [1.0, 2.0]

    def test_iter_stream_is_time_ordered(self):
        store = LogStore()
        store.add_ue(make_ue(t=2.0))
        store.add_ce(make_ce(t=1.0))
        store.add_ce(make_ce(t=3.0))
        times = [r.timestamp_hours for r in iter_stream(store)]
        assert times == sorted(times)


class TestBmcCollector:
    def _raw_ce(self, row=1, column=1, dq_count=1):
        signal = McaSignal(
            channel=0, rank=0, device=2, bank=1, row=row, column=column,
            corrected_count=1, uncorrected=False, dq_count=dq_count,
            beat_count=1, devices=(2,), error_bit_count=dq_count,
        )
        return encode_mce(signal)

    def test_ce_collection_decodes_registers(self):
        store = LogStore()
        bmc = BmcCollector(store)
        status, addr, misc = self._raw_ce(row=42, column=7, dq_count=2)
        bmc.collect_raw(1.0, "s0", "d0", status, addr, misc, fault_id=9)
        ce = store.ces_for_dimm("d0")[0]
        assert (ce.row, ce.column, ce.dq_count, ce.fault_id) == (42, 7, 2, 9)
        assert bmc.stats.ces_logged == 1

    def test_storm_suppression_drops_ces_but_logs_event(self):
        store = LogStore()
        bmc = BmcCollector(store, StormConfig(threshold=5, window_hours=1.0))
        status, addr, misc = self._raw_ce()
        for i in range(10):
            bmc.collect_raw(1.0 + i * 1e-3, "s0", "d0", status, addr, misc)
        assert bmc.stats.ces_suppressed == 5
        assert bmc.stats.storms == 1
        assert len(store.ces_for_dimm("d0")) == 5
        assert store.events_for_dimm("d0")[0].kind is MemEventKind.CE_STORM

    def test_ue_marked_sudden_without_history(self):
        store = LogStore()
        bmc = BmcCollector(store)
        signal = McaSignal(channel=0, rank=0, device=2, bank=1, row=1, column=1,
                           corrected_count=0, uncorrected=True, devices=(2,))
        bmc.collect_raw(5.0, "s0", "d0", *encode_mce(signal))
        assert store.ues_for_dimm("d0")[0].sudden

    def test_ue_not_sudden_with_history(self):
        store = LogStore()
        bmc = BmcCollector(store)
        bmc.collect_raw(1.0, "s0", "d0", *self._raw_ce())
        signal = McaSignal(channel=0, rank=0, device=2, bank=1, row=1, column=1,
                           corrected_count=0, uncorrected=True, devices=(2,))
        bmc.collect_raw(5.0, "s0", "d0", *encode_mce(signal))
        assert not store.ues_for_dimm("d0")[0].sudden
