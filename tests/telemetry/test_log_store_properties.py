"""Property-based tests for LogStore time slicing."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord


def make_ce(t: float, dimm: str = "d0") -> CERecord:
    return CERecord(
        timestamp_hours=float(t), server_id="s0", dimm_id=dimm, rank=0,
        bank=0, row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )


timestamps = st.lists(
    st.floats(0.0, 1000.0, allow_nan=False), min_size=0, max_size=40
)


@given(timestamps, st.floats(0.0, 1000.0), st.floats(0.0, 1000.0))
@settings(max_examples=60, deadline=None)
def test_window_query_equals_filter(times, a, b):
    lo, hi = min(a, b), max(a, b)
    store = LogStore()
    for t in times:
        store.add_ce(make_ce(t))
    queried = store.ces_for_dimm("d0", lo, hi)
    expected = sorted(t for t in times if lo <= t < hi)
    assert [ce.timestamp_hours for ce in queried] == expected


@given(timestamps)
@settings(max_examples=40, deadline=None)
def test_full_query_is_sorted_and_complete(times):
    store = LogStore()
    for t in times:
        store.add_ce(make_ce(t))
    queried = [ce.timestamp_hours for ce in store.ces_for_dimm("d0")]
    assert queried == sorted(times)
    assert len(store.ces) == len(times)


@given(timestamps, timestamps)
@settings(max_examples=30, deadline=None)
def test_dimms_are_isolated(times_a, times_b):
    store = LogStore()
    for t in times_a:
        store.add_ce(make_ce(t, "dimm-a"))
    for t in times_b:
        store.add_ce(make_ce(t, "dimm-b"))
    assert len(store.ces_for_dimm("dimm-a")) == len(times_a)
    assert len(store.ces_for_dimm("dimm-b")) == len(times_b)
