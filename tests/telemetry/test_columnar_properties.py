"""Property tests for the columnar telemetry store.

Invariants under random (and adversarially out-of-order) record streams:

* every per-DIMM slice of the fleet view equals the record-object path
  (:meth:`DimmHistory.from_records`), bit-for-bit;
* segment offsets are monotone and partition the concatenated arrays;
* bulk ingestion == per-record appends;
* JSONL round-trips through the bulk loader reproduce the store exactly.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.features.windows import DimmHistory
from repro.telemetry.columnar import segmented_searchsorted
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import (
    CERecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
)

_HISTORY_FIELDS = (
    "times", "dq_count", "beat_count", "dq_interval", "beat_interval",
    "n_devices", "error_bits", "rows", "columns", "banks", "devices",
)

_DIMMS = ("dimm-a", "dimm-b", "dimm-c")


def make_ce(t: float, dimm: str, salt: int = 0) -> CERecord:
    return CERecord(
        timestamp_hours=float(t), server_id=f"server-{hash(dimm) % 3}",
        dimm_id=dimm, rank=0, bank=salt % 4, row=salt % 64,
        column=(salt * 7) % 32, devices=(salt % 4,) if salt % 5 else (),
        dq_count=1 + salt % 4, beat_count=1 + salt % 3,
        dq_interval=salt % 5, beat_interval=salt % 6,
        error_bit_count=1 + salt % 4,
    )


def make_event(t: float, dimm: str, salt: int) -> MemEventRecord:
    kinds = list(MemEventKind)
    return MemEventRecord(
        timestamp_hours=float(t), server_id="s0", dimm_id=dimm,
        kind=kinds[salt % len(kinds)],
    )


record_stream = st.lists(
    st.tuples(
        st.floats(0.0, 500.0, allow_nan=False),
        st.sampled_from(_DIMMS),
        st.integers(0, 40),
        st.sampled_from(["ce", "ce", "ce", "event", "ue"]),
    ),
    min_size=0,
    max_size=60,
)


def build_store(stream) -> LogStore:
    store = LogStore()
    for t, dimm, salt, kind in stream:
        if kind == "ce":
            store.add_ce(make_ce(t, dimm, salt))
        elif kind == "event":
            store.add_event(make_event(t, dimm, salt))
        else:
            store.add_ue(
                UERecord(
                    timestamp_hours=float(t), server_id="s0", dimm_id=dimm,
                    rank=0, bank=0, row=0, column=0, devices=(0,),
                )
            )
    return store


@given(record_stream)
@settings(max_examples=60, deadline=None)
def test_fleet_slices_equal_from_records(stream):
    store = build_store(stream)
    fleet = store.fleet_arrays()
    assert fleet.dimm_ids == store.dimm_ids_with_ces()
    for i, dimm_id in enumerate(fleet.dimm_ids):
        reference = DimmHistory.from_records(
            dimm_id, store.ces_for_dimm(dimm_id), store.events_for_dimm(dimm_id)
        )
        lo, hi = fleet.ce_offsets[i], fleet.ce_offsets[i + 1]
        for name in _HISTORY_FIELDS:
            assert np.array_equal(
                getattr(fleet, name)[lo:hi], getattr(reference, name)
            ), (dimm_id, name)
        assert np.array_equal(
            fleet.storm_times[fleet.storm_offsets[i] : fleet.storm_offsets[i + 1]],
            reference.storm_times,
        )
        assert np.array_equal(
            fleet.repair_times[
                fleet.repair_offsets[i] : fleet.repair_offsets[i + 1]
            ],
            reference.repair_times,
        )
        assert fleet.server_ids[i] == reference.server_id
        ues = store.ues_for_dimm(dimm_id)
        if ues:
            assert fleet.ue_hours[i] == ues[0].timestamp_hours
        else:
            assert np.isnan(fleet.ue_hours[i])


@given(record_stream)
@settings(max_examples=60, deadline=None)
def test_offsets_partition_and_segments_sorted(stream):
    store = build_store(stream)
    fleet = store.fleet_arrays()
    for offsets, array in (
        (fleet.ce_offsets, fleet.times),
        (fleet.storm_offsets, fleet.storm_times),
        (fleet.repair_offsets, fleet.repair_times),
    ):
        assert offsets[0] == 0
        assert offsets[-1] == array.size
        assert (np.diff(offsets) >= 0).all()
        for lo, hi in zip(offsets[:-1], offsets[1:]):
            segment = array[lo:hi]
            assert (np.diff(segment) >= 0).all()


@given(record_stream)
@settings(max_examples=40, deadline=None)
def test_bulk_ingest_equals_per_record_appends(stream):
    incremental = build_store(stream)
    bulk = LogStore()
    records = []
    for t, dimm, salt, kind in stream:
        if kind == "ce":
            records.append(make_ce(t, dimm, salt))
        elif kind == "event":
            records.append(make_event(t, dimm, salt))
        else:
            records.append(
                UERecord(
                    timestamp_hours=float(t), server_id="s0", dimm_id=dimm,
                    rank=0, bank=0, row=0, column=0, devices=(0,),
                )
            )
    bulk.ingest_bulk(records)
    a, b = incremental.fleet_arrays(), bulk.fleet_arrays()
    assert a.dimm_ids == b.dimm_ids
    for name in _HISTORY_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name))
    assert np.array_equal(a.ce_offsets, b.ce_offsets)
    assert np.array_equal(a.storm_times, b.storm_times)
    assert np.array_equal(a.repair_times, b.repair_times)
    assert np.array_equal(a.ue_hours, b.ue_hours, equal_nan=True)


@given(record_stream)
@settings(max_examples=25, deadline=None)
def test_jsonl_round_trip_through_columnar(stream):
    store = build_store(stream)
    with tempfile.TemporaryDirectory() as tmp:
        _check_round_trip(store, Path(tmp))


def _check_round_trip(store, tmp: Path) -> None:
    path = tmp / "campaign.jsonl"
    count = store.dump_jsonl(path)
    assert count == len(store)
    loaded = LogStore.load_jsonl(path)
    assert len(loaded) == len(store)
    a, b = store.fleet_arrays(), loaded.fleet_arrays()
    assert a.dimm_ids == b.dimm_ids
    for name in _HISTORY_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name))
    assert np.array_equal(a.ue_hours, b.ue_hours, equal_nan=True)
    # The dumped form is canonical: a second round trip is byte-identical.
    path2 = path.with_suffix(".jsonl2")
    loaded.dump_jsonl(path2)
    assert path.read_text() == path2.read_text()


@given(
    st.lists(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=12),
        min_size=1,
        max_size=6,
    ),
    st.lists(
        st.tuples(st.floats(-10.0, 110.0, allow_nan=False), st.integers(0, 5)),
        max_size=25,
    ),
)
@settings(max_examples=80, deadline=None)
def test_segmented_searchsorted_matches_per_segment(segments, queries):
    segments = [np.sort(np.asarray(seg)) for seg in segments]
    offsets = np.zeros(len(segments) + 1, dtype=np.int64)
    np.cumsum([seg.size for seg in segments], out=offsets[1:])
    values = np.concatenate(segments) if segments else np.empty(0)
    query_values = np.array([q for q, _ in queries], dtype=float)
    query_segments = np.array(
        [s % len(segments) for _, s in queries], dtype=np.int64
    )
    got = segmented_searchsorted(values, offsets, query_values, query_segments)
    expected = np.array(
        [
            np.searchsorted(segments[s], q, side="left")
            for q, s in zip(query_values, query_segments)
        ],
        dtype=np.int64,
    ).reshape(query_values.size)
    assert np.array_equal(got, expected)
