"""``TelemetryColumns`` npz round-trip and zero-copy member mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.columnar import TelemetryColumns
from repro.telemetry.npz_io import load_npz_arrays


def assert_bit_identical(left: TelemetryColumns, right: TelemetryColumns):
    assert np.array_equal(left.ces.rows(), right.ces.rows())
    assert np.array_equal(left.ues.rows(), right.ues.rows())
    assert np.array_equal(left.events.rows(), right.events.rows())
    assert left.dimms.names() == right.dimms.names()
    assert left.servers.names() == right.servers.names()


class TestNpzRoundTrip:
    @pytest.fixture(scope="class")
    def npz_path(self, purley_sim, tmp_path_factory):
        path = tmp_path_factory.mktemp("npz") / "columns.npz"
        purley_sim.store.columns.to_npz(path)
        return path

    def test_eager_reload_is_bit_identical(self, purley_sim, npz_path):
        reloaded = TelemetryColumns.from_npz(npz_path)
        assert_bit_identical(purley_sim.store.columns, reloaded)

    def test_mmap_reload_is_bit_identical(self, purley_sim, npz_path):
        reloaded = TelemetryColumns.from_npz(npz_path, mmap=True)
        assert_bit_identical(purley_sim.store.columns, reloaded)

    def test_mmap_members_are_file_backed_and_read_only(self, npz_path):
        arrays = load_npz_arrays(npz_path, mmap=True)
        table = arrays["ces"]
        assert table.size
        assert isinstance(table, np.memmap)
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 0.0

    def test_mmap_matches_eager_load(self, npz_path):
        eager = load_npz_arrays(npz_path)
        mapped = load_npz_arrays(npz_path, mmap=True)
        assert set(eager) == set(mapped)
        for name in eager:
            assert np.array_equal(eager[name], mapped[name]), name

    def test_reloaded_store_replays_like_the_original(self, purley_sim,
                                                      npz_path):
        # The derived fleet view (offsets, sorted times) is rebuilt from
        # the mapped tables, so downstream replay sees identical inputs.
        original = purley_sim.store.columns.fleet_view()
        reloaded = TelemetryColumns.from_npz(npz_path, mmap=True).fleet_view()
        assert list(original.dimm_ids) == list(reloaded.dimm_ids)
        assert np.array_equal(original.times, reloaded.times)
        assert np.array_equal(original.ce_offsets, reloaded.ce_offsets)
        assert np.array_equal(
            original.ue_hours, reloaded.ue_hours, equal_nan=True
        )

    def test_empty_store_round_trips(self, tmp_path):
        empty = TelemetryColumns()
        path = tmp_path / "empty.npz"
        empty.to_npz(path)
        for mmap in (False, True):
            reloaded = TelemetryColumns.from_npz(path, mmap=mmap)
            assert len(reloaded.ces) == 0
            assert len(reloaded.ues) == 0
            assert len(reloaded.events) == 0
            assert reloaded.dimms.names() == []
