"""Tests for RAS techniques: storms, sparing, offlining, mitigation."""

import numpy as np
import pytest

from repro.dram.faults import BitPatternProfile, Fault, FaultMode
from repro.ras.ce_storm import CeStormDetector, StormAction, StormConfig
from repro.ras.mitigation import MitigationOrchestrator, MitigationPath, MitigationPolicy
from repro.ras.page_offlining import PageOffliningController, PageOffliningPolicy
from repro.ras.sparing import SparingBudget, SparingController, SparingKind


def make_fault(mode=FaultMode.ROW, device=0):
    return Fault(
        mode=mode,
        rank=0,
        devices=(device,),
        bank=1,
        row=500,
        column=10,
        pattern_profile=BitPatternProfile(dq_lanes=(0,)),
        ce_rate_per_hour=0.1,
    )


class TestCeStorm:
    def test_quiet_dimm_logs_normally(self):
        detector = CeStormDetector()
        for i in range(5):
            assert detector.observe("d0", float(i)) is StormAction.LOG

    def test_burst_triggers_storm_then_suppresses(self):
        detector = CeStormDetector(StormConfig(threshold=10, window_hours=1 / 60))
        actions = [detector.observe("d0", 100.0 + i * 1e-4) for i in range(15)]
        assert actions[:9] == [StormAction.LOG] * 9
        assert actions[9] is StormAction.STORM_START
        assert set(actions[10:]) == {StormAction.SUPPRESS}
        assert detector.in_storm("d0")
        assert detector.storm_count("d0") == 1

    def test_cooldown_ends_storm(self):
        detector = CeStormDetector(
            StormConfig(threshold=3, window_hours=1 / 60, cooldown_hours=1.0)
        )
        for i in range(4):
            detector.observe("d0", 1.0 + i * 1e-4)
        assert detector.in_storm("d0")
        assert detector.observe("d0", 3.0) is StormAction.LOG
        assert not detector.in_storm("d0")

    def test_dimms_are_independent(self):
        detector = CeStormDetector(StormConfig(threshold=3, window_hours=1 / 60))
        for i in range(3):
            detector.observe("d0", 1.0 + i * 1e-4)
        assert detector.in_storm("d0")
        assert not detector.in_storm("d1")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StormConfig(threshold=1)
        with pytest.raises(ValueError):
            StormConfig(window_hours=0)


class TestSparing:
    def test_row_fault_gets_row_spare(self):
        controller = SparingController()
        result = controller.try_repair("d0", make_fault(FaultMode.ROW))
        assert result.applied
        assert result.kind is SparingKind.ROW
        assert 0 < result.attenuation < 1

    def test_same_fault_not_repaired_twice(self):
        controller = SparingController()
        fault = make_fault()
        assert controller.try_repair("d0", fault).applied
        assert not controller.try_repair("d0", fault).applied
        assert controller.repairs_applied("d0") == 1

    def test_budget_exhaustion(self):
        controller = SparingController(SparingBudget(spare_rows_per_bank=1))
        first = make_fault(FaultMode.ROW)
        second = make_fault(FaultMode.ROW)
        assert controller.try_repair("d0", first).applied
        result = controller.try_repair("d0", second)  # same bank, no spares left
        assert not result.applied
        assert result.attenuation == 1.0

    def test_bank_fault_uses_bank_spare(self):
        controller = SparingController()
        result = controller.try_repair("d0", make_fault(FaultMode.BANK))
        assert result.kind is SparingKind.BANK

    def test_cell_fault_uses_pcls(self):
        controller = SparingController()
        result = controller.try_repair("d0", make_fault(FaultMode.CELL))
        assert result.kind is SparingKind.PCLS


class TestPageOfflining:
    def test_offlines_after_threshold(self):
        controller = PageOffliningController(PageOffliningPolicy(ce_threshold=3))
        fault = make_fault(FaultMode.CELL)
        results = [
            controller.observe_ce("s0", "d0", fault, row=500) for _ in range(3)
        ]
        assert not results[0].offlined
        assert results[2].offlined
        assert controller.pages_offlined("s0") == 1

    def test_bank_faults_not_offlined(self):
        controller = PageOffliningController(PageOffliningPolicy(ce_threshold=1))
        result = controller.observe_ce("s0", "d0", make_fault(FaultMode.BANK), 1)
        assert not result.offlined

    def test_budget_cap(self):
        controller = PageOffliningController(
            PageOffliningPolicy(ce_threshold=1, max_pages_per_server=1)
        )
        controller.observe_ce("s0", "d0", make_fault(FaultMode.CELL), row=1)
        result = controller.observe_ce("s0", "d0", make_fault(FaultMode.CELL), row=2)
        assert not result.offlined

    def test_retired_row_not_counted_again(self):
        controller = PageOffliningController(PageOffliningPolicy(ce_threshold=1))
        fault = make_fault(FaultMode.CELL)
        assert controller.observe_ce("s0", "d0", fault, row=500).offlined
        assert not controller.observe_ce("s0", "d0", fault, row=500).offlined


class TestMitigation:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MitigationPolicy(live_migration_success=1.5)

    def test_expected_cold_fraction(self):
        policy = MitigationPolicy(0.8, 0.5)
        assert policy.expected_cold_fraction == pytest.approx(0.1)

    def test_observed_cold_fraction_converges(self):
        orchestrator = MitigationOrchestrator(rng=np.random.default_rng(0))
        for _ in range(4000):
            orchestrator.mitigate()
        assert orchestrator.observed_cold_fraction == pytest.approx(0.1, abs=0.03)
        assert sum(orchestrator.path_counts.values()) == 4000

    def test_deterministic_policies(self):
        always_live = MitigationOrchestrator(
            MitigationPolicy(1.0, 0.0), np.random.default_rng(0)
        )
        assert always_live.mitigate() is MitigationPath.LIVE_MIGRATION
        always_cold = MitigationOrchestrator(
            MitigationPolicy(0.0, 0.0), np.random.default_rng(0)
        )
        assert always_cold.mitigate() is MitigationPath.COLD_MIGRATION
