"""Parity of the cross-DIMM fleet extraction engine.

The fleet pass (one :class:`FleetWindows` over every DIMM's concatenated
history), the per-DIMM batch path (:meth:`transform_batch`), the per-sample
reference (:meth:`transform_one`) and the sharded parallel build must all
produce bit-for-bit identical feature matrices and sample sets — across all
three simulated platforms.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.features.windows import DimmHistory
from repro.telemetry.log_store import LogStore


@pytest.fixture(scope="module", params=["intel_purley", "intel_whitley", "k920"])
def platform_sim(request, tiny_study):
    return request.param, tiny_study[request.param]


@pytest.fixture(scope="module")
def fitted(platform_sim):
    _, sim = platform_sim
    pipeline = FeaturePipeline()
    pipeline.fit(sim.store)
    return pipeline


class TestFleetMatrixParity:
    def test_transform_fleet_equals_per_dimm_batch(self, platform_sim, fitted):
        """Fleet rows == concatenated per-DIMM transform_batch blocks."""
        _, sim = platform_sim
        store = sim.store
        fleet = store.fleet_arrays()
        ts_parts, seg_parts, reference_parts = [], [], []
        for i, dimm_id in enumerate(fleet.dimm_ids[:40]):
            lo, hi = fleet.ce_offsets[i], fleet.ce_offsets[i + 1]
            times = fleet.times[lo:hi]
            # CE instants, off-CE instants, and out-of-range extremes.
            ts = np.concatenate([times, times + 0.37, [0.0, 1e6]])
            ts.sort()
            ts_parts.append(ts)
            seg_parts.append(np.full(ts.size, i, dtype=np.int64))
            history = DimmHistory.from_records(
                dimm_id,
                store.ces_for_dimm(dimm_id),
                store.events_for_dimm(dimm_id),
            )
            reference_parts.append(
                fitted.transform_batch(history, store.config_for(dimm_id), ts)
            )
        n_checked = len(ts_parts)
        shard = fleet.shard(0, n_checked)
        configs = [store.config_for(d) for d in fleet.dimm_ids[:n_checked]]
        fleet_X = fitted.transform_fleet(
            shard,
            configs,
            np.concatenate(ts_parts),
            np.concatenate(seg_parts),
        )
        reference = np.vstack(reference_parts)
        assert np.array_equal(fleet_X, reference)

    def test_transform_fleet_equals_per_sample(self, platform_sim, fitted):
        """Fleet rows == transform_one, sample by sample."""
        _, sim = platform_sim
        store = sim.store
        fleet = store.fleet_arrays()
        n = min(5, fleet.n_dimms)
        shard = fleet.shard(0, n)
        ts_parts, seg_parts, rows = [], [], []
        for i, dimm_id in enumerate(fleet.dimm_ids[:n]):
            lo, hi = fleet.ce_offsets[i], fleet.ce_offsets[i + 1]
            ts = np.concatenate([fleet.times[lo:hi][:10], [0.0, 1e6]])
            ts.sort()
            ts_parts.append(ts)
            seg_parts.append(np.full(ts.size, i, dtype=np.int64))
            history = DimmHistory.from_records(
                dimm_id,
                store.ces_for_dimm(dimm_id),
                store.events_for_dimm(dimm_id),
            )
            config = store.config_for(dimm_id)
            rows.extend(
                fitted.transform_one(history, config, float(t)) for t in ts
            )
        fleet_X = fitted.transform_fleet(
            shard,
            [store.config_for(d) for d in fleet.dimm_ids[:n]],
            np.concatenate(ts_parts),
            np.concatenate(seg_parts),
        )
        assert np.array_equal(fleet_X, np.vstack(rows))


class TestBuildSamplesParity:
    def test_fleet_equals_batch_equals_per_sample(self, platform_sim, fitted):
        name, sim = platform_sim
        store = sim.store
        fleet = fitted.build_samples(
            store, name, sim.duration_hours, engine="fleet"
        )
        batch = fitted.build_samples(
            store, name, sim.duration_hours, engine="batch"
        )
        reference = fitted.build_samples(
            store, name, sim.duration_hours, engine="per_sample"
        )
        for other in (batch, reference):
            assert np.array_equal(fleet.X, other.X)
            assert np.array_equal(fleet.y, other.y)
            assert np.array_equal(fleet.times, other.times)
            assert list(fleet.dimm_ids) == list(other.dimm_ids)
        assert len(fleet) > 0

    def test_sharded_build_is_bit_identical(self, platform_sim, fitted):
        name, sim = platform_sim
        store = sim.store
        serial = fitted.build_samples(
            store, name, sim.duration_hours, engine="fleet"
        )
        for workers in (2, 5):
            sharded = fitted.build_samples(
                store, name, sim.duration_hours, engine="fleet",
                workers=workers,
            )
            assert np.array_equal(serial.X, sharded.X)
            assert np.array_equal(serial.y, sharded.y)
            assert np.array_equal(serial.times, sharded.times)
            assert list(serial.dimm_ids) == list(sharded.dimm_ids)

    def test_unknown_engine_rejected(self, platform_sim, fitted):
        name, sim = platform_sim
        with pytest.raises(ValueError, match="unknown engine"):
            fitted.build_samples(sim.store, name, engine="warp")


def test_empty_store_builds_empty_sample_set(purley_sim):
    pipeline = FeaturePipeline()
    pipeline.fit(purley_sim.store)
    empty = LogStore()
    samples = pipeline.build_samples(empty, "none", campaign_end_hour=100.0)
    assert len(samples) == 0
    assert samples.X.shape == (0, len(pipeline.feature_names()))
