"""Unit tests for static config encoding and environment features."""

import numpy as np
import pytest

from repro.features.static import EnvironmentExtractor, StaticEncoder
from repro.telemetry.records import DimmConfigRecord


def make_config(dimm="d0", manufacturer="A", part="pn-1", frequency=2666):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer=manufacturer, part_number=part, capacity_gb=32,
        data_width=4, frequency_mts=frequency, chip_process="1y",
    )


class TestStaticEncoder:
    def test_one_hot_manufacturer(self):
        encoder = StaticEncoder().fit({"d0": make_config()})
        values = encoder.compute(make_config(manufacturer="A"))
        names = encoder.names()
        assert values[names.index("static_mfr_A")] == 1.0
        assert values[names.index("static_mfr_B")] == 0.0

    def test_part_number_codes_are_stable(self):
        configs = {
            "d0": make_config("d0", part="pn-b"),
            "d1": make_config("d1", part="pn-a"),
        }
        encoder = StaticEncoder().fit(configs)
        names = encoder.names()
        code_index = names.index("static_part_number_code")
        code_a = encoder.compute(make_config(part="pn-a"))[code_index]
        code_b = encoder.compute(make_config(part="pn-b"))[code_index]
        assert code_a != code_b
        assert encoder.part_number_cardinality == 3  # 2 parts + unseen bucket

    def test_unseen_part_number_maps_to_zero(self):
        encoder = StaticEncoder().fit({"d0": make_config(part="pn-known")})
        names = encoder.names()
        value = encoder.compute(make_config(part="brand-new"))[
            names.index("static_part_number_code")
        ]
        assert value == 0.0

    def test_frequency_is_scaled_to_ghz(self):
        encoder = StaticEncoder().fit({"d0": make_config()})
        names = encoder.names()
        value = encoder.compute(make_config(frequency=3200))[
            names.index("static_frequency_ghz")
        ]
        assert value == pytest.approx(3.2)

    def test_vector_matches_names_length(self):
        encoder = StaticEncoder().fit({"d0": make_config()})
        assert len(encoder.compute(make_config())) == len(encoder.names())


class TestEnvironmentExtractor:
    def test_sibling_errors_counted(self):
        extractor = EnvironmentExtractor(observation_hours=100.0)
        extractor.fit({"s0": np.array([10.0, 20.0, 30.0])})
        # At t=50 with own_count=1: two sibling CEs remain.
        sibling, has = extractor.compute("s0", own_count_5d=1.0, t=50.0)
        assert sibling == 2.0
        assert has == 1.0

    def test_unknown_server_is_zero(self):
        extractor = EnvironmentExtractor()
        extractor.fit({})
        assert extractor.compute("nope", 0.0, 10.0) == [0.0, 0.0]

    def test_own_count_never_negative(self):
        extractor = EnvironmentExtractor(observation_hours=100.0)
        extractor.fit({"s0": np.array([10.0])})
        sibling, _ = extractor.compute("s0", own_count_5d=5.0, t=50.0)
        assert sibling == 0.0
