"""Tests for windows, extractors, labeling, sampling and the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features import (
    DimmHistory,
    FeaturePipeline,
    FeaturePipelineConfig,
    LabelingParams,
    SampleValidity,
    SamplingParams,
    aggregate_by_dimm,
    choose_sample_times,
    label_at,
    sample_validity,
    temporal_split,
)
from repro.features.sampling import SampleSet
from repro.telemetry.records import CERecord, MemEventKind, MemEventRecord


def ce(t, row=1, column=1, dq=1, beats=1, beat_iv=0, devices=(0,)):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id="d0", rank=0, bank=0,
        row=row, column=column, devices=devices, dq_count=dq,
        beat_count=beats, dq_interval=0, beat_interval=beat_iv,
        error_bit_count=dq * beats,
    )


def history(ces, events=()):
    return DimmHistory.from_records("d0", list(ces), list(events))


class TestDimmHistory:
    def test_sorted_and_sliced(self):
        h = history([ce(3.0), ce(1.0), ce(2.0)])
        assert list(h.times) == [1.0, 2.0, 3.0]
        assert h.count_in(1.5, 2.5) == 1
        assert h.first_ce_hour == 1.0
        assert len(h) == 3

    def test_event_separation(self):
        events = [
            MemEventRecord(1.0, "s0", "d0", MemEventKind.CE_STORM),
            MemEventRecord(2.0, "s0", "d0", MemEventKind.PAGE_OFFLINE),
        ]
        h = history([ce(1.0)], events)
        assert h.storms_in(0, 10) == 1
        assert h.repairs_in(0, 10) == 1


class TestExtractors:
    def test_feature_vector_matches_schema(self, purley_sim):
        pipeline = FeaturePipeline()
        pipeline.fit(purley_sim.store)
        dimm_id = purley_sim.store.dimm_ids_with_ces()[0]
        h = DimmHistory.from_records(
            dimm_id,
            purley_sim.store.ces_for_dimm(dimm_id),
            purley_sim.store.events_for_dimm(dimm_id),
        )
        config = purley_sim.store.config_for(dimm_id)
        vector = pipeline.transform_one(h, config, t=500.0)
        assert vector.shape == (len(pipeline.feature_names()),)
        assert np.all(np.isfinite(vector))

    def test_feature_groups_partition_columns(self):
        pipeline = FeaturePipeline()
        groups = pipeline.feature_groups()
        all_indices = sorted(i for idx in groups.values() for i in idx)
        assert all_indices == list(range(len(pipeline.feature_names())))

    def test_risky_pattern_feature_counts_events(self):
        pipeline = FeaturePipeline()
        records = [ce(t, dq=2, beats=2, beat_iv=4) for t in (1.0, 2.0, 3.0)]
        h = history(records)
        index = pipeline.feature_names().index("bit_risky_2dq_interval4_count")
        temporal = pipeline.temporal.compute(h, 5.0)
        bitlevel = pipeline.bitlevel.compute(h, 5.0)
        assert bitlevel[pipeline.bitlevel.names().index("bit_risky_2dq_interval4_count")] == 3.0
        assert temporal[pipeline.temporal.names().index("temporal_ce_count_5d")] == 3.0
        assert index >= 0

    def test_spatial_fault_flags(self):
        pipeline = FeaturePipeline()
        row_fault = [ce(t, row=5, column=int(t)) for t in (1.0, 2.0, 3.0)]
        values = pipeline.spatial.compute(history(row_fault), 5.0)
        names = pipeline.spatial.names()
        assert values[names.index("spatial_row_fault")] == 1.0
        assert values[names.index("spatial_column_fault")] == 0.0

    def test_empty_window_is_all_zeros(self):
        pipeline = FeaturePipeline()
        h = history([ce(1.0)])
        values = pipeline.bitlevel.compute(h, 500.0)  # window long past
        assert all(v == 0.0 for v in values)


class TestLabeling:
    PARAMS = LabelingParams(lead_hours=3.0, prediction_window_hours=720.0)

    def test_positive_inside_window(self):
        assert label_at(100.0, ue_hour=104.0, params=self.PARAMS) == 1
        assert label_at(100.0, ue_hour=800.0, params=self.PARAMS) == 1

    def test_negative_outside_window(self):
        assert label_at(100.0, ue_hour=102.0, params=self.PARAMS) == 0  # in lead
        assert label_at(100.0, ue_hour=900.0, params=self.PARAMS) == 0  # beyond
        assert label_at(100.0, ue_hour=None, params=self.PARAMS) == 0

    def test_validity_rules(self):
        params = self.PARAMS
        assert sample_validity(100.0, None, 2000.0, params) is SampleValidity.VALID
        assert sample_validity(150.0, 120.0, 2000.0, params) is SampleValidity.AFTER_UE
        assert sample_validity(1900.0, None, 2000.0, params) is SampleValidity.CENSORED
        # Censored window but with a known UE inside it: still valid.
        assert sample_validity(1900.0, 1950.0, 2000.0, params) is SampleValidity.VALID

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LabelingParams(lead_hours=-1.0)
        with pytest.raises(ValueError):
            LabelingParams(prediction_window_hours=0.0)

    @given(
        t=st.floats(0, 1000),
        ue=st.floats(0, 2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_label_is_window_membership(self, t, ue):
        params = self.PARAMS
        label = label_at(t, ue, params)
        inside = t + params.lead_hours <= ue < t + params.horizon_hours
        assert label == int(inside)


class TestSampling:
    def test_choose_sample_times_caps(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 100, 200)
        chosen = choose_sample_times(times, max_samples=10, min_history_ces=2, rng=rng)
        assert 1 <= chosen.size <= 10
        assert set(chosen) <= set(times)

    def test_min_history_enforced(self):
        rng = np.random.default_rng(0)
        assert choose_sample_times(np.array([1.0]), 10, 3, rng).size == 0

    def test_temporal_split_separates_periods(self, purley_sim, tiny_protocol):
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=tiny_protocol.labeling, sampling=tiny_protocol.sampling
            )
        )
        samples = pipeline.build_samples(
            purley_sim.store, "intel_purley", purley_sim.duration_hours
        )
        split = temporal_split(samples, purley_sim.duration_hours, tiny_protocol.sampling)
        split_hour = tiny_protocol.sampling.train_fraction * purley_sim.duration_hours
        assert np.all(split.train.times < split_hour)
        assert np.all(split.validation.times < split_hour)
        assert np.all(split.test.times >= split_hour)
        # Validation DIMMs are disjoint from train DIMMs.
        assert not (set(split.train.dimm_ids) & set(split.validation.dimm_ids))

    def test_aggregate_by_dimm_pools_topk(self):
        samples = SampleSet(
            X=np.zeros((4, 1)),
            y=np.array([0, 1, 0, 0]),
            times=np.arange(4.0),
            dimm_ids=np.array(["a", "a", "a", "b"], dtype=object),
            feature_names=["f"],
        )
        ids, y, scores = aggregate_by_dimm(
            samples, np.array([0.9, 0.3, 0.6, 0.2]), top_k=2
        )
        assert list(ids) == ["a", "b"]
        assert y.tolist() == [1, 0]
        assert scores[0] == pytest.approx((0.9 + 0.6) / 2)

    def test_drop_feature_groups_zeroes_columns(self):
        samples = SampleSet(
            X=np.ones((2, 3)),
            y=np.array([0, 1]),
            times=np.zeros(2),
            dimm_ids=np.array(["a", "b"], dtype=object),
            feature_names=["f0", "f1", "f2"],
            feature_groups={"g": [1, 2]},
        )
        ablated = samples.drop_feature_groups(("g",))
        assert ablated.X[:, 0].tolist() == [1.0, 1.0]
        assert ablated.X[:, 1:].sum() == 0.0


class TestPipelineEndToEnd:
    def test_samples_have_no_label_leakage(self, purley_sim, tiny_protocol):
        """No sample may be taken at or after its DIMM's UE."""
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=tiny_protocol.labeling, sampling=tiny_protocol.sampling
            )
        )
        samples = pipeline.build_samples(
            purley_sim.store, "intel_purley", purley_sim.duration_hours
        )
        assert len(samples) > 0
        for dimm_id, t in zip(samples.dimm_ids, samples.times):
            ues = purley_sim.store.ues_for_dimm(dimm_id)
            if ues:
                assert t < ues[0].timestamp_hours

    def test_positive_rate_is_moderate(self, purley_sim, tiny_protocol):
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=tiny_protocol.labeling, sampling=tiny_protocol.sampling
            )
        )
        samples = pipeline.build_samples(
            purley_sim.store, "intel_purley", purley_sim.duration_hours
        )
        assert 0.0 < samples.positive_rate < 0.5


class TestColumnarFit:
    def test_server_ce_times_matches_record_walk(self, purley_sim):
        """fit() reads the columnar CE table; parity with store.ces walk."""
        from repro.features.pipeline import server_ce_times

        store = purley_sim.store
        expected: dict[str, list[float]] = {}
        for record in store.ces:
            expected.setdefault(record.server_id, []).append(
                record.timestamp_hours
            )
        columnar = server_ce_times(store)
        assert set(columnar) == set(expected)
        for server, times in expected.items():
            np.testing.assert_array_equal(
                np.sort(columnar[server]), np.sort(np.asarray(times))
            )

    def test_fitted_environment_index_is_bit_identical(self, purley_sim):
        """A pipeline fitted columnar equals one fitted via the old walk."""
        columnar_pipeline = FeaturePipeline().fit(purley_sim.store)

        walk_pipeline = FeaturePipeline()
        walk_pipeline.static.fit(purley_sim.store.configs)
        server_times: dict[str, list[float]] = {}
        for record in purley_sim.store.ces:
            server_times.setdefault(record.server_id, []).append(
                record.timestamp_hours
            )
        walk_pipeline.environment.fit(
            {s: np.asarray(t) for s, t in server_times.items()}
        )
        walk_pipeline._fitted = True

        columnar_index = columnar_pipeline.environment._server_times
        walk_index = walk_pipeline.environment._server_times
        assert set(columnar_index) == set(walk_index)
        for server in walk_index:
            np.testing.assert_array_equal(
                columnar_index[server], walk_index[server]
            )

        # And the served feature values agree bit-for-bit.
        dimm_id = purley_sim.store.dimm_ids_with_ces()[0]
        server = purley_sim.store.ces_for_dimm(dimm_id)[0].server_id
        for t in (100.0, 500.0, 1200.0):
            assert columnar_pipeline.environment.compute(
                server, 1.0, t
            ) == walk_pipeline.environment.compute(server, 1.0, t)

    def test_empty_store_fit(self):
        from repro.telemetry.log_store import LogStore

        pipeline = FeaturePipeline().fit(LogStore())
        assert pipeline.feature_names()
