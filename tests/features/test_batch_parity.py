"""Train/serve parity of the vectorized feature-extraction engine.

The batched ``compute_batch`` paths, the per-sample ``compute`` reference
paths, and the online-serving path over an incrementally grown
:class:`AppendableDimmHistory` must all produce bit-for-bit identical
feature values — this is the train/serve-consistency guarantee the paper's
feature store is built around.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.features.windows import AppendableDimmHistory, DimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.telemetry.records import CERecord, MemEventKind, MemEventRecord


@pytest.fixture(scope="module")
def fitted(purley_sim):
    pipeline = FeaturePipeline()
    pipeline.fit(purley_sim.store)
    return pipeline


def _history(store, dimm_id):
    return DimmHistory.from_records(
        dimm_id, store.ces_for_dimm(dimm_id), store.events_for_dimm(dimm_id)
    )


def _sample_times(history):
    """CE instants, off-CE instants, and out-of-range extremes."""
    return np.concatenate(
        [history.times, history.times + 0.37, [0.0, 1e6]]
    )


class TestBatchMatchesPerSample:
    def test_full_pipeline_bit_for_bit(self, purley_sim, fitted):
        store = purley_sim.store
        checked = 0
        for dimm_id in store.dimm_ids_with_ces()[:25]:
            history = _history(store, dimm_id)
            config = store.config_for(dimm_id)
            ts = _sample_times(history)
            batch = fitted.transform_batch(history, config, ts)
            reference = np.vstack(
                [fitted.transform_one(history, config, float(t)) for t in ts]
            )
            assert np.array_equal(batch, reference), dimm_id
            checked += ts.size
        assert checked > 0

    def test_each_extractor_matches(self, purley_sim, fitted):
        store = purley_sim.store
        dimm_id = store.dimm_ids_with_ces()[0]
        history = _history(store, dimm_id)
        ts = _sample_times(history)
        for extractor in (fitted.temporal, fitted.spatial, fitted.bitlevel):
            batch = extractor.compute_batch(history, ts)
            reference = np.vstack(
                [extractor.compute(history, float(t)) for t in ts]
            )
            assert np.array_equal(batch, reference), extractor.group

    def test_empty_history(self, fitted, purley_sim):
        store = purley_sim.store
        dimm_id = store.dimm_ids_with_ces()[0]
        config = store.config_for(dimm_id)
        empty = DimmHistory.from_records("empty", [], [])
        ts = np.array([10.0, 500.0])
        batch = fitted.transform_batch(empty, config, ts)
        reference = np.vstack(
            [fitted.transform_one(empty, config, float(t)) for t in ts]
        )
        assert np.array_equal(batch, reference)

    def test_empty_ts(self, fitted, purley_sim):
        store = purley_sim.store
        dimm_id = store.dimm_ids_with_ces()[0]
        history = _history(store, dimm_id)
        config = store.config_for(dimm_id)
        out = fitted.transform_batch(history, config, np.empty(0))
        assert out.shape == (0, len(fitted.feature_names()))

    def test_build_samples_batch_equals_per_sample(self, purley_sim, fitted):
        store = purley_sim.store
        batch = fitted.build_samples(store, "intel_purley",
                                     purley_sim.duration_hours)
        reference = fitted.build_samples(store, "intel_purley",
                                         purley_sim.duration_hours,
                                         use_batch=False)
        assert np.array_equal(batch.X, reference.X)
        assert np.array_equal(batch.y, reference.y)
        assert np.array_equal(batch.times, reference.times)
        assert list(batch.dimm_ids) == list(reference.dimm_ids)


class TestOnlineServingParity:
    def test_appendable_matches_batch_row(self, purley_sim, fitted):
        """Streaming state == from_records == batch row, at every instant."""
        store = purley_sim.store
        feature_store = FeatureStore(fitted)
        checked = 0
        for dimm_id in store.dimm_ids_with_ces()[:8]:
            ces = store.ces_for_dimm(dimm_id)
            events = store.events_for_dimm(dimm_id)
            config = store.config_for(dimm_id)
            merged = sorted(ces + events, key=lambda r: r.timestamp_hours)
            appendable = AppendableDimmHistory(dimm_id)
            seen_ces, seen_events = [], []
            for record in merged:
                appendable.append(record)
                if isinstance(record, CERecord):
                    seen_ces.append(record)
                else:
                    seen_events.append(record)
                if len(seen_ces) < 2:
                    continue
                t = record.timestamp_hours
                online = feature_store.serve_online(appendable, config, t)
                rebuilt = DimmHistory.from_records(
                    dimm_id, seen_ces, seen_events
                )
                reference = fitted.transform_one(rebuilt, config, t)
                batch_row = fitted.transform_batch(
                    rebuilt, config, np.array([t])
                )[0]
                assert np.array_equal(online, reference)
                assert np.array_equal(online, batch_row)
                checked += 1
        assert checked > 0

    def test_out_of_order_appends_are_resorted(self):
        def ce(t):
            return CERecord(
                timestamp_hours=t, server_id="s0", dimm_id="d0", rank=0,
                bank=0, row=1, column=1, devices=(0,), dq_count=1,
                beat_count=1, dq_interval=0, beat_interval=0,
                error_bit_count=1,
            )

        appendable = AppendableDimmHistory("d0")
        for t in (3.0, 1.0, 2.0):
            appendable.append_ce(ce(t))
        appendable.append_event(
            MemEventRecord(5.0, "s0", "d0", MemEventKind.CE_STORM)
        )
        appendable.append_event(
            MemEventRecord(4.0, "s0", "d0", MemEventKind.PAGE_OFFLINE)
        )
        view = appendable.view()
        assert list(view.times) == [1.0, 2.0, 3.0]
        assert view.storms_in(0.0, 10.0) == 1
        assert view.repairs_in(0.0, 10.0) == 1
        assert len(appendable) == 3

    def test_buffer_growth_preserves_history(self):
        def ce(t):
            return CERecord(
                timestamp_hours=t, server_id="s0", dimm_id="d0", rank=0,
                bank=0, row=int(t), column=1, devices=(0,), dq_count=1,
                beat_count=1, dq_interval=0, beat_interval=0,
                error_bit_count=1,
            )

        appendable = AppendableDimmHistory("d0")
        times = [float(t) for t in range(100)]  # forces several doublings
        for t in times:
            appendable.append_ce(ce(t))
        view = appendable.view()
        assert list(view.times) == times
        assert list(view.rows) == [int(t) for t in times]
        assert view.server_id == "s0"
