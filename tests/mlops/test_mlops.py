"""Tests for the MLOps framework components."""

import numpy as np
import pytest

from repro.mlops.data_pipeline import DataLake, DataPipeline, default_ingestion_pipeline
from repro.mlops.feature_store import FeatureDefinition, FeatureRegistry, FeatureStore
from repro.mlops.model_registry import (
    CiCdPipeline,
    GatePolicy,
    ModelRegistry,
    ModelStage,
)
from repro.mlops.monitoring import (
    Dashboard,
    DriftMonitor,
    population_stability_index,
)
from repro.mlops.serving import Alarm, AlarmSystem
from repro.features.pipeline import FeaturePipeline
from repro.telemetry.records import CERecord


def ce(t, dimm="d0", row=1):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=row, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )


class TestDataPipeline:
    def test_stages_run_in_topological_order(self):
        pipeline = DataPipeline()
        order = []
        pipeline.add_stage("a", lambda r: (order.append("a"), r)[1])
        pipeline.add_stage("b", lambda r: (order.append("b"), r)[1], after=("a",))
        pipeline.add_stage("c", lambda r: (order.append("c"), r)[1], after=("b",))
        pipeline.run([ce(1.0)])
        assert order == ["a", "b", "c"]

    def test_cycle_rejected(self):
        pipeline = DataPipeline()
        pipeline.add_stage("a", lambda r: r)
        with pytest.raises(ValueError):
            pipeline.add_stage("a", lambda r: r)

    def test_unknown_dependency_rejected(self):
        pipeline = DataPipeline()
        with pytest.raises(ValueError, match="unknown dependency"):
            pipeline.add_stage("b", lambda r: r, after=("missing",))

    def test_stage_failure_is_captured(self):
        pipeline = DataPipeline()
        pipeline.add_stage("boom", lambda r: 1 / 0)
        records, results = pipeline.run([ce(1.0)])
        assert records == []
        assert not results[0].ok
        assert "ZeroDivisionError" in results[0].error

    def test_default_pipeline_dedups_and_sorts(self):
        pipeline = default_ingestion_pipeline()
        duplicate = ce(2.0)
        records, results = pipeline.run([duplicate, ce(1.0), duplicate])
        assert all(r.ok for r in results)
        assert [r.timestamp_hours for r in records] == [1.0, 2.0]

    def test_data_lake_roundtrip(self, tmp_path):
        lake = DataLake(tmp_path / "lake")
        lake.write_partition("bmc", [ce(1.0), ce(2.0)])
        assert lake.partitions["bmc"] == 2
        store = lake.as_log_store()
        assert len(store.ces) == 2


class TestFeatureStoreAndRegistry:
    def test_registry_rejects_downgrade(self):
        registry = FeatureRegistry()
        registry.register(FeatureDefinition("f", "g", version=2))
        with pytest.raises(ValueError):
            registry.register(FeatureDefinition("f", "g", version=1))

    def test_registry_covers_pipeline(self):
        pipeline = FeaturePipeline()
        registry = FeatureRegistry()
        count = registry.register_pipeline(pipeline)
        assert count == len(pipeline.feature_names())
        assert registry.by_group("bitlevel")

    def test_materialize_and_select(self, purley_sim):
        pipeline = FeaturePipeline()
        store = FeatureStore(pipeline)
        snapshot = store.materialize(
            "snap1", purley_sim.store, "intel_purley", purley_sim.duration_hours
        )
        assert len(snapshot.samples) > 0
        with pytest.raises(ValueError):
            store.materialize("snap1", purley_sim.store, "intel_purley")
        X, names = store.select_features(
            snapshot.samples, ["temporal_ce_count_5d", "bit_max_dq_count"]
        )
        assert X.shape == (len(snapshot.samples), 2)
        with pytest.raises(KeyError):
            store.select_features(snapshot.samples, ["nope"])


class TestModelRegistryAndGate:
    def _register(self, registry, f1, platform="p"):
        return registry.register(platform, "lightgbm", object(), 0.5, {"f1": f1})

    def test_first_deployment_needs_floor(self):
        registry = ModelRegistry()
        cicd = CiCdPipeline(registry, GatePolicy(min_value=0.3))
        bad = self._register(registry, 0.1)
        assert not cicd.submit(bad).promoted
        good = self._register(registry, 0.5)
        assert cicd.submit(good).promoted
        assert registry.production_model("p") is good

    def test_promotion_requires_improvement(self):
        registry = ModelRegistry()
        cicd = CiCdPipeline(registry, GatePolicy(min_improvement=0.05))
        first = self._register(registry, 0.5)
        cicd.submit(first)
        worse = self._register(registry, 0.52)
        assert not cicd.submit(worse).promoted
        better = self._register(registry, 0.6)
        assert cicd.submit(better).promoted
        assert first.stage is ModelStage.ARCHIVED

    def test_rollback_restores_previous(self):
        registry = ModelRegistry()
        cicd = CiCdPipeline(registry)
        first = self._register(registry, 0.5)
        cicd.submit(first)
        second = self._register(registry, 0.6)
        cicd.submit(second)
        restored = registry.rollback("p")
        assert restored is first
        assert registry.production_model("p") is first

    def test_stage_transitions_validated(self):
        registry = ModelRegistry()
        version = self._register(registry, 0.5)
        with pytest.raises(ValueError):
            registry.promote_to_production(version)  # not staged yet


class TestMonitoring:
    def test_dashboard_counters_and_series(self):
        dashboard = Dashboard()
        dashboard.increment("x")
        dashboard.increment("x", 2.0)
        dashboard.record("s", 1.0, 0.5)
        snapshot = dashboard.snapshot()
        assert snapshot["x"] == 3.0
        assert snapshot["s.latest"] == 0.5

    def test_psi_zero_for_same_distribution(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(size=2000)
        assert population_stability_index(sample, sample) < 0.01

    def test_psi_large_for_shifted_distribution(self):
        rng = np.random.default_rng(0)
        assert population_stability_index(
            rng.normal(0, 1, 2000), rng.normal(3, 1, 2000)
        ) > 0.25

    def test_drift_monitor_detects_shift(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=(500, 2))
        monitor = DriftMonitor(reference, ["a", "b"], min_samples=50)
        assert monitor.check() == []  # not enough serving samples yet
        for _ in range(100):
            monitor.observe(rng.normal(5, 1, size=2))
        assert monitor.needs_retraining()
        monitor.reset()
        assert monitor.buffered == 0

    def test_drift_monitor_quiet_without_shift(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=(500, 2))
        monitor = DriftMonitor(reference, ["a", "b"], min_samples=50)
        for _ in range(100):
            monitor.observe(rng.normal(0, 1, size=2))
        assert not monitor.needs_retraining()


class TestAlarmSystem:
    def _alarm(self, dimm="d0"):
        return Alarm(1.0, "p", "s0", dimm, 0.9, 1)

    def test_deduplicates_per_dimm(self):
        system = AlarmSystem()
        assert system.raise_alarm(self._alarm())
        assert not system.raise_alarm(self._alarm())
        assert system.active_count == 1
        system.acknowledge("d0")
        assert system.raise_alarm(self._alarm())
