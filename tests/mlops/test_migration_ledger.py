"""MigrationLedger accounting: confusion/VIRR count consistency."""

import numpy as np
import pytest

from repro.mlops.migration import MigrationLedger, MigrationSimulator
from repro.mlops.serving import Alarm
from repro.ras.mitigation import MitigationPath


def _alarm(dimm_id: str, hour: float) -> Alarm:
    return Alarm(
        timestamp_hours=hour,
        platform="intel_purley",
        server_id="srv",
        dimm_id=dimm_id,
        score=0.9,
        model_version=1,
    )


class TestMigrationLedgerConsistency:
    def test_confusion_partitions_alarmed_and_failed_dimms(self):
        ledger = MigrationLedger()
        ledger.alarmed_dimms = {"tp1": 10.0, "tp2": 20.0, "fp": 30.0}
        ledger.failed_dimms = {"tp1": 50.0, "tp2": 60.0, "fn": 70.0}
        counts = ledger.confusion()
        assert (counts.tp, counts.fp, counts.fn) == (2, 1, 1)
        # every failed DIMM is tp or fn; every alarmed DIMM is tp or fp
        assert counts.tp + counts.fn == len(ledger.failed_dimms)
        assert counts.tp + counts.fp == len(ledger.alarmed_dimms)

    def test_lead_hours_demotes_slow_alarms(self):
        ledger = MigrationLedger()
        ledger.alarmed_dimms = {"d1": 48.0}
        ledger.failed_dimms = {"d1": 50.0}
        assert ledger.confusion(lead_hours=0.0).tp == 1
        assert ledger.confusion(lead_hours=2.0).tp == 1  # 48 + 2 <= 50
        assert ledger.confusion(lead_hours=3.0).tp == 0

    def test_virr_breakdown_counts_are_consistent(self):
        """virr() terms must reproduce the paper's V / V' identities from
        the ledger's own confusion counts and observed cold fraction."""
        ledger = MigrationLedger(vms_per_server=8.0)
        ledger.alarmed_dimms = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        ledger.failed_dimms = {"a": 9.0, "b": 9.0, "miss": 9.0}
        for path in (
            MitigationPath.LIVE_MIGRATION,
            MitigationPath.MEMORY_MITIGATION,
            MitigationPath.COLD_MIGRATION,
        ):
            ledger.record_path(path)
        counts = ledger.confusion()
        breakdown = ledger.virr()  # default y_c = observed cold fraction
        observed_y_c = ledger.cold_migrations / len(ledger.alarmed_dimms)
        assert breakdown.y_c == pytest.approx(observed_y_c)
        assert breakdown.interruptions_without_prediction == pytest.approx(
            8.0 * (counts.tp + counts.fn)
        )
        assert breakdown.cold_migration_interruptions == pytest.approx(
            8.0 * observed_y_c * (counts.tp + counts.fp)
        )
        assert breakdown.missed_failure_interruptions == pytest.approx(
            8.0 * counts.fn
        )
        assert breakdown.virr == pytest.approx(
            (
                breakdown.interruptions_without_prediction
                - breakdown.interruptions_with_prediction
            )
            / breakdown.interruptions_without_prediction
        )

    def test_simulator_paths_sum_to_alarm_events(self):
        """Every on_alarm resolves to exactly one recorded path — repeat
        alarms on one DIMM keep its first alarm hour but still mitigate."""
        simulator = MigrationSimulator(rng=np.random.default_rng(3))
        simulator.on_alarm(_alarm("d1", 10.0))
        simulator.on_alarm(_alarm("d1", 11.0))  # re-alarm, same DIMM
        simulator.on_alarm(_alarm("d2", 12.0))
        ledger = simulator.ledger
        assert ledger.alarmed_dimms == {"d1": 10.0, "d2": 12.0}
        assert (
            ledger.cold_migrations
            + ledger.live_migrations
            + ledger.memory_mitigations
            == 3
        )
        assert (
            sum(simulator.orchestrator.path_counts.values()) == 3
        )

    def test_empty_ledger_virr_is_zero(self):
        breakdown = MigrationLedger().virr()
        assert breakdown.virr == 0.0
        assert breakdown.interruptions_without_prediction == 0.0
