"""The lifecycle's held-out replay rides ReplayEngine: scores/alarms equal.

The reference here is the retired record-at-a-time serving loop —
``OnlinePredictionService.observe`` over ``iter_stream`` with the
lifecycle's pre-deployment alarm-discard dance.  The new path
(:func:`repro.mlops.lifecycle.replay_held_out` semantics: score from hour
zero, alarm from the split, infinite-horizon alarm manager, batch size 1)
must reproduce the exact same scoring schedule, score values, and alarm
stream.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.lifecycle import replay_held_out
from repro.mlops.serving import MIN_CES_BEFORE_SCORING, RESCORE_INTERVAL_HOURS
from repro.mlops.migration import MigrationSimulator
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.streaming.alarms import AlarmManager
from repro.streaming.replay import ReplayEngine
from repro.telemetry.log_store import iter_stream
from repro.telemetry.records import CERecord, UERecord

THRESHOLD = 0.985


class _EchoModel:
    """Deterministic, feature-dependent scores; logs every scored vector."""

    def __init__(self):
        self.scores_seen: list[float] = []

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        scores = 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))
        self.scores_seen.extend(float(s) for s in scores)
        return scores


def _deploy(platform: str, model) -> ModelRegistry:
    registry = ModelRegistry()
    version = registry.register(
        platform, "echo", model, threshold=THRESHOLD, metrics={"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return registry


def _legacy_replay(simulation, pipeline, split_hour):
    """The pre-PR lifecycle loop, verbatim: returns (service, live alarms)."""
    platform = simulation.platform.name
    model = _EchoModel()
    alarm_system = AlarmSystem()
    service = OnlinePredictionService(
        FeatureStore(pipeline), _deploy(platform, model), alarm_system, platform
    )
    for dimm_id, config in simulation.store.configs.items():
        service.register_config(dimm_id, config)
    live_alarms = []
    for record in iter_stream(simulation.store):
        timestamp = record.timestamp_hours
        live = timestamp >= split_hour
        if isinstance(record, UERecord):
            service.observe(record)
            continue
        alarm = service.observe(record)
        if alarm is not None:
            if live:
                live_alarms.append((alarm.dimm_id, timestamp, alarm.score))
            else:
                alarm_system.acknowledge(alarm.dimm_id)
                alarm_system.alarms.pop()
                state = service._states.get(alarm.dimm_id)
                if state is not None:
                    state.alarmed = False
    return service, model, live_alarms


@pytest.fixture(scope="module")
def purley(purley_sim):
    pipeline = FeaturePipeline()
    pipeline.fit(purley_sim.store)
    return purley_sim, pipeline


class TestLifecycleReplayParity:
    def test_scores_and_alarms_identical_to_observe_loop(self, purley):
        simulation, pipeline = purley
        split_hour = 0.7 * simulation.duration_hours
        service, legacy_model, legacy_alarms = _legacy_replay(
            simulation, pipeline, split_hour
        )

        engine_model = _EchoModel()
        engine = ReplayEngine(
            pipeline,
            engine_model,
            THRESHOLD,
            simulation.platform.name,
            configs=simulation.store.configs,
            labeling=None,
            live_from_hour=0.0,
            alarm_from_hour=split_hour,
            min_ces_before_scoring=MIN_CES_BEFORE_SCORING,
            rescore_interval_hours=RESCORE_INTERVAL_HOURS,
            batch_size=1,
            alarms=AlarmManager(3.0, float("inf")),
            collect_scores=True,
        )
        report = engine.replay(simulation.store)

        assert report.scored == service.scored > 0
        assert engine_model.scores_seen == legacy_model.scores_seen
        engine_alarms = [
            (incident.dimm_id, incident.opened_hour, incident.score)
            for incident in engine.alarms.incidents
        ]
        assert legacy_alarms, "expected the echo model to raise live alarms"
        assert engine_alarms == legacy_alarms

    def test_replay_held_out_feeds_migration_like_the_old_loop(self, purley):
        """Ledger bookkeeping (alarm/UE firsts, rng paths) is unchanged."""
        from repro.evaluation.protocol import ExperimentProtocol

        simulation, pipeline = purley
        protocol = ExperimentProtocol(
            scale=0.15, duration_hours=simulation.duration_hours, seed=7
        )
        split_hour = (
            protocol.sampling.train_fraction * simulation.duration_hours
        )

        _, _, legacy_alarms = _legacy_replay(simulation, pipeline, split_hour)
        legacy_migration = MigrationSimulator(
            rng=np.random.default_rng(protocol.seed)
        )
        for dimm_id, hour, _ in legacy_alarms:
            from repro.mlops.serving import Alarm

            legacy_migration.on_alarm(
                Alarm(
                    timestamp_hours=hour,
                    platform=simulation.platform.name,
                    server_id="",
                    dimm_id=dimm_id,
                    score=0.99,
                    model_version=1,
                )
            )
        for ue in sorted(
            simulation.store.ues, key=lambda record: record.timestamp_hours
        ):
            if ue.timestamp_hours >= split_hour:
                legacy_migration.on_ue(ue.dimm_id, ue.timestamp_hours)

        migration = MigrationSimulator(rng=np.random.default_rng(protocol.seed))
        report = replay_held_out(
            simulation,
            protocol,
            pipeline,
            _EchoModel(),
            THRESHOLD,
            split_hour,
            migration,
        )
        assert report.scored > 0
        assert report.alarms["raised"] == len(legacy_alarms)
        assert migration.ledger.alarmed_dimms == (
            legacy_migration.ledger.alarmed_dimms
        )
        assert migration.ledger.failed_dimms == (
            legacy_migration.ledger.failed_dimms
        )
        assert migration.ledger.cold_migrations == (
            legacy_migration.ledger.cold_migrations
        )
        assert migration.ledger.live_migrations == (
            legacy_migration.ledger.live_migrations
        )
        assert (
            migration.ledger.confusion().f1
            == legacy_migration.ledger.confusion().f1
        )
