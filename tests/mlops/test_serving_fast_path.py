"""Incremental online-scoring fast path: exactness and cache behaviour.

When a new CE lands inside the same sampling bucket as the DIMM's last
scored CE, the service reuses the cached static feature block and
recomputes only the window-dependent blocks.  The fast path must be
invisible: scores, alarms and feature vectors are bit-for-bit identical to
full ``transform_one`` serving.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import iter_stream


class _EchoModel:
    """Score depends on the whole feature vector (catches any drift)."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


def _deploy(platform: str) -> ModelRegistry:
    registry = ModelRegistry()
    version = registry.register(
        platform, "echo", _EchoModel(), threshold=0.985, metrics={"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return registry


def _replay(store, pipeline, bucket_hours: float):
    feature_store = FeatureStore(pipeline)
    service = OnlinePredictionService(
        feature_store,
        _deploy("intel_purley"),
        AlarmSystem(),
        "intel_purley",
        rescore_interval_hours=0.0,
        feature_cache_bucket_hours=bucket_hours,
    )
    for dimm_id, config in store.configs.items():
        service.register_config(dimm_id, config)
    alarms = [
        alarm
        for record in iter_stream(store)
        if (alarm := service.observe(record)) is not None
    ]
    return service, alarms


@pytest.fixture(scope="module")
def fitted(purley_sim):
    pipeline = FeaturePipeline()
    pipeline.fit(purley_sim.store)
    return pipeline


def test_fast_path_scores_and_alarms_are_identical(purley_sim, fitted):
    store = purley_sim.store
    fast, fast_alarms = _replay(store, fitted, bucket_hours=1.0)
    full, full_alarms = _replay(store, fitted, bucket_hours=0.0)
    assert fast.scored == full.scored > 0
    assert fast.fast_path_hits > 0
    assert full.fast_path_hits == 0
    assert [a.__dict__ for a in fast_alarms] == [a.__dict__ for a in full_alarms]


def test_fast_path_vector_matches_full_transform(purley_sim, fitted):
    """serve_online with a cached static block == plain transform_one."""
    store = purley_sim.store
    feature_store = FeatureStore(fitted)
    dimm_id = store.dimm_ids_with_ces()[0]
    config = store.config_for(dimm_id)
    from repro.features.windows import DimmHistory

    history = DimmHistory.from_records(
        dimm_id, store.ces_for_dimm(dimm_id), store.events_for_dimm(dimm_id)
    )
    t = float(history.times[-1])
    full = feature_store.serve_online(history, config, t)
    n_static = len(fitted.static.names())
    cached = feature_store.serve_online(
        history, config, t + 0.01, static_block=full[-n_static:]
    )
    reference = fitted.transform_one(history, config, t + 0.01)
    assert np.array_equal(cached, reference)


def test_new_bucket_refreshes_cache(purley_sim, fitted):
    """CEs in different sampling buckets take the full path."""
    store = purley_sim.store
    service, _ = _replay(store, fitted, bucket_hours=1e-9)
    assert service.fast_path_hits == 0
