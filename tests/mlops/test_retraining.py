"""Tests for drift-triggered retraining."""

import pytest

from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import CiCdPipeline, GatePolicy, ModelRegistry
from repro.mlops.retraining import RetrainingOrchestrator, RetrainingPolicy


@pytest.fixture()
def orchestrator(purley_sim):
    pipeline = FeaturePipeline()
    pipeline.fit(purley_sim.store)
    feature_store = FeatureStore(pipeline)
    registry = ModelRegistry()
    cicd = CiCdPipeline(registry, GatePolicy(min_value=0.0))
    return RetrainingOrchestrator(
        feature_store, registry, cicd,
        RetrainingPolicy(min_hours_between_retrains=100.0),
    ), registry


def test_no_drift_no_retrain(orchestrator, purley_sim):
    orch, _registry = orchestrator
    report = orch.maybe_retrain(
        "intel_purley", purley_sim.store, 1000.0, drifted=False
    )
    assert not report.triggered
    assert "no drift" in report.reason


def test_drift_trains_and_gates_candidate(orchestrator, purley_sim):
    orch, registry = orchestrator
    report = orch.maybe_retrain(
        "intel_purley", purley_sim.store, 1200.0, drifted=True
    )
    assert report.triggered
    assert report.candidate_version is not None
    assert registry.versions("intel_purley")
    # First deployment with a permissive gate should promote.
    assert report.decision is not None and report.decision.promoted


def test_cooldown_blocks_rapid_retraining(orchestrator, purley_sim):
    orch, _registry = orchestrator
    first = orch.maybe_retrain("intel_purley", purley_sim.store, 1200.0, drifted=True)
    assert first.triggered
    second = orch.maybe_retrain("intel_purley", purley_sim.store, 1250.0, drifted=True)
    assert not second.triggered
    assert "cool-down" in second.reason
    third = orch.maybe_retrain("intel_purley", purley_sim.store, 1400.0, drifted=True)
    assert third.triggered
