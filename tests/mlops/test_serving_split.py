"""The ingest/complete split behind the async batcher.

``observe`` is now ``ingest -> score_prepared -> complete``; these tests
pin the halves' contracts: composition equals the one-shot path, gated
records return ``None`` from ``ingest``, and extraction failures degrade
at ingest time so the request never needs a model call.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord, DimmConfigRecord


class _ConstantModel:
    def __init__(self, score):
        self.score = score

    def predict_proba(self, X):
        return np.full(np.asarray(X).shape[0], self.score)


def make_ce(t, dimm="d0"):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )


def make_config(dimm="d0"):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer="A", part_number="pn", capacity_gb=32, data_width=4,
        frequency_mts=2666, chip_process="1y",
    )


@pytest.fixture()
def service_parts():
    store = LogStore()
    store.add_config(make_config())
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    registry = ModelRegistry()
    service = OnlinePredictionService(
        FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
        min_ces_before_scoring=2, rescore_interval_hours=0.0,
    )
    service.register_config("d0", make_config())
    return service, registry


def _deploy(registry, model, threshold=0.5):
    version = registry.register(
        "intel_purley", "const", model, threshold, {}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return version


class TestIngest:
    def test_gated_record_returns_none(self, service_parts):
        service, registry = service_parts
        _deploy(registry, _ConstantModel(0.9))
        assert service.ingest(make_ce(1.0)) is None  # below min history

    def test_no_production_model_returns_none(self, service_parts):
        service, _registry = service_parts
        service.ingest(make_ce(1.0))
        assert service.ingest(make_ce(2.0)) is None
        assert service.skipped_no_model == 1

    def test_prepared_request_carries_features(self, service_parts):
        service, registry = service_parts
        _deploy(registry, _ConstantModel(0.9))
        service.ingest(make_ce(1.0))
        prepared = service.ingest(make_ce(2.0))
        assert prepared is not None
        assert prepared.features is not None
        assert prepared.fallback_score is None
        assert prepared.production.model is not None

    def test_extraction_failure_degrades_at_ingest(self, service_parts):
        service, registry = service_parts
        _deploy(registry, _ConstantModel(0.9))
        service.ingest(make_ce(1.0))

        def boom(*args, **kwargs):
            raise RuntimeError("transform down")

        service._transform = boom
        prepared = service.ingest(make_ce(2.0))
        assert prepared is not None
        assert prepared.fallback_score is not None
        assert service.extract_errors == 1


class TestComposition:
    def test_split_equals_observe(self, service_parts):
        service, registry = service_parts
        _deploy(registry, _ConstantModel(0.9), threshold=0.5)
        reference, ref_registry = service_parts_clone()
        _deploy(ref_registry, _ConstantModel(0.9), threshold=0.5)
        for t in (1.0, 2.0, 3.0):
            ce = make_ce(t)
            via_observe = reference.observe(ce)
            prepared = service.ingest(ce)
            if prepared is None:
                assert via_observe is None
                continue
            alarm = service.complete(
                prepared, service.score_prepared(prepared)
            )
            if via_observe is None:
                assert alarm is None
            else:
                assert alarm is not None
                assert alarm.dimm_id == via_observe.dimm_id
                assert alarm.score == via_observe.score
        assert service.scored == reference.scored

    def test_complete_preserves_fallback_accounting(self, service_parts):
        service, registry = service_parts
        _deploy(registry, _ConstantModel(0.9), threshold=0.5)
        service.ingest(make_ce(1.0))
        prepared = service.ingest(make_ce(2.0))
        prepared.fallback_score = 0.1  # simulate a degraded answer
        service.complete(prepared, prepared.fallback_score)
        # Degraded scores never pollute the staleness ladder's cache.
        assert prepared.state.last_score is None


def service_parts_clone():
    store = LogStore()
    store.add_config(make_config())
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    registry = ModelRegistry()
    service = OnlinePredictionService(
        FeatureStore(pipeline), registry, AlarmSystem(), "intel_purley",
        min_ces_before_scoring=2, rescore_interval_hours=0.0,
    )
    service.register_config("d0", make_config())
    return service, registry
