"""Focused tests of the online prediction service flow."""

import numpy as np
import pytest

from repro.features.pipeline import FeaturePipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord, DimmConfigRecord, UERecord


class _ConstantModel:
    """Scores every sample with a fixed value."""

    def __init__(self, score: float):
        self.score = score

    def predict_proba(self, X) -> np.ndarray:
        return np.full(np.asarray(X).shape[0], self.score)


def make_ce(t, dimm="d0"):
    return CERecord(
        timestamp_hours=t, server_id="s0", dimm_id=dimm, rank=0, bank=0,
        row=1, column=1, devices=(0,), dq_count=1, beat_count=1,
        dq_interval=0, beat_interval=0, error_bit_count=1,
    )


def make_config(dimm="d0"):
    return DimmConfigRecord(
        dimm_id=dimm, server_id="s0", platform="intel_purley",
        manufacturer="A", part_number="pn", capacity_gb=32, data_width=4,
        frequency_mts=2666, chip_process="1y",
    )


@pytest.fixture()
def service_parts():
    store = LogStore()
    store.add_config(make_config())
    pipeline = FeaturePipeline()
    pipeline.fit(store)
    feature_store = FeatureStore(pipeline)
    registry = ModelRegistry()
    alarms = AlarmSystem()
    service = OnlinePredictionService(
        feature_store, registry, alarms, "intel_purley",
        min_ces_before_scoring=2, rescore_interval_hours=0.0,
    )
    service.register_config("d0", make_config())
    return service, registry, alarms


def _deploy(registry, model, threshold=0.5):
    version = registry.register(
        "intel_purley", "const", model, threshold, {"f1": 0.9}
    )
    registry.promote_to_staging(version)
    registry.promote_to_production(version)
    return version


class TestOnlineService:
    def test_no_model_no_alarm(self, service_parts):
        service, _registry, alarms = service_parts
        assert service.observe(make_ce(1.0)) is None
        assert service.observe(make_ce(2.0)) is None
        assert service.skipped_no_model >= 1
        assert not alarms.alarms

    def test_alarm_fires_above_threshold(self, service_parts):
        service, registry, alarms = service_parts
        _deploy(registry, _ConstantModel(0.9), threshold=0.5)
        assert service.observe(make_ce(1.0)) is None  # below min history
        alarm = service.observe(make_ce(2.0))
        assert alarm is not None
        assert alarm.dimm_id == "d0"
        assert alarms.active_count == 1

    def test_no_alarm_below_threshold(self, service_parts):
        service, registry, alarms = service_parts
        _deploy(registry, _ConstantModel(0.1), threshold=0.5)
        service.observe(make_ce(1.0))
        assert service.observe(make_ce(2.0)) is None
        assert service.scored == 1

    def test_alarmed_dimm_not_rescored(self, service_parts):
        service, registry, _alarms = service_parts
        _deploy(registry, _ConstantModel(0.9))
        service.observe(make_ce(1.0))
        assert service.observe(make_ce(2.0)) is not None
        scored_before = service.scored
        assert service.observe(make_ce(3.0)) is None
        assert service.scored == scored_before

    def test_ue_clears_state(self, service_parts):
        service, registry, alarms = service_parts
        _deploy(registry, _ConstantModel(0.9))
        service.observe(make_ce(1.0))
        service.observe(make_ce(2.0))
        ue = UERecord(
            timestamp_hours=3.0, server_id="s0", dimm_id="d0", rank=0,
            bank=0, row=1, column=1, devices=(0,),
        )
        assert service.observe(ue) is None
        assert alarms.active_count == 0

    def test_rescore_interval_rate_limits(self, service_parts):
        service, registry, _alarms = service_parts
        service.rescore_interval_hours = 1.0
        _deploy(registry, _ConstantModel(0.1))
        service.observe(make_ce(1.0))
        service.observe(make_ce(1.5))
        service.observe(make_ce(1.6))  # within the interval: not scored
        assert service.scored == 1

    def test_unknown_record_type_rejected(self, service_parts):
        service, _registry, _alarms = service_parts
        with pytest.raises(TypeError):
            service.observe(object())
