"""Shared fixtures: tiny simulated campaigns reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.protocol import ExperimentProtocol
from repro.features.sampling import SamplingParams
from repro.simulator import (
    FleetConfig,
    k920_platform,
    purley_platform,
    simulate_fleet,
    whitley_platform,
)

TINY_DURATION = 1440.0  # 60 days


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(123)


@pytest.fixture(scope="session")
def purley_sim():
    return simulate_fleet(
        FleetConfig(
            platform=purley_platform(scale=0.15),
            duration_hours=TINY_DURATION,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def whitley_sim():
    return simulate_fleet(
        FleetConfig(
            platform=whitley_platform(scale=0.3),
            duration_hours=TINY_DURATION,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def k920_sim():
    return simulate_fleet(
        FleetConfig(
            platform=k920_platform(scale=0.2),
            duration_hours=TINY_DURATION,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def tiny_study(purley_sim, whitley_sim, k920_sim):
    return {
        "intel_purley": purley_sim,
        "intel_whitley": whitley_sim,
        "k920": k920_sim,
    }


@pytest.fixture(scope="session")
def tiny_protocol():
    return ExperimentProtocol(
        scale=0.15,
        duration_hours=TINY_DURATION,
        seed=7,
        sampling=SamplingParams(max_samples_per_dimm=10),
    )
