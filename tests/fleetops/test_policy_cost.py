"""Policy engine, action scheduler, and cost model unit behaviour."""

import pytest

from repro.fleetops.cost import ActionCosts, CostModel, combine_summaries
from repro.fleetops.policy import (
    ActionBudget,
    MitigationAction,
    MitigationPolicyConfig,
    PolicyEngine,
)
from repro.streaming.alarms import AlarmManager, Incident

LEAD = 3.0
WINDOW = 100.0


def _incident(dimm: str, hour: float, score: float = 0.99) -> Incident:
    return Incident(dimm_id=dimm, opened_hour=hour, score=score)


def _engine(**kwargs) -> PolicyEngine:
    defaults = dict(
        policy=MitigationPolicyConfig(
            vm_migrate_score=0.95, bank_spare_score=0.80
        ),
        budget=ActionBudget(window_hours=24.0, vm_migrate=1, bank_spare=1,
                            page_offline=2),
        seed=11,
    )
    defaults.update(kwargs)
    return PolicyEngine(**defaults)


class TestPolicyTiering:
    def test_score_tiers_select_the_rung(self):
        policy = MitigationPolicyConfig(
            vm_migrate_score=0.95, bank_spare_score=0.80
        )
        assert policy.action_for(0.99) is MitigationAction.VM_MIGRATE
        assert policy.action_for(0.85) is MitigationAction.BANK_SPARE
        assert policy.action_for(0.5) is MitigationAction.PAGE_OFFLINE

    def test_param_validation(self):
        with pytest.raises(ValueError, match="unknown policy keys"):
            MitigationPolicyConfig.from_params({"nope": 1})
        with pytest.raises(ValueError, match="bank_spare_score <="):
            MitigationPolicyConfig.from_params(
                {"vm_migrate_score": 0.5, "bank_spare_score": 0.9}
            )
        with pytest.raises(ValueError, match="unknown budget keys"):
            ActionBudget.from_params({"vm_migrate": 2, "typo": 1})
        with pytest.raises(ValueError, match="window_hours"):
            ActionBudget.from_params({"window_hours": 0})
        with pytest.raises(ValueError, match="unknown cost keys"):
            ActionCosts.from_params({"vm_migration": 1.0, "typo": 2})


class TestScheduler:
    def test_budget_exhaustion_falls_back_to_cheaper_rung(self):
        engine = _engine()
        first = engine.on_incident("p", _incident("d1", 1.0))
        second = engine.on_incident("p", _incident("d2", 2.0))
        assert first.action is MitigationAction.VM_MIGRATE
        assert first.executed and first.executed_hour == 1.0
        # vm_migrate budget (1/window) is spent: d2 falls back.
        assert second.requested is MitigationAction.VM_MIGRATE
        assert second.action is MitigationAction.BANK_SPARE
        assert engine.fallbacks == 1

    def test_full_windows_queue_and_drain_at_next_window_start(self):
        engine = _engine()
        hours = [1.0, 2.0, 3.0, 4.0, 5.0]
        actions = [
            engine.on_incident("p", _incident(f"d{i}", hour))
            for i, hour in enumerate(hours)
        ]
        # capacity in window 0: 1 vm_migrate + 1 bank_spare + 2 page_offline
        executed_now = [a for a in actions if a.executed]
        assert len(executed_now) == 4
        queued = [a for a in actions if not a.executed]
        assert len(queued) == 1
        assert engine.scheduler.pending() == 1
        # the queued action runs at the start of the next window
        engine.advance(25.0)
        assert queued[0].executed
        assert queued[0].executed_hour == 24.0
        assert queued[0].wait_hours == pytest.approx(24.0 - 5.0)
        assert engine.scheduler.pending() == 0

    def test_queued_actions_respect_later_window_budgets(self):
        engine = _engine(budget=ActionBudget(
            window_hours=10.0, vm_migrate=1, bank_spare=0, page_offline=0
        ))
        engine.on_incident("p", _incident("d0", 1.0))  # consumes window 0
        queued = [
            engine.on_incident("p", _incident(f"d{i}", 2.0 + i))
            for i in range(1, 3)
        ]
        engine.advance(100.0)
        # one per window: starts of windows 1 and 2
        assert [a.executed_hour for a in queued] == [10.0, 20.0]

    def test_determinism_across_runs(self):
        def run():
            engine = _engine()
            for i in range(12):
                engine.on_incident("p", _incident(f"d{i}", float(i)))
            engine.advance(200.0)
            return [
                (a.dimm_id, a.action.value, a.executed_hour, a.success)
                for a in engine.actions.values()
            ]

        assert run() == run()

    def test_summary_counts(self):
        engine = _engine()
        for i in range(5):
            engine.on_incident("p", _incident(f"d{i}", 1.0 + i))
        summary = engine.summary()
        assert summary["requested"] == 5
        assert summary["executed"] == 4
        assert summary["pending"] == 1
        assert sum(summary["by_action"].values()) == 4


class TestCostModel:
    def _settled(self, protect_success: bool):
        alarms = AlarmManager(LEAD, WINDOW)
        engine = _engine(
            policy=MitigationPolicyConfig(
                vm_migrate_score=0.0, bank_spare_score=0.0
            ),
            budget=ActionBudget(window_hours=1000.0, vm_migrate=10,
                                bank_spare=10, page_offline=10),
        )
        # caught UE with enough lead
        incident = alarms.on_alarm("caught", 10.0, 0.99)
        action = engine.on_incident("p", incident)
        action.success = protect_success  # pin the drawn outcome
        alarms.on_ue("caught", 10.0 + LEAD + 1.0)
        # false alarm
        fp_incident = alarms.on_alarm("noise", 20.0, 0.99)
        engine.on_incident("p", fp_incident)
        # missed UE
        alarms.on_ue("missed", 60.0)
        alarms.finalize(end_hour=1000.0)
        model = CostModel(ActionCosts())
        return model.settle("p", alarms, engine, live_from_hour=0.0)

    def test_protected_tp_avoids_interruption(self):
        summary, ledger = self._settled(protect_success=True)
        assert summary.ue_dimms == 2
        assert summary.protected_dimms == 1
        assert summary.missed_dimms == 1
        assert summary.dispositions == {
            "tp": 1, "late": 0, "fp": 1, "censored": 0,
        }
        costs = ActionCosts()
        assert summary.interruption_cost == costs.interruption_cost  # missed
        assert summary.baseline_cost == 2 * costs.interruption_cost
        assert summary.virr.virr == pytest.approx(0.5)  # 1 of 2 UEs saved
        # ledger mirrors the same populations
        assert set(ledger.alarmed_dimms) == {"caught", "noise"}
        assert set(ledger.failed_dimms) == {"caught", "missed"}
        assert ledger.confusion().tp == 1

    def test_failed_action_still_interrupts(self):
        summary, _ = self._settled(protect_success=False)
        assert summary.protected_dimms == 0
        assert summary.caught_unprotected_dimms == 1
        costs = ActionCosts()
        assert summary.interruption_cost == 2 * costs.interruption_cost
        assert summary.virr.virr == pytest.approx(0.0)
        assert summary.savings < 0  # actions spent, nothing saved

    def test_combine_summaries_sums_terms(self):
        first, _ = self._settled(protect_success=True)
        second, _ = self._settled(protect_success=False)
        fleet = combine_summaries([first, second])
        assert fleet.ue_dimms == first.ue_dimms + second.ue_dimms
        assert fleet.action_cost == pytest.approx(
            first.action_cost + second.action_cost
        )
        assert fleet.baseline_cost == pytest.approx(
            first.baseline_cost + second.baseline_cost
        )
        assert fleet.virr.interruptions_without_prediction == pytest.approx(
            first.virr.interruptions_without_prediction
            + second.virr.interruptions_without_prediction
        )
        # fleet VIRR = saved fraction over the union population
        assert fleet.virr.virr == pytest.approx(0.25)

    def test_late_execution_does_not_protect(self):
        alarms = AlarmManager(LEAD, WINDOW)
        engine = _engine(
            policy=MitigationPolicyConfig(
                vm_migrate_score=0.0, bank_spare_score=0.0
            ),
            budget=ActionBudget(window_hours=5.0, vm_migrate=0,
                                bank_spare=0, page_offline=1),
        )
        engine.on_incident("p", alarms.on_alarm("early", 1.0, 0.99))
        # second incident queues (window full) and executes at hour 5.0 —
        # its UE at 6.0 beats the required lead (5.0 + 3.0 > 6.0).
        incident = alarms.on_alarm("d", 2.0, 0.99)
        action = engine.on_incident("p", incident)
        assert not action.executed
        alarms.on_ue("d", 6.0)
        engine.advance(6.0)
        assert action.executed and action.executed_hour == 5.0
        action.success = True
        alarms.finalize(end_hour=1000.0)
        summary, _ = CostModel().settle("p", alarms, engine, 0.0)
        assert summary.dispositions["tp"] == 1  # alarm itself led in time
        assert summary.protected_dimms == 0  # but the action did not
