"""Fleet replay engine: merged-pass parity, policy wiring, scenario."""

import numpy as np
import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.runner import RunContext, run_spec
from repro.experiments.spec import RunSpec
from repro.features.labeling import LabelingParams
from repro.features.pipeline import FeaturePipeline
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import ActionBudget, PolicyEngine
from repro.fleetops.stream import UndecodedStreamError, merge_fleet_streams
from repro.streaming.replay import ReplayEngine

THRESHOLD = 0.985


class _EchoModel:
    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return 1.0 / (1.0 + np.exp(-X.sum(axis=1) / 100.0))


@pytest.fixture(scope="module")
def fitted_fleet(tiny_study):
    pipelines = {}
    for name, simulation in tiny_study.items():
        pipeline = FeaturePipeline()
        pipeline.fit(simulation.store)
        pipelines[name] = pipeline
    return pipelines


def _assignments(tiny_study, pipelines, live_fraction=0.6):
    model = _EchoModel()
    assignments = {}
    for name, simulation in tiny_study.items():
        assignments[name] = ServingAssignment(
            platform=name,
            model_name="echo",
            train_platform=name,
            model=model,
            threshold=THRESHOLD,
            pipeline=pipelines[name],
            configs=simulation.store.configs,
            live_from_hour=live_fraction * simulation.duration_hours,
        )
    return assignments


def _fleet_replay(tiny_study, pipelines, stream_kwargs=None, **kwargs):
    stores = {name: sim.store for name, sim in tiny_study.items()}
    assignments = _assignments(tiny_study, pipelines)
    defaults = dict(
        labeling=LabelingParams(),
        policy=PolicyEngine(budget=ActionBudget(), seed=7),
        rescore_interval_hours=0.0,
        batch_size=64,
        collect_scores=True,
    )
    defaults.update(kwargs)
    engine = FleetReplayEngine(assignments, **defaults)
    stream = merge_fleet_streams(stores, **(stream_kwargs or {}))
    report = engine.replay(stream, stores)
    return engine, report, assignments


class TestMergedParity:
    """The acceptance bar: merged-fleet per-DIMM scores are bit-for-bit
    the single-platform streaming path's scores."""

    @pytest.fixture(scope="class")
    def merged(self, tiny_study, fitted_fleet):
        return _fleet_replay(tiny_study, fitted_fleet)

    @pytest.fixture(scope="class")
    def singles(self, tiny_study, fitted_fleet):
        reports = {}
        engines = {}
        for name, simulation in tiny_study.items():
            engine = ReplayEngine(
                fitted_fleet[name],
                _EchoModel(),
                THRESHOLD,
                name,
                configs=simulation.store.configs,
                labeling=LabelingParams(),
                live_from_hour=0.6 * simulation.duration_hours,
                rescore_interval_hours=0.0,
                batch_size=64,
                collect_scores=True,
            )
            reports[name] = engine.replay(simulation.store)
            engines[name] = engine
        return engines, reports

    def test_per_dimm_scores_bit_for_bit(self, merged, singles):
        fleet_engine, _, _ = merged
        single_engines, _ = singles
        for name, single in single_engines.items():
            assert fleet_engine.score_logs[name] == single.score_log
            assert len(single.score_log) > 0

    def test_per_platform_reports_match_single_runs(self, merged, singles):
        _, fleet_report, _ = merged
        _, single_reports = singles
        for name, single in single_reports.items():
            platform_report = fleet_report.platforms[name]
            assert platform_report["scored"] == single.scored
            assert platform_report["scored_dimms"] == single.scored_dimms
            assert platform_report["ces"] == single.ces
            assert platform_report["ues"] == single.ues
            assert platform_report["fallbacks"] == single.fallbacks
            assert platform_report["alarms"] == single.alarms

    def test_fleet_totals(self, merged, singles):
        _, fleet_report, _ = merged
        _, single_reports = singles
        assert fleet_report.events == sum(
            r.events for r in single_reports.values()
        )
        assert fleet_report.scored == sum(
            r.scored for r in single_reports.values()
        )

    def test_replay_is_deterministic(self, tiny_study, fitted_fleet, merged):
        _, first_report, _ = merged
        _, second_report, _ = _fleet_replay(tiny_study, fitted_fleet)
        assert second_report.costs == first_report.costs
        assert second_report.fleet_cost == first_report.fleet_cost
        assert second_report.actions == first_report.actions

    def test_batched_engine_matches_per_event(
        self, tiny_study, fitted_fleet, merged
    ):
        batched_engine, batched_report, _ = merged
        assert batched_report.engine == "batched"
        pe_engine, pe_report, _ = _fleet_replay(
            tiny_study, fitted_fleet, engine="per_event"
        )
        assert pe_report.engine == "per_event"
        for name in tiny_study:
            assert (
                batched_engine.score_logs[name] == pe_engine.score_logs[name]
            )
            assert (
                batched_report.platforms[name]["alarms"]
                == pe_report.platforms[name]["alarms"]
            )
        assert batched_report.costs == pe_report.costs
        assert batched_report.actions == pe_report.actions
        assert batched_report.fleet_cost == pe_report.fleet_cost
        assert set(batched_report.stage_seconds) == {
            "ingest", "features", "predict", "alarms"
        }

    def test_per_event_engine_rejects_manifest_stream(
        self, tiny_study, fitted_fleet
    ):
        stores = {name: sim.store for name, sim in tiny_study.items()}
        assignments = _assignments(tiny_study, fitted_fleet)
        engine = FleetReplayEngine(
            assignments,
            labeling=LabelingParams(),
            engine="per_event",
        )
        manifest = merge_fleet_streams(stores, decode_payloads=False)
        assert not manifest.decoded
        with pytest.raises(ValueError, match="decoded"):
            engine.replay(manifest, stores)

    def test_batched_engine_accepts_manifest_stream(
        self, tiny_study, fitted_fleet, merged
    ):
        _, decoded_report, _ = merged
        _, manifest_report, _ = _fleet_replay(
            tiny_study, fitted_fleet, stream_kwargs={"decode_payloads": False}
        )
        assert manifest_report.events == decoded_report.events
        assert manifest_report.costs == decoded_report.costs
        assert manifest_report.fleet_cost == decoded_report.fleet_cost

    def test_costs_cover_every_platform_plus_fleet(self, merged):
        engine, report, assignments = merged
        assert set(report.costs) == set(assignments)
        assert set(engine.cost_summaries) == set(assignments) | {"fleet"}
        fleet = report.fleet_cost
        assert fleet["ue_dimms"] == sum(
            c["ue_dimms"] for c in report.costs.values()
        )
        total_actions = sum(
            sum(c["actions"].values()) for c in report.costs.values()
        )
        assert sum(fleet["actions"].values()) == total_actions

    def test_actions_follow_incidents(self, merged):
        engine, report, _ = merged
        raised = sum(
            p["alarms"]["raised"] for p in report.platforms.values()
        )
        assert report.actions["requested"] == raised > 0
        assert (
            report.actions["executed"] + report.actions["pending"] == raised
        )

    def test_unassigned_platform_rejected(self, tiny_study, fitted_fleet):
        stores = {name: sim.store for name, sim in tiny_study.items()}
        assignments = _assignments(tiny_study, fitted_fleet)
        assignments.pop("k920")
        engine = FleetReplayEngine(assignments, labeling=LabelingParams())
        stream = merge_fleet_streams(stores)
        with pytest.raises(ValueError, match="unassigned platforms"):
            engine.replay(stream, stores)

    def test_per_event_rejects_undecoded_stream(self, tiny_study, fitted_fleet):
        """The manifest-only stream is a batched-engine contract; feeding
        it to the per-event walk raises the typed error, not an AttributeError
        deep in the loop."""
        stores = {name: sim.store for name, sim in tiny_study.items()}
        assignments = _assignments(tiny_study, fitted_fleet)
        engine = FleetReplayEngine(
            assignments, labeling=LabelingParams(), engine="per_event"
        )
        stream = merge_fleet_streams(stores, decode_payloads=False)
        assert not stream.decoded
        with pytest.raises(UndecodedStreamError, match="decode_payloads=True"):
            engine.replay(stream, stores)
        # And the same stream is exactly what the batched engine wants.
        batched = FleetReplayEngine(
            assignments, labeling=LabelingParams(), engine="batched"
        )
        report = batched.replay(stream, stores)
        assert report.events == stream.events


class TestFleetOpsScenario:
    @pytest.fixture(scope="class")
    def cached_context(self, tiny_study, tiny_protocol):
        spec = RunSpec(
            scenario="fleet_ops",
            platforms=("intel_purley", "k920"),
            models=("lightgbm",),
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
            max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
            params={
                "assignments": {"k920": {"train_platform": "intel_purley"}},
                "batch_size": 64,
            },
        )
        cache = ArtifactCache()
        context = RunContext(spec, cache=cache)
        for platform in spec.platforms:
            cache.put_simulation(
                context.simulation_key(platform), tiny_study[platform]
            )
        return spec, cache, tiny_protocol

    @pytest.fixture(scope="class")
    def result(self, cached_context):
        spec, cache, protocol = cached_context
        return run_spec(spec, protocol=protocol, cache=cache)

    def test_cells_carry_cross_architecture_assignment(self, result):
        own = result.cell("intel_purley", "intel_purley", "lightgbm")
        crossed = result.cell("intel_purley", "k920", "lightgbm")
        assert own.result.supported and crossed.result.supported
        assert crossed.train_platform == "intel_purley"
        assert result.any_nonfinite() == []

    def test_extras_report_shape(self, result):
        payload = result.extras["fleet_ops"]
        report = payload["report"]
        assert set(report["platforms"]) == {"intel_purley", "k920"}
        assert report["events"] > 0 and report["scored"] > 0
        for platform_report in report["platforms"].values():
            assert "alarms" in platform_report
        assert set(report["costs"]) == {"intel_purley", "k920"}
        assert "fleet_cost" in report and "savings" in report["fleet_cost"]
        assert payload["assignments"]["k920"]["train_platform"] == (
            "intel_purley"
        )

    def test_scenario_is_deterministic(self, cached_context, result):
        spec, cache, protocol = cached_context
        again = run_spec(spec, protocol=protocol, cache=cache)
        assert (
            again.extras["fleet_ops"]["report"]["costs"]
            == result.extras["fleet_ops"]["report"]["costs"]
        )
        assert (
            again.extras["fleet_ops"]["report"]["actions"]
            == result.extras["fleet_ops"]["report"]["actions"]
        )

    def test_result_round_trips_to_json(self, result, tmp_path):
        import json

        out = tmp_path / "fleet.json"
        result.to_json_file(out)
        payload = json.loads(out.read_text())
        assert "fleet_ops" in payload["extras"]

    def test_unsupported_model_marks_cell(self, tiny_study, tiny_protocol):
        spec = RunSpec(
            scenario="fleet_ops",
            platforms=("intel_purley", "intel_whitley"),
            models=("risky_ce_pattern",),  # purley-only heuristic
            scale=tiny_protocol.scale,
            hours=tiny_protocol.duration_hours,
            seed=tiny_protocol.seed,
            max_samples_per_dimm=tiny_protocol.sampling.max_samples_per_dimm,
        )
        cache = ArtifactCache()
        context = RunContext(spec, cache=cache)
        for platform in spec.platforms:
            cache.put_simulation(
                context.simulation_key(platform), tiny_study[platform]
            )
        result = run_spec(spec, protocol=tiny_protocol, cache=cache)
        whitley = result.cell(
            "intel_whitley", "intel_whitley", "risky_ce_pattern"
        )
        assert not whitley.result.supported
        assert "intel_whitley" in result.extras["fleet_ops"]["unsupported"]
        purley = result.cell("intel_purley", "intel_purley", "risky_ce_pattern")
        assert purley.result.supported

    def test_bad_assignment_rejected(self, tiny_protocol):
        from repro.fleetops.scenario import resolve_assignments

        spec = RunSpec(
            scenario="fleet_ops",
            platforms=("intel_purley",),
            params={"assignments": {"k920": {}}},
        )
        with pytest.raises(ValueError, match="not in spec.platforms"):
            resolve_assignments(spec)
        spec = RunSpec(
            scenario="fleet_ops",
            platforms=("intel_purley", "k920"),
            params={"assignments": {"k920": {"train_platform": "nope"}}},
        )
        with pytest.raises(ValueError, match="train_platform"):
            resolve_assignments(spec)
        spec = RunSpec(
            scenario="fleet_ops",
            platforms=("intel_purley",),
            params={"assignments": {"intel_purley": {"typo": 1}}},
        )
        with pytest.raises(ValueError, match="unknown keys"):
            resolve_assignments(spec)
