"""Merged heterogeneous stream: global order and per-platform parity."""

import numpy as np

from repro.fleetops.stream import CE_TAG, EVENT_TAG, UE_TAG, merge_fleet_streams
from repro.telemetry.columnar import CE_T, EV_T, UE_T


def _single_platform_order(store):
    """The (time, kind) sequence ReplayEngine replays for one platform."""
    columns = store.columns
    ce = columns.ces.rows()
    ue = columns.ues.rows()
    ev = columns.events.rows()
    times = np.concatenate([ce[:, CE_T], ue[:, UE_T], ev[:, EV_T]])
    tags = np.empty(times.size, dtype=np.int8)
    tags[: len(ce)] = CE_TAG
    tags[len(ce): len(ce) + len(ue)] = UE_TAG
    tags[len(ce) + len(ue):] = EVENT_TAG
    order = np.lexsort((tags, times))
    return [(float(times[i]), int(tags[i])) for i in order]


class TestMergeFleetStreams:
    def test_counts_and_total_length(self, tiny_study):
        stores = {name: sim.store for name, sim in tiny_study.items()}
        stream = merge_fleet_streams(stores)
        assert stream.platforms == tuple(stores)
        total = 0
        for platform, store in stores.items():
            counts = stream.counts[platform]
            assert counts["ces"] == len(store.ces)
            assert counts["ues"] == len(store.ues)
            assert counts["events"] == len(store.events)
            total += sum(counts.values())
        assert len(stream) == stream.events == total
        assert len(stream.tags) == len(stream.plats) == len(stream.rows)

    def test_global_order_is_time_then_kind(self, tiny_study):
        stores = {name: sim.store for name, sim in tiny_study.items()}
        stream = merge_fleet_streams(stores)
        previous = (-np.inf, -1)
        for tag, row in zip(stream.tags, stream.rows):
            key = (row[0], tag)
            assert key >= previous
            previous = key

    def test_per_platform_subsequence_matches_single_platform_merge(
        self, tiny_study
    ):
        """Extracting one platform's events from the merged stream must
        reproduce that platform's own ReplayEngine order exactly — the
        invariant behind merged-vs-single score parity."""
        stores = {name: sim.store for name, sim in tiny_study.items()}
        stream = merge_fleet_streams(stores)
        for index, (platform, store) in enumerate(stores.items()):
            subsequence = [
                (row[0], tag)
                for tag, p, row in zip(stream.tags, stream.plats, stream.rows)
                if p == index
            ]
            assert subsequence == _single_platform_order(store)

    def test_end_hours_are_per_platform_maxima(self, tiny_study):
        stores = {name: sim.store for name, sim in tiny_study.items()}
        stream = merge_fleet_streams(stores)
        for index, platform in enumerate(stream.platforms):
            last = max(
                row[0]
                for p, row in zip(stream.plats, stream.rows)
                if p == index
            )
            assert stream.end_hours[platform] == last

    def test_empty_input_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="at least one platform"):
            merge_fleet_streams({})
