"""Tests for the risky-CE-pattern baseline and heuristics."""

import numpy as np
import pytest

from repro.baselines import (
    AlwaysNegativeModel,
    CeCountThresholdModel,
    RULE_FEATURES,
    RiskyCeParams,
    RiskyCePatternModel,
)

FEATURES = list(RULE_FEATURES) + [
    "temporal_ce_count_5d",
    "static_part_number_code",
]


def synthetic_rule_data(n=400, seed=0):
    """Positives concentrate where the risky stride-4 indicator is high."""
    rng = np.random.default_rng(seed)
    X = np.zeros((n, len(FEATURES)))
    risky = rng.random(n) < 0.3
    X[:, 0] = np.where(risky, rng.integers(2, 20, n), 0)  # risky count
    X[:, 2] = rng.integers(1, 3, n)  # max dq count
    X[:, FEATURES.index("temporal_ce_count_5d")] = rng.integers(1, 50, n)
    X[:, -1] = rng.integers(0, 3, n)  # part number code
    y = (risky & (rng.random(n) < 0.6)).astype(int)
    return X, y


class TestRiskyCePattern:
    def test_requires_rule_features(self):
        with pytest.raises(ValueError, match="rule features"):
            RiskyCePatternModel(["foo", "static_part_number_code"])

    def test_requires_group_feature(self):
        with pytest.raises(ValueError, match="group feature"):
            RiskyCePatternModel(list(RULE_FEATURES))

    def test_supports_purley_only(self):
        assert RiskyCePatternModel.supports("intel_purley")
        assert not RiskyCePatternModel.supports("intel_whitley")
        assert not RiskyCePatternModel.supports("k920")

    def test_mines_and_predicts_risky_rule(self):
        X, y = synthetic_rule_data()
        model = RiskyCePatternModel(FEATURES).fit(X, y)
        assert model.rule_count > 0
        predictions = model.predict(X)
        # The mined rules should capture the bulk of the positives while
        # staying far above the ~18% base rate in precision.
        recall = predictions[y == 1].mean()
        precision = y[predictions == 1].mean()
        assert recall > 0.7
        assert precision > 1.3 * y.mean()

    def test_no_rules_when_no_signal(self):
        rng = np.random.default_rng(0)
        X = np.zeros((200, len(FEATURES)))
        X[:, -1] = rng.integers(0, 3, 200)
        y = rng.integers(0, 2, 200)  # labels independent of features
        model = RiskyCePatternModel(
            FEATURES, params=RiskyCeParams(min_rule_precision=0.99)
        ).fit(X, y)
        assert model.predict(X).sum() == 0

    def test_predict_proba_is_binary(self):
        X, y = synthetic_rule_data()
        model = RiskyCePatternModel(FEATURES).fit(X, y)
        assert set(np.unique(model.predict_proba(X))) <= {0.0, 1.0}

    def test_rule_scores_are_precisions(self):
        X, y = synthetic_rule_data()
        model = RiskyCePatternModel(FEATURES).fit(X, y)
        scores = model.rule_scores(X)
        assert scores.max() <= 1.0
        assert (scores[model.predict(X) == 1] > 0).all()

    def test_fixed_operating_point_flag(self):
        assert RiskyCePatternModel.fixed_operating_point


class TestHeuristics:
    def test_ce_count_threshold_learns(self):
        rng = np.random.default_rng(0)
        X = np.zeros((300, len(FEATURES)))
        counts = rng.integers(0, 100, 300)
        X[:, FEATURES.index("temporal_ce_count_5d")] = counts
        y = (counts > 60).astype(int)
        model = CeCountThresholdModel(FEATURES).fit(X, y)
        assert model.threshold_ is not None
        predictions = model.predict(X)
        assert (predictions == y).mean() > 0.9

    def test_requires_feature(self):
        with pytest.raises(ValueError):
            CeCountThresholdModel(["other"])

    def test_predict_before_fit_raises(self):
        model = CeCountThresholdModel(FEATURES)
        with pytest.raises(RuntimeError):
            model.predict_proba(np.zeros((1, len(FEATURES))))

    def test_always_negative(self):
        model = AlwaysNegativeModel().fit(np.zeros((3, 2)), np.zeros(3))
        assert model.predict(np.zeros((3, 2))).sum() == 0
