"""Bit-accurate tests of the Chipkill-class Reed-Solomon code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.hsiao import DecodeStatus
from repro.ecc.reed_solomon import (
    ReedSolomonChipkill,
    burst_to_symbol_codewords,
    symbol_codewords_to_burst,
)

CODE = ReedSolomonChipkill()


def random_codeword(seed: int):
    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(0, 256, size=CODE.k)]
    return CODE.encode(data)


def test_encode_appends_two_checks():
    codeword = random_codeword(0)
    assert len(codeword) == 18
    assert CODE.syndromes(codeword) == (0, 0)


def test_clean_decode():
    codeword = random_codeword(1)
    result = CODE.decode(codeword)
    assert result.status is DecodeStatus.CLEAN


@given(st.integers(0, 2**32 - 1), st.integers(0, 17), st.integers(1, 255))
@settings(max_examples=100, deadline=None)
def test_any_single_symbol_error_is_corrected(seed, position, error):
    codeword = list(random_codeword(seed))
    original = tuple(codeword)
    codeword[position] ^= error
    result = CODE.decode(codeword)
    assert result.status is DecodeStatus.CORRECTED
    assert result.corrected_symbol == position
    assert result.symbols == original


def test_chip_failure_is_one_symbol():
    """A whole x4-chip failure (one full symbol) is exactly correctable."""
    codeword = list(random_codeword(2))
    codeword[7] = codeword[7] ^ 0xFF  # every bit of device 7's pair
    result = CODE.decode(codeword)
    assert result.status is DecodeStatus.CORRECTED


def test_rejects_wrong_data_length():
    with pytest.raises(ValueError):
        CODE.encode([0] * 17)
    with pytest.raises(ValueError):
        CODE.syndromes([0] * 17)


def test_invalid_n():
    with pytest.raises(ValueError):
        ReedSolomonChipkill(n=2)


def test_burst_symbol_roundtrip():
    rng = np.random.default_rng(5)
    matrix = rng.integers(0, 2, size=(8, 72), dtype=np.uint8)
    codewords = burst_to_symbol_codewords(matrix)
    assert len(codewords) == 4
    assert np.array_equal(symbol_codewords_to_burst(codewords), matrix)


def test_burst_split_maps_device_to_symbol():
    matrix = np.zeros((8, 72), dtype=np.uint8)
    matrix[0, 4 * 7] = 1  # device 7, beat 0, dq 0
    matrix[1, 4 * 7 + 3] = 1  # device 7, beat 1, dq 3
    codewords = burst_to_symbol_codewords(matrix)
    assert codewords[0][7] == 0b1000_0001
    assert all(codewords[0][d] == 0 for d in range(18) if d != 7)


def test_two_devices_same_pair_is_detected_or_miscorrected_not_clean():
    codeword = list(random_codeword(7))
    codeword[3] ^= 0x5A
    codeword[11] ^= 0xA5
    result = CODE.decode(codeword)
    assert result.status is not DecodeStatus.CLEAN
