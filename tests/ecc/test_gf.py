"""Field-axiom tests for GF(2^m)."""

import pytest
from hypothesis import given, strategies as st

from repro.ecc.gf import GF2m, gf16, gf256

elements16 = st.integers(0, 15)
elements256 = st.integers(0, 255)


def test_unsupported_degree_rejected():
    with pytest.raises(ValueError):
        GF2m(5)


def test_shared_instances_are_cached():
    assert gf16() is gf16()
    assert gf256() is gf256()


def test_addition_is_xor():
    f = gf16()
    assert f.add(0b1010, 0b0110) == 0b1100


def test_zero_has_no_inverse():
    with pytest.raises(ZeroDivisionError):
        gf16().inv(0)
    with pytest.raises(ZeroDivisionError):
        gf256().log_alpha(0)


def test_out_of_field_elements_rejected():
    with pytest.raises(ValueError):
        gf16().mul(16, 1)


@given(elements16, elements16)
def test_gf16_mul_commutes(a, b):
    f = gf16()
    assert f.mul(a, b) == f.mul(b, a)


@given(elements16, elements16, elements16)
def test_gf16_mul_associates(a, b, c):
    f = gf16()
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))


@given(elements16, elements16, elements16)
def test_gf16_distributes(a, b, c):
    f = gf16()
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@given(st.integers(1, 15))
def test_gf16_inverse_is_two_sided(a):
    f = gf16()
    assert f.mul(a, f.inv(a)) == 1
    assert f.div(a, a) == 1


@given(st.integers(1, 255))
def test_gf256_inverse(a):
    f = gf256()
    assert f.mul(a, f.inv(a)) == 1


@given(st.integers(0, 510))
def test_alpha_powers_cycle(e):
    f = gf256()
    assert f.pow_alpha(e) == f.pow_alpha(e + 255)


@given(st.integers(1, 255))
def test_log_inverts_pow(a):
    f = gf256()
    assert f.pow_alpha(f.log_alpha(a)) == a


def test_alpha_generates_whole_group():
    f = gf16()
    powers = {f.pow_alpha(i) for i in range(15)}
    assert powers == set(range(1, 16))


def test_poly_eval_horner():
    f = gf16()
    # p(x) = x^2 + x + 1 at x=2 over GF(16): 4 ^ 2 ^ 1 = 7
    assert f.poly_eval([1, 1, 1], 2) == 7
