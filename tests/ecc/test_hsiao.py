"""Bit-accurate tests of the (72, 64) Hsiao SEC-DED code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.hsiao import DecodeStatus, HsiaoSecDed, random_data_word

CODE = HsiaoSecDed()


def encode_random(seed: int):
    rng = np.random.default_rng(seed)
    data = random_data_word(rng)
    return data, CODE.encode(data)


def test_codeword_length():
    data, codeword = encode_random(0)
    assert codeword.shape == (72,)
    assert np.array_equal(codeword[:64], data)


def test_clean_decode():
    data, codeword = encode_random(1)
    result = CODE.decode(codeword)
    assert result.status is DecodeStatus.CLEAN
    assert np.array_equal(result.data, data)


@given(st.integers(0, 2**32 - 1), st.integers(0, 71))
@settings(max_examples=80, deadline=None)
def test_every_single_bit_error_is_corrected(seed, position):
    data, codeword = encode_random(seed)
    corrupted = codeword.copy()
    corrupted[position] ^= 1
    result = CODE.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.corrected_position == position
    assert np.array_equal(result.data, data)


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 71),
    st.integers(0, 71),
)
@settings(max_examples=80, deadline=None)
def test_every_double_bit_error_is_detected(seed, p1, p2):
    if p1 == p2:
        return
    _, codeword = encode_random(seed)
    corrupted = codeword.copy()
    corrupted[p1] ^= 1
    corrupted[p2] ^= 1
    result = CODE.decode(corrupted)
    assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE


def test_whole_nibble_error_not_miscorrected_to_clean():
    # A failed x4 device flips up to 4 bits in one beat; SEC-DED must not
    # report CLEAN (3/4-bit patterns may alias to CORRECTED, never CLEAN).
    _, codeword = encode_random(3)
    corrupted = codeword.copy()
    corrupted[0:4] ^= 1
    result = CODE.decode(corrupted)
    assert result.status is not DecodeStatus.CLEAN


def test_decode_rejects_wrong_length():
    with pytest.raises(ValueError):
        CODE.decode(np.zeros(71, dtype=np.uint8))


def test_encode_rejects_wrong_length():
    with pytest.raises(ValueError):
        CODE.encode(np.zeros(63, dtype=np.uint8))


def test_h_matrix_columns_are_distinct_and_odd_weight():
    columns = CODE._columns
    assert len(set(columns)) == 72
    assert all(bin(c).count("1") % 2 == 1 for c in columns)
