"""Tests of the behavioural per-platform ECC models."""

import numpy as np
import pytest

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap
from repro.ecc.models import (
    ChipkillEccModel,
    EccOutcome,
    K920EccModel,
    PurleyEccModel,
    SecDedEccModel,
    WhitleyEccModel,
    devices_per_symbol_window,
    max_devices_in_any_window,
    platform_ecc_model,
)


def single_device(positions, device=0):
    return BusErrorPattern.from_device_bitmaps(
        {device: DeviceErrorBitmap.from_positions(positions)}
    )


def joint(device_positions):
    return BusErrorPattern.from_device_bitmaps(
        {d: DeviceErrorBitmap.from_positions(p) for d, p in device_positions.items()}
    )


RISKY = [(0, 1), (4, 1), (0, 2), (4, 2)]  # 2 DQs, beats 0 and 4
WHOLE_CHIP = [(b, d) for b in range(6) for d in range(4)]
NARROW = [(0, 0)]


class TestSymbolWindows:
    def test_same_beat_pair_collides(self):
        pattern = joint({0: [(2, 0)], 1: [(3, 1)]})  # beats 2,3 share window 1
        assert devices_per_symbol_window(pattern) == {1: (0, 1)}
        assert max_devices_in_any_window(pattern) == 2

    def test_different_windows_do_not_collide(self):
        pattern = joint({0: [(0, 0)], 1: [(7, 1)]})
        assert max_devices_in_any_window(pattern) == 1

    def test_empty_pattern(self):
        assert max_devices_in_any_window(BusErrorPattern(device_bits=())) == 0


class TestPurley:
    def test_risky_pattern_has_highest_single_device_hazard(self):
        model = PurleyEccModel()
        risky = model.ue_probability(single_device(RISKY))
        narrow = model.ue_probability(single_device(NARROW))
        wide = model.ue_probability(single_device(WHOLE_CHIP))
        assert risky > wide > narrow

    def test_empty_pattern_is_safe(self):
        assert PurleyEccModel().ue_probability(BusErrorPattern(device_bits=())) == 0.0

    def test_multi_device_same_window_beats_cross_window(self):
        model = PurleyEccModel()
        same = model.ue_probability(joint({0: [(0, 0)], 1: [(1, 0)]}))
        cross = model.ue_probability(joint({0: [(0, 0)], 1: [(6, 0)]}))
        assert same > cross


class TestWhitley:
    def test_whole_chip_is_riskiest_single_device(self):
        model = WhitleyEccModel()
        whole = model.ue_probability(single_device(WHOLE_CHIP))
        risky2dq = model.ue_probability(single_device(RISKY))
        assert whole > risky2dq

    def test_purley_risky_pattern_is_not_whitley_risky(self):
        """Finding 3: the risky signatures differ across Intel platforms."""
        purley = PurleyEccModel().ue_probability(single_device(RISKY))
        whitley = WhitleyEccModel().ue_probability(single_device(RISKY))
        assert purley > 10 * whitley


class TestK920:
    def test_single_device_is_nearly_always_corrected(self):
        model = K920EccModel()
        assert model.ue_probability(single_device(WHOLE_CHIP)) < 1e-3
        assert model.ue_probability(single_device(RISKY)) < 1e-4

    def test_multi_device_dominates(self):
        model = K920EccModel()
        multi = model.ue_probability(joint({0: [(0, 0)], 1: [(1, 0)]}))
        single = model.ue_probability(single_device(WHOLE_CHIP))
        assert multi > 10 * single


class TestChipkill:
    def test_single_device_always_corrected(self):
        model = ChipkillEccModel()
        assert model.ue_probability(single_device(WHOLE_CHIP)) == 0.0

    def test_same_window_collision_always_fatal(self):
        model = ChipkillEccModel()
        assert model.ue_probability(joint({0: [(0, 0)], 1: [(1, 0)]})) == 1.0

    def test_matches_bit_accurate_rs_decoder_on_examples(self):
        """Behavioural chipkill agrees with the real RS decoder's envelope."""
        from repro.ecc.hsiao import DecodeStatus
        from repro.ecc.reed_solomon import ReedSolomonChipkill, burst_to_symbol_codewords

        rs = ReedSolomonChipkill()
        model = ChipkillEccModel()
        rng = np.random.default_rng(0)
        for pattern in (
            single_device(WHOLE_CHIP, device=3),
            joint({2: [(0, 0)], 9: [(1, 3)]}),
        ):
            error_matrix = pattern.to_matrix().astype(np.uint8)
            outcomes = []
            for pair, error_symbols in enumerate(
                burst_to_symbol_codewords(error_matrix)
            ):
                data = [int(x) for x in rng.integers(0, 256, size=rs.k)]
                clean = rs.encode(data)
                received = [c ^ e for c, e in zip(clean, error_symbols)]
                result = rs.decode(received)
                outcomes.append(result.status)
            fatal = DecodeStatus.DETECTED_UNCORRECTABLE in outcomes
            assert fatal == (model.ue_probability(pattern) == 1.0)


class TestSecDed:
    def test_two_bits_same_beat_fatal(self):
        model = SecDedEccModel()
        assert model.ue_probability(single_device([(0, 0), (0, 1)])) == 1.0

    def test_isolated_bits_survive(self):
        model = SecDedEccModel()
        assert model.ue_probability(single_device([(0, 0), (1, 1)])) < 1e-3


class TestFactoryAndAdjudication:
    @pytest.mark.parametrize(
        "name", ["intel_purley", "intel_whitley", "k920", "chipkill", "secded"]
    )
    def test_factory_builds_each_model(self, name):
        assert platform_ecc_model(name).ue_probability(
            single_device(NARROW)
        ) >= 0.0

    def test_factory_rejects_unknown(self):
        with pytest.raises(KeyError):
            platform_ecc_model("alder_lake")

    def test_adjudicate_frequency_tracks_probability(self):
        model = ChipkillEccModel()
        rng = np.random.default_rng(1)
        fatal = joint({0: [(0, 0)], 1: [(1, 0)]})
        outcomes = {model.adjudicate(fatal, rng) for _ in range(5)}
        assert outcomes == {EccOutcome.UE}
        safe = single_device(NARROW)
        outcomes = {model.adjudicate(safe, rng) for _ in range(5)}
        assert outcomes == {EccOutcome.CE}
