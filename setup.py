"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools predates PEP 660 editable-wheel support.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cross-architecture DRAM failure prediction: reproduction of "
        "'Investigating Memory Failure Prediction Across CPU Architectures' "
        "(DSN 2024)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={"dev": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"]},
)
