"""Fleet-operations subsystem: heterogeneous multi-platform replay.

One merged event stream over every CPU architecture in the fleet, routed
through per-platform production models (including cross-architecture
assignments), with alarm incidents driving a capacity-aware mitigation
policy engine and an interruption-cost model.  The ``fleet_ops`` scenario
(:mod:`repro.fleetops.scenario`) runs the whole stack from a
:class:`~repro.experiments.spec.RunSpec`.
"""

from repro.fleetops.cost import (
    ActionCosts,
    CostModel,
    CostSummary,
    combine_summaries,
)
from repro.fleetops.engine import (
    FleetReplayEngine,
    FleetReport,
    ServingAssignment,
)
from repro.fleetops.policy import (
    ActionBudget,
    ActionScheduler,
    MitigationAction,
    MitigationPolicyConfig,
    PolicyEngine,
    ScheduledAction,
)
from repro.fleetops.stream import MergedFleetStream, merge_fleet_streams

__all__ = [
    "ActionBudget",
    "ActionCosts",
    "ActionScheduler",
    "CostModel",
    "CostSummary",
    "FleetReplayEngine",
    "FleetReport",
    "MergedFleetStream",
    "MitigationAction",
    "MitigationPolicyConfig",
    "PolicyEngine",
    "ScheduledAction",
    "ServingAssignment",
    "combine_summaries",
    "merge_fleet_streams",
]
