"""Heterogeneous fleet stream: every platform's telemetry in ONE merge.

A multi-architecture datacenter does not replay purley, then whitley, then
k920 — its monitoring plane consumes one interleaved event stream.  This
module builds that stream straight off each platform's columnar
:class:`~repro.telemetry.columnar.TelemetryColumns` backing store:

* one global ``np.lexsort`` over the concatenated CE/UE/memory-event
  tables of *all* platforms (keys: timestamp, then the CE < UE < event
  kind order of :func:`repro.telemetry.log_store.iter_stream`, then the
  platform index for cross-platform ties);
* every payload is **decoded once, vectorised**: CE rows become the exact
  ``rows_data`` tuples :meth:`IncrementalWindowState.add_ce_row` appends
  (integer fields bulk-cast via ``astype(int64).tolist()``), so the
  replay loop never pays per-field ``int()`` conversions;
* the sorted order is materialised once into pre-permuted parallel lists
  (kind tag, platform index, payload), so the replay hot loop is a
  single ``zip`` — no per-event index arithmetic or range dispatch.

Payload shapes: CE ``(t, dimm_code, server_code, rows_data_tuple)``,
UE ``(t, dimm_code)``, memory event ``(t, dimm_code, kind_code)`` — all
codes pre-converted to Python ints.

Because the sort is stable and its first two keys match the
single-platform merge in :class:`~repro.streaming.replay.ReplayEngine`,
each platform's subsequence of the merged stream is *exactly* that
platform's own replay order — the property the merged-vs-single-platform
score-parity suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.columnar import (
    CE_DIMM,
    CE_SERVER,
    CE_T,
    EV_DIMM,
    EV_KIND,
    EV_T,
    UE_DIMM,
    UE_T,
)

#: Kind tags, matching ReplayEngine's merge (CE < UE < event on time ties).
CE_TAG, UE_TAG, EVENT_TAG = 0, 1, 2


class UndecodedStreamError(ValueError):
    """A manifest-only :class:`MergedFleetStream` reached a consumer that
    needs decoded payloads.

    Raised by the per-event fleet replay when handed a stream built with
    ``decode_payloads=False`` (the batched engine's manifest form).  Fix:
    re-merge with ``merge_fleet_streams(stores, decode_payloads=True)``,
    or switch the engine to ``engine="batched"``.
    """


def _decode_ces(ce_rows: np.ndarray) -> list:
    """CE payloads ``(t, dimm, server, rows_data_tuple)``, bulk-decoded."""
    t_list = ce_rows[:, CE_T].tolist()
    ints = ce_rows[:, 1:CE_DIMM + 2].astype(np.int64)
    columns = [ints[:, i].tolist() for i in range(ints.shape[1])]
    data_rows = zip(t_list, *columns[:10])
    return list(
        zip(t_list, columns[CE_DIMM - 1], columns[CE_SERVER - 1], data_rows)
    )


def _decode_ues(ue_rows: np.ndarray) -> list:
    t_list = ue_rows[:, UE_T].tolist()
    dimms = ue_rows[:, UE_DIMM].astype(np.int64).tolist()
    return list(zip(t_list, dimms))


def _decode_events(ev_rows: np.ndarray) -> list:
    t_list = ev_rows[:, EV_T].tolist()
    dimms = ev_rows[:, EV_DIMM].astype(np.int64).tolist()
    kinds = ev_rows[:, EV_KIND].astype(np.int64).tolist()
    return list(zip(t_list, dimms, kinds))


@dataclass
class MergedFleetStream:
    """One whole-fleet event stream in replay order (pre-permuted lists).

    With ``decode_payloads=False`` the stream is a *manifest only*:
    ``tags`` / ``plats`` / ``rows`` stay empty and consumers (the batched
    fleet engine) derive the merged order straight from the columnar
    stores; record counts, end hours and the event total are still
    populated.
    """

    platforms: tuple[str, ...]
    #: Per-event kind tag (:data:`CE_TAG` / :data:`UE_TAG` / :data:`EVENT_TAG`).
    tags: list
    #: Per-event index into :attr:`platforms`.
    plats: list
    #: Per-event pre-decoded payload tuple (shapes in the module docstring).
    rows: list
    #: Per-platform record counts: ``{platform: {"ces": n, "ues": n, "events": n}}``.
    counts: dict
    #: Per-platform hour of the platform's last event (alarm finalisation).
    end_hours: dict
    #: Total record count (equals ``len(tags)`` when payloads are decoded).
    events_total: int = 0

    def __len__(self) -> int:
        return self.events_total

    @property
    def events(self) -> int:
        return self.events_total

    @property
    def decoded(self) -> bool:
        """True when the per-event payload lists were materialised."""
        return len(self.tags) == self.events_total


def merge_fleet_streams(
    stores: dict[str, object], *, decode_payloads: bool = True
) -> MergedFleetStream:
    """Merge ``{platform: LogStore}`` into one :class:`MergedFleetStream`.

    ``decode_payloads=False`` skips the payload decode *and* the global
    sort — the batched fleet engine rebuilds its own (identical) merged
    order from the columnar tables, so only the manifest is needed.
    """
    if not stores:
        raise ValueError("merge_fleet_streams needs at least one platform")
    platforms = tuple(stores)
    times_parts: list[np.ndarray] = []
    tags_parts: list[np.ndarray] = []
    plats_parts: list[np.ndarray] = []
    payload: list = []  # rows in concatenation order
    counts: dict[str, dict[str, int]] = {}
    end_hours: dict[str, float] = {}
    total = 0
    for index, platform in enumerate(platforms):
        columns = stores[platform].columns
        ce_rows = columns.ces.rows()
        ue_rows = columns.ues.rows()
        ev_rows = columns.events.rows()
        platform_times = (
            ce_rows[:, CE_T], ue_rows[:, UE_T], ev_rows[:, EV_T]
        )
        n = len(ce_rows) + len(ue_rows) + len(ev_rows)
        total += n
        if decode_payloads:
            for kind_tag, kind_times, decoded in zip(
                (CE_TAG, UE_TAG, EVENT_TAG),
                platform_times,
                (_decode_ces(ce_rows), _decode_ues(ue_rows),
                 _decode_events(ev_rows)),
            ):
                times_parts.append(kind_times)
                tags_parts.append(
                    np.full(len(decoded), kind_tag, dtype=np.int8)
                )
                payload.extend(decoded)
            plats_parts.append(np.full(n, index, dtype=np.int32))
        counts[platform] = {
            "ces": len(ce_rows), "ues": len(ue_rows), "events": len(ev_rows),
        }
        # Kind tables are append-ordered, not time-sorted: take the max.
        end_hours[platform] = float(
            max((t.max() for t in platform_times if t.size), default=0.0)
        )
    if not decode_payloads:
        return MergedFleetStream(
            platforms=platforms,
            tags=[],
            plats=[],
            rows=[],
            counts=counts,
            end_hours=end_hours,
            events_total=total,
        )
    times = np.concatenate(times_parts)
    tags = np.concatenate(tags_parts)
    plats = np.concatenate(plats_parts)
    # Stable three-key sort: time, then kind (CE < UE < event — the
    # iter_stream tie order every platform's own replay uses), then the
    # platform index so cross-platform ties are deterministic.  Stability
    # keeps each platform's equal-key records in their original per-kind
    # order, so per-platform subsequences equal the single-platform merge.
    order = np.lexsort((plats, tags, times))
    ordered = order.tolist()
    return MergedFleetStream(
        platforms=platforms,
        tags=tags[order].tolist(),
        plats=plats[order].tolist(),
        rows=[payload[i] for i in ordered],
        counts=counts,
        end_hours=end_hours,
        events_total=total,
    )
