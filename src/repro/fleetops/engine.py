"""Fleet replay engine: one pass over a heterogeneous multi-platform fleet.

The :class:`FleetReplayEngine` is the multi-platform sibling of
:class:`~repro.streaming.replay.ReplayEngine`: it consumes ONE
:class:`~repro.fleetops.stream.MergedFleetStream` covering every platform
and keeps one *serving runtime* per platform — incremental feature state,
alarm manager, micro-batch queue, and a routed production model that may
have been trained on a *different* CPU architecture (the transfer-matrix
serving story).  On top of PR 4's replay semantics it adds the
incident-aware mitigation loop: every opened incident is handed to the
:class:`~repro.fleetops.policy.PolicyEngine`, and at the end the
:class:`~repro.fleetops.cost.CostModel` settles dispositions x actions
into per-platform and fleet-wide interruption-cost summaries.

Per-platform scoring is bit-for-bit identical to running that platform
alone through ``ReplayEngine`` (same scoring schedule, same incremental
feature values, same stateless model): the merged stream preserves each
platform's replay order, queues are per-platform, and a UE flushes only
its own platform's queue.  The parity suite pins this down.

The hot loop is leaner than three sequential single-platform replays:
the merge is pre-permuted into parallel lists (one ``zip``, no per-event
index arithmetic), CE payloads arrive **pre-decoded** as the exact
``rows_data`` tuples the incremental state appends (the per-field
``int()`` conversions are paid once, vectorised, at merge time), per-event
counters are hoisted into the merge's precomputed totals, and per-platform
state is resolved through parallel lists indexed by the stream's platform
code.  ``benchmarks/bench_fleet_ops.py`` measures the resulting speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.features.labeling import LabelingParams
from repro.fleetops.cost import CostModel, CostSummary, combine_summaries
from repro.fleetops.policy import PolicyEngine
from repro.fleetops.stream import CE_TAG, UE_TAG, MergedFleetStream
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import EventBus
from repro.streaming.incremental import IncrementalFeatureExtractor


@dataclass(frozen=True)
class ServingAssignment:
    """One platform's production serving configuration.

    ``train_platform`` names where the model's training split came from —
    equal to ``platform`` for the within-architecture default, different
    for cross-architecture routing (serve B with a model trained on A).
    """

    platform: str
    model_name: str
    train_platform: str
    model: object
    threshold: float
    pipeline: object  # fitted FeaturePipeline (the platform's feature space)
    configs: dict
    live_from_hour: float = 0.0


class _PlatformRuntime:
    """Mutable per-platform serving state for one replay pass."""

    __slots__ = (
        "assignment", "extractor", "alarms", "states", "state_configs",
        "last_scored", "scored_dimms", "pending", "retired_fallbacks",
        "dimm_name", "server_name", "configs", "threshold", "live_from",
        "scored", "batches", "predict_seconds",
    )

    def __init__(self, assignment: ServingAssignment, alarms: AlarmManager):
        self.assignment = assignment
        self.extractor = IncrementalFeatureExtractor(assignment.pipeline)
        self.alarms = alarms
        self.states: dict = {}
        self.state_configs: dict = {}
        self.last_scored: dict = {}
        self.scored_dimms: set = set()
        self.pending: list = []
        self.retired_fallbacks = 0
        self.configs = assignment.configs
        self.threshold = float(assignment.threshold)
        self.live_from = float(assignment.live_from_hour)
        self.scored = 0
        self.batches = 0
        self.predict_seconds = 0.0

    def fallbacks(self) -> int:
        return self.retired_fallbacks + sum(
            state.fallbacks for state in self.states.values()
        )


@dataclass
class FleetReport:
    """Everything one :meth:`FleetReplayEngine.replay` pass produced."""

    events: int = 0
    seconds: float = 0.0
    predict_seconds: float = 0.0
    events_per_second: float = 0.0
    scored: int = 0
    platforms: dict = field(default_factory=dict)  # platform -> report dict
    actions: dict = field(default_factory=dict)  # PolicyEngine.summary()
    costs: dict = field(default_factory=dict)  # platform -> CostSummary dict
    fleet_cost: dict = field(default_factory=dict)  # combined CostSummary
    bus_counts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "seconds": round(self.seconds, 4),
            "predict_seconds": round(self.predict_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
            "scored": self.scored,
            "platforms": {k: dict(v) for k, v in self.platforms.items()},
            "actions": dict(self.actions),
            "costs": {k: dict(v) for k, v in self.costs.items()},
            "fleet_cost": dict(self.fleet_cost),
            "bus_counts": dict(self.bus_counts),
        }


class FleetReplayEngine:
    """Single-pass streaming scorer over a merged heterogeneous fleet."""

    def __init__(
        self,
        assignments: dict[str, ServingAssignment],
        labeling: LabelingParams | None = None,
        *,
        policy: PolicyEngine | None = None,
        cost_model: CostModel | None = None,
        bus: EventBus | None = None,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 0.0,
        batch_size: int = 256,
        collect_scores: bool = False,
    ):
        if not assignments:
            raise ValueError("FleetReplayEngine needs at least one assignment")
        self.assignments = dict(assignments)
        self.labeling = labeling if labeling is not None else LabelingParams()
        self.policy = policy
        self.cost_model = cost_model or CostModel()
        self.bus = bus if bus is not None else EventBus()
        self.min_ces_before_scoring = int(min_ces_before_scoring)
        self.rescore_interval_hours = float(rescore_interval_hours)
        self.batch_size = int(batch_size)
        self.collect_scores = bool(collect_scores)
        #: ``platform -> [(dimm_id, t, score)]`` when ``collect_scores``.
        self.score_logs: dict[str, list] = {}
        #: Populated by :meth:`replay`.
        self.runtimes: dict[str, _PlatformRuntime] = {}
        self.cost_summaries: dict[str, CostSummary] = {}
        self.ledgers: dict = {}

    def _runtime(self, platform: str, stores) -> _PlatformRuntime:
        assignment = self.assignments[platform]
        alarms = AlarmManager(
            self.labeling.lead_hours,
            self.labeling.prediction_window_hours,
            self.bus,
        )
        runtime = _PlatformRuntime(assignment, alarms)
        columns = stores[platform].columns
        runtime.dimm_name = columns.dimms.name
        runtime.server_name = columns.servers.name
        return runtime

    def replay(
        self, stream: MergedFleetStream, stores: dict[str, object]
    ) -> FleetReport:
        """Replay the merged stream; ``stores`` maps platform -> LogStore."""
        missing = set(stream.platforms) - set(self.assignments)
        if missing:
            raise ValueError(
                f"merged stream contains unassigned platforms {sorted(missing)}"
            )
        runtimes = [
            self._runtime(platform, stores) for platform in stream.platforms
        ]
        self.runtimes = dict(zip(stream.platforms, runtimes))
        if self.collect_scores:
            self.score_logs = {p: [] for p in stream.platforms}

        min_ces = self.min_ces_before_scoring
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        report = FleetReport()

        # The hot loop switches platforms on every event, so per-platform
        # state is hoisted into parallel lists indexed by the stream's
        # platform code — one C-level list index instead of a chain of
        # attribute lookups per touched field.
        states_by = [rt.states for rt in runtimes]
        state_configs_by = [rt.state_configs for rt in runtimes]
        state_for_by = [rt.extractor.state_for for rt in runtimes]
        serve_by = [rt.extractor.serve for rt in runtimes]
        blocked_by = [rt.alarms.blocked for rt in runtimes]
        last_scored_by = [rt.last_scored for rt in runtimes]
        scored_dimms_by = [rt.scored_dimms for rt in runtimes]
        pending_by = [rt.pending for rt in runtimes]
        live_by = [rt.live_from for rt in runtimes]
        configs_by = [rt.configs for rt in runtimes]
        dimm_name_by = [rt.dimm_name for rt in runtimes]
        server_name_by = [rt.server_name for rt in runtimes]
        flush = self._flush

        start = time.perf_counter()
        for tag, p, row in zip(stream.tags, stream.plats, stream.rows):
            if tag == CE_TAG:
                # row = (t, dimm_code, server_code, rows_data_tuple)
                t = row[0]
                code = row[1]
                states = states_by[p]
                state = states.get(code)
                if state is None:
                    state = state_for_by[p](dimm_name_by[p](code))
                    states[code] = state
                    state_configs_by[p][code] = configs_by[p].get(
                        state.dimm_id
                    )
                if not state.server_id:
                    state.server_id = server_name_by[p](row[2])
                state.add_ce_row(t, row[3])
                if t < live_by[p] or len(state.times) < min_ces:
                    continue
                config = state_configs_by[p][code]
                if config is None:
                    continue
                last = last_scored_by[p].get(code)
                if last is not None and t - last < rescore:
                    continue
                if blocked_by[p](state.dimm_id, t):
                    continue
                features = serve_by[p](state, config, t)
                last_scored_by[p][code] = t
                scored_dimms_by[p].add(code)
                pending = pending_by[p]
                pending.append((state.dimm_id, t, features))
                if len(pending) >= batch_size:
                    flush(runtimes[p])
            elif tag == UE_TAG:
                # row = (t, dimm_code)
                rt = runtimes[p]
                if rt.pending:
                    # Settle this platform's queued scores so alarm-vs-
                    # failure ordering holds; other platforms' queues are
                    # untouched (their DIMMs are unaffected by this UE).
                    flush(rt)
                code = row[1]
                state = rt.states.pop(code, None)
                if state is not None:
                    rt.retired_fallbacks += state.fallbacks
                predictable = state is not None and len(state.times) >= min_ces
                dimm_id = (
                    state.dimm_id if state is not None
                    else rt.dimm_name(code)
                )
                rt.alarms.on_ue(dimm_id, row[0], predictable=predictable)
                rt.last_scored.pop(code, None)
                if self.policy is not None:
                    self.policy.advance(row[0])
            else:
                # row = (t, dimm_code, kind_code)
                states = states_by[p]
                code = row[1]
                state = states.get(code)
                if state is None:
                    state = state_for_by[p](dimm_name_by[p](code))
                    states[code] = state
                    state_configs_by[p][code] = configs_by[p].get(
                        state.dimm_id
                    )
                state.add_event_code(row[2], row[0])
        for rt in runtimes:
            if rt.pending:
                flush(rt)
        report.seconds = time.perf_counter() - start

        self._finalize(stream, report)
        return report

    def _flush(self, rt: _PlatformRuntime) -> None:
        """Score one platform's micro-batch; route alarms through policy."""
        pending = rt.pending
        matrix = np.asarray([features for _, _, features in pending])
        t0 = time.perf_counter()
        scores = rt.assignment.model.predict_proba(matrix)
        rt.predict_seconds += time.perf_counter() - t0
        threshold = rt.threshold
        platform = rt.assignment.platform
        policy = self.policy
        log = self.score_logs.get(platform) if self.collect_scores else None
        for (dimm_id, t, _), score in zip(pending, scores):
            value = float(score)
            if log is not None:
                log.append((dimm_id, t, value))
            if value >= threshold:
                incident = rt.alarms.on_alarm(dimm_id, t, value)
                if incident is not None and policy is not None:
                    policy.on_incident(platform, incident)
        rt.scored += len(pending)
        rt.batches += 1
        pending.clear()

    def _finalize(
        self, stream: MergedFleetStream, report: FleetReport
    ) -> None:
        """Close incidents, settle costs, assemble the fleet report."""
        # Drain the shared action queue to the fleet's global end BEFORE
        # settling any platform: the scheduler is fleet-wide, so a
        # per-platform drain would make cost summaries depend on the
        # spec's platform order (and disagree with the action summary).
        if self.policy is not None:
            self.policy.advance(max(stream.end_hours.values()))
        summaries = []
        for platform in stream.platforms:
            rt = self.runtimes[platform]
            rt.alarms.finalize(stream.end_hours[platform])
            counts = stream.counts[platform]
            alarm_summary = rt.alarms.summary(rt.live_from)
            platform_report = {
                "model": rt.assignment.model_name,
                "train_platform": rt.assignment.train_platform,
                "threshold": rt.threshold,
                "live_from_hour": rt.live_from,
                "events": sum(counts.values()),
                "ces": counts["ces"],
                "ues": counts["ues"],
                "mem_events": counts["events"],
                "scored": rt.scored,
                "batches": rt.batches,
                "scored_dimms": len(rt.scored_dimms),
                "fallbacks": rt.fallbacks(),
                "alarms": alarm_summary,
            }
            report.platforms[platform] = platform_report
            report.scored += rt.scored
            report.predict_seconds += rt.predict_seconds
            summary, ledger = self.cost_model.settle(
                platform,
                rt.alarms,
                self.policy if self.policy is not None else _NULL_POLICY,
                rt.live_from,
            )
            self.cost_summaries[platform] = summary
            self.ledgers[platform] = ledger
            summaries.append(summary)
            report.costs[platform] = summary.to_dict()
        fleet = combine_summaries(summaries)
        self.cost_summaries["fleet"] = fleet
        report.fleet_cost = fleet.to_dict()
        report.actions = (
            self.policy.summary() if self.policy is not None else {}
        )
        report.events = stream.events
        report.events_per_second = (
            report.events / report.seconds if report.seconds > 0 else 0.0
        )
        report.bus_counts = self.bus.counts()


class _NullPolicy:
    """Stand-in when no policy engine is wired: no actions were taken."""

    def action_for_incident(self, platform, incident):
        return None


_NULL_POLICY = _NullPolicy()
