"""Fleet replay engine: one pass over a heterogeneous multi-platform fleet.

The :class:`FleetReplayEngine` is the multi-platform sibling of
:class:`~repro.streaming.replay.ReplayEngine`: it consumes ONE
:class:`~repro.fleetops.stream.MergedFleetStream` covering every platform
and keeps one *serving runtime* per platform — incremental feature state,
alarm manager, micro-batch queue, and a routed production model that may
have been trained on a *different* CPU architecture (the transfer-matrix
serving story).  On top of PR 4's replay semantics it adds the
incident-aware mitigation loop: every opened incident is handed to the
:class:`~repro.fleetops.policy.PolicyEngine`, and at the end the
:class:`~repro.fleetops.cost.CostModel` settles dispositions x actions
into per-platform and fleet-wide interruption-cost summaries.

Per-platform scoring is bit-for-bit identical to running that platform
alone through ``ReplayEngine`` (same scoring schedule, same incremental
feature values, same stateless model): the merged stream preserves each
platform's replay order, queues are per-platform, and a UE flushes only
its own platform's queue.  The parity suite pins this down.

Like the single-platform engine, two interchangeable engines drive the
same decision loop:

* ``engine="batched"`` (default) — one
  :class:`~repro.streaming.kernels.ReplayKernel` per platform precomputes
  every scoring candidate columnwise; the merged walk shrinks to the
  candidates and UEs (``np.lexsort`` over time, kind, platform — the
  same keys as the full merge), and works off a *manifest-only* stream
  (``merge_fleet_streams(..., decode_payloads=False)``);
* ``engine="per_event"`` — the pure-Python reference: the pre-decoded
  merged stream drives per-DIMM incremental state, with per-platform
  state hoisted into parallel lists indexed by the stream's platform
  code.  ``benchmarks/bench_fleet_ops.py`` measures the speedup and
  gates batched-vs-per-event score parity.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.checkpoint import ReplayCheckpointer
from repro.chaos.quarantine import quarantine_columns
from repro.features.labeling import LabelingParams
from repro.fleetops.cost import CostModel, CostSummary, combine_summaries
from repro.fleetops.policy import PolicyEngine
from repro.fleetops.stream import (
    CE_TAG,
    UE_TAG,
    MergedFleetStream,
    UndecodedStreamError,
    merge_fleet_streams,
)
from repro.obs.tracing import NULL_TRACER
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import EventBus
from repro.streaming.incremental import IncrementalFeatureExtractor
from repro.streaming.kernels import ReplayKernel
from repro.streaming.replay import REPLAY_ENGINES


class _ColumnsStore:
    """Just enough of a LogStore for re-merging: a ``.columns`` attribute.

    Quarantine produces filtered :class:`TelemetryColumns`; both the merge
    and the engines only ever touch ``store.columns``, so this shim carries
    the filtered tables without copying records back into a LogStore.
    """

    __slots__ = ("columns",)

    def __init__(self, columns) -> None:
        self.columns = columns


@dataclass(frozen=True)
class ServingAssignment:
    """One platform's production serving configuration.

    ``train_platform`` names where the model's training split came from —
    equal to ``platform`` for the within-architecture default, different
    for cross-architecture routing (serve B with a model trained on A).
    """

    platform: str
    model_name: str
    train_platform: str
    model: object
    threshold: float
    pipeline: object  # fitted FeaturePipeline (the platform's feature space)
    configs: dict
    live_from_hour: float = 0.0


class _PlatformRuntime:
    """Mutable per-platform serving state for one replay pass."""

    __slots__ = (
        "assignment", "extractor", "alarms", "states", "state_configs",
        "last_scored", "scored_dimms", "pending", "pending_dimms",
        "retired_fallbacks",
        "retired_rebuilds", "dimm_name", "server_name", "configs",
        "threshold", "live_from", "scored", "batches", "predict_seconds",
        "matrix_buf",
    )

    def __init__(self, assignment: ServingAssignment, alarms: AlarmManager):
        self.assignment = assignment
        self.extractor = IncrementalFeatureExtractor(assignment.pipeline)
        self.alarms = alarms
        self.states: dict = {}
        self.state_configs: dict = {}
        self.last_scored: dict = {}
        self.scored_dimms: set = set()
        self.pending: list = []
        self.pending_dimms: set = set()
        self.retired_fallbacks = 0
        self.retired_rebuilds = 0
        self.configs = assignment.configs
        self.threshold = float(assignment.threshold)
        self.live_from = float(assignment.live_from_hour)
        self.scored = 0
        self.batches = 0
        self.predict_seconds = 0.0
        self.matrix_buf: np.ndarray | None = None

    def fallbacks(self) -> int:
        return self.retired_fallbacks + sum(
            state.fallbacks for state in self.states.values()
        )

    def rebuilds(self) -> int:
        """Late-arrival recoveries: full window rebuilds this platform paid."""
        return self.retired_rebuilds + sum(
            state.rebuilds for state in self.states.values()
        )


@dataclass
class FleetReport:
    """Everything one :meth:`FleetReplayEngine.replay` pass produced."""

    events: int = 0
    seconds: float = 0.0
    predict_seconds: float = 0.0
    events_per_second: float = 0.0
    scored: int = 0
    engine: str = "per_event"
    #: Wall seconds by stage (same keys as ``StreamingReport``).
    stage_seconds: dict = field(default_factory=dict)
    platforms: dict = field(default_factory=dict)  # platform -> report dict
    actions: dict = field(default_factory=dict)  # PolicyEngine.summary()
    costs: dict = field(default_factory=dict)  # platform -> CostSummary dict
    fleet_cost: dict = field(default_factory=dict)  # combined CostSummary
    bus_counts: dict = field(default_factory=dict)
    #: Fleet-wide degradation accounting (per-platform detail lives in each
    #: platform report's ``health`` entry).
    health: dict = field(default_factory=dict)
    #: True when the walk was stopped early by ``halt_after`` (the report
    #: is partial: no finalisation, no costs, no action summary).
    halted: bool = False
    #: Populated by the distributed coordinator (worker/partition stats);
    #: empty for a plain single-process replay.
    distributed: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "events": self.events,
            "seconds": round(self.seconds, 4),
            "predict_seconds": round(self.predict_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
            "scored": self.scored,
            "engine": self.engine,
            "stage_seconds": {
                stage: round(seconds, 4)
                for stage, seconds in self.stage_seconds.items()
            },
            "platforms": {k: dict(v) for k, v in self.platforms.items()},
            "actions": dict(self.actions),
            "costs": {k: dict(v) for k, v in self.costs.items()},
            "fleet_cost": dict(self.fleet_cost),
            "bus_counts": dict(self.bus_counts),
            "health": dict(self.health),
        }
        if self.halted:
            payload["halted"] = True
        if self.distributed:
            payload["distributed"] = dict(self.distributed)
        return payload


class FleetReplayEngine:
    """Single-pass streaming scorer over a merged heterogeneous fleet."""

    def __init__(
        self,
        assignments: dict[str, ServingAssignment],
        labeling: LabelingParams | None = None,
        *,
        policy: PolicyEngine | None = None,
        cost_model: CostModel | None = None,
        bus: EventBus | None = None,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 0.0,
        batch_size: int = 256,
        engine: str = "batched",
        collect_scores: bool = False,
        end_hours: dict[str, float] | None = None,
        coherent_flush: bool = False,
        obs=None,
        heartbeat_every: int = 0,
    ):
        if not assignments:
            raise ValueError("FleetReplayEngine needs at least one assignment")
        if engine not in REPLAY_ENGINES:
            raise ValueError(
                f"unknown replay engine {engine!r}; expected one of "
                f"{REPLAY_ENGINES}"
            )
        self.engine = engine
        self.assignments = dict(assignments)
        self.labeling = labeling if labeling is not None else LabelingParams()
        self.policy = policy
        self.cost_model = cost_model or CostModel()
        self.bus = bus if bus is not None else EventBus()
        self.min_ces_before_scoring = int(min_ces_before_scoring)
        self.rescore_interval_hours = float(rescore_interval_hours)
        self.batch_size = int(batch_size)
        self.collect_scores = bool(collect_scores)
        #: Partition-invariant micro-batching: settle a platform's queued
        #: scores before admitting a new candidate for a DIMM that already
        #: has one pending.  Admission consults ``alarms.blocked`` at walk
        #: time while incidents open at flush time, so with the default
        #: (off) the admitted set depends on cross-DIMM queue fill; with
        #: the knob on, every gating decision is a function of that DIMM's
        #: own score history only — a DIMM-sharded replay reproduces the
        #: full run bit-for-bit at any ``batch_size``.  The distributed
        #: coordinator turns this on in its workers AND in the
        #: single-process baseline it is gated against.
        self.coherent_flush = bool(coherent_flush)
        #: Fleet-global end hours overriding the stream's own (set by the
        #: distributed coordinator: a DIMM partition's local stream ends
        #: earlier than the fleet, which would skew incident expiry and
        #: censoring against the single-process run).
        self.end_hours = dict(end_hours) if end_hours else None
        #: ``platform -> [(dimm_id, t, score)]`` when ``collect_scores``.
        self.score_logs: dict[str, list] = {}
        #: Populated by :meth:`replay`.
        self.runtimes: dict[str, _PlatformRuntime] = {}
        self.cost_summaries: dict[str, CostSummary] = {}
        self.ledgers: dict = {}
        #: Optional :class:`repro.obs.Observability` bundle.  Spans exist
        #: at stage granularity only and instruments are filled from the
        #: finished report, so instrumented replays stay bit-identical.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        #: Publish a live heartbeat snapshot every N processed walk
        #: entries (0 = off).  Event-count based, never wall-clock, so
        #: the heartbeat sequence is deterministic; heartbeats are
        #: write-only (obs-parity), so scores/alarms/costs stay identical.
        self.heartbeat_every = int(heartbeat_every)

    def _heartbeat(self, processed, total, hour, runtimes) -> None:
        self.obs.heartbeat("fleet_replay", {
            "events": processed,
            "total": total,
            "fraction": processed / total if total else 1.0,
            "hour": float(hour),
            "open_incidents": sum(
                len(getattr(rt.alarms, "_open", ())) for rt in runtimes
            ),
            "scored": sum(rt.scored for rt in runtimes),
        })

    def _runtime(self, platform: str, stores) -> _PlatformRuntime:
        assignment = self.assignments[platform]
        alarms = AlarmManager(
            self.labeling.lead_hours,
            self.labeling.prediction_window_hours,
            self.bus,
        )
        runtime = _PlatformRuntime(assignment, alarms)
        columns = stores[platform].columns
        runtime.dimm_name = columns.dimms.name
        runtime.server_name = columns.servers.name
        return runtime

    def replay(
        self,
        stream: MergedFleetStream,
        stores: dict[str, object],
        *,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        resume_from=None,
        halt_after: int | None = None,
    ) -> FleetReport:
        """Replay the merged stream; ``stores`` maps platform -> LogStore.

        Malformed records are quarantined per platform before the walk (the
        re-merged stream stays bit-identical when nothing is rejected).
        The checkpoint knobs mirror :meth:`ReplayEngine.replay`: a halted or
        killed fleet replay resumed from its snapshot reproduces the
        uninterrupted run's score logs, alarms, actions and cost digests.
        """
        missing = set(stream.platforms) - set(self.assignments)
        if missing:
            raise ValueError(
                f"merged stream contains unassigned platforms {sorted(missing)}"
            )
        if self.engine != "batched" and stream.events and not stream.decoded:
            raise UndecodedStreamError(
                "per_event fleet replay needs a decoded stream; re-merge "
                "with merge_fleet_streams(stores, decode_payloads=True)"
            )
        tracer = self._tracer
        with tracer.span(
            "fleet_replay",
            engine=self.engine,
            platforms=",".join(stream.platforms),
        ) as root:
            rejects: dict[str, object] = {}
            filtered: dict[str, _ColumnsStore] = {}
            with tracer.span("fleet_replay.quarantine"):
                for platform in stream.platforms:
                    columns, platform_rejects = quarantine_columns(
                        stores[platform].columns, bus=self.bus
                    )
                    filtered[platform] = _ColumnsStore(columns)
                    rejects[platform] = platform_rejects
                if any(r.total for r in rejects.values()):
                    # Rebuild the merged order over the surviving records
                    # only; a clean fleet keeps the caller's stream object
                    # untouched.
                    stores = filtered
                    stream = merge_fleet_streams(
                        stores, decode_payloads=(self.engine != "batched")
                    )
            ckpt = None
            if (
                checkpoint_every
                or checkpoint_path is not None
                or resume_from is not None
                or halt_after is not None
            ):
                ckpt = ReplayCheckpointer(
                    every=checkpoint_every,
                    path=checkpoint_path,
                    halt_after=halt_after,
                    resume_from=resume_from,
                    engine=self.engine,
                    kind="fleet",
                )
            runtimes = [
                self._runtime(platform, stores)
                for platform in stream.platforms
            ]
            self.runtimes = dict(zip(stream.platforms, runtimes))
            if self.collect_scores:
                self.score_logs = {p: [] for p in stream.platforms}

            report = FleetReport(
                engine=self.engine,
                stage_seconds={
                    "ingest": 0.0, "features": 0.0, "predict": 0.0,
                    "alarms": 0.0,
                },
            )
            if self.engine == "batched":
                halted = self._replay_batched(
                    stream, stores, runtimes, report, ckpt
                )
            else:
                halted = self._replay_per_event(stream, runtimes, report, ckpt)
            if halted:
                report.halted = True
                report.events = stream.events
                report.bus_counts = self.bus.counts()
                root.attributes.update(halted=True)
                return report
            with tracer.span("fleet_replay.finalize"):
                self._finalize(stream, report, rejects)
            stage = report.stage_seconds
            stage["predict"] = report.predict_seconds
            stage["ingest"] = max(
                report.seconds - stage["features"] - stage["predict"]
                - stage["alarms"],
                0.0,
            )
            for name in sorted(stage):
                tracer.record(
                    "fleet_replay.stage." + name, wall_seconds=stage[name]
                )
            root.attributes.update(
                events=report.events, scored=report.scored, halted=False
            )
        if self.obs is not None:
            self.obs.record_fleet_report(report)
        return report

    def _replay_per_event(
        self,
        stream: MergedFleetStream,
        runtimes: list[_PlatformRuntime],
        report: FleetReport,
        ckpt: ReplayCheckpointer | None = None,
    ) -> bool:
        min_ces = self.min_ces_before_scoring
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        coherent = self.coherent_flush
        feature_seconds = 0.0
        alarm_seconds = 0.0

        walk_tags, walk_plats, walk_rows = (
            stream.tags, stream.plats, stream.rows
        )
        if ckpt is not None and ckpt.resume_state is not None:
            snap = pickle.loads(ckpt.resume_state["state"])
            for i, rt in enumerate(runtimes):
                rt.extractor = snap["extractors"][i]
                rt.alarms = snap["alarms"][i]
                rt.alarms.bus = self.bus
                rt.states = snap["states"][i]
                rt.state_configs = snap["state_configs"][i]
                rt.last_scored = snap["last_scored"][i]
                rt.scored_dimms = snap["scored_dimms"][i]
                rt.pending = snap["pending"][i]
                rt.pending_dimms = {entry[0] for entry in rt.pending}
                rt.retired_fallbacks = snap["retired_fallbacks"][i]
                rt.retired_rebuilds = snap["retired_rebuilds"][i]
                rt.scored = snap["scored"][i]
                rt.batches = snap["batches"][i]
            self.policy = snap["policy"]
            self.score_logs = snap["score_logs"]
            self.bus.restore_counts(ckpt.resume_state["bus_counts"])
            walk_tags = walk_tags[ckpt.position:]
            walk_plats = walk_plats[ckpt.position:]
            walk_rows = walk_rows[ckpt.position:]

        # The hot loop switches platforms on every event, so per-platform
        # state is hoisted into parallel lists indexed by the stream's
        # platform code — one C-level list index instead of a chain of
        # attribute lookups per touched field.
        states_by = [rt.states for rt in runtimes]
        state_configs_by = [rt.state_configs for rt in runtimes]
        state_for_by = [rt.extractor.state_for for rt in runtimes]
        serve_by = [rt.extractor.serve for rt in runtimes]
        blocked_by = [rt.alarms.blocked for rt in runtimes]
        last_scored_by = [rt.last_scored for rt in runtimes]
        scored_dimms_by = [rt.scored_dimms for rt in runtimes]
        pending_by = [rt.pending for rt in runtimes]
        pending_dimms_by = [rt.pending_dimms for rt in runtimes]
        live_by = [rt.live_from for rt in runtimes]
        configs_by = [rt.configs for rt in runtimes]
        dimm_name_by = [rt.dimm_name for rt in runtimes]
        server_name_by = [rt.server_name for rt in runtimes]
        flush = self._flush

        def snapshot() -> dict:
            # Kernel-free path: every mutable decision structure goes into
            # ONE inner pickle so shared references survive; the bus
            # (unpicklable handler closures) is detached for the dump.
            for rt in runtimes:
                rt.alarms.bus = None
            try:
                blob = pickle.dumps(
                    {
                        "extractors": [rt.extractor for rt in runtimes],
                        "alarms": [rt.alarms for rt in runtimes],
                        "states": states_by,
                        "state_configs": state_configs_by,
                        "last_scored": last_scored_by,
                        "scored_dimms": scored_dimms_by,
                        "pending": pending_by,
                        "retired_fallbacks": [
                            rt.retired_fallbacks for rt in runtimes
                        ],
                        "retired_rebuilds": [
                            rt.retired_rebuilds for rt in runtimes
                        ],
                        "scored": [rt.scored for rt in runtimes],
                        "batches": [rt.batches for rt in runtimes],
                        "policy": self.policy,
                        "score_logs": self.score_logs,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            finally:
                for rt in runtimes:
                    rt.alarms.bus = self.bus
            return {"state": blob, "bus_counts": self.bus.counts()}

        hb = self.heartbeat_every if self.obs is not None else 0
        hb_total = stream.events
        hb_processed = 0

        start = time.perf_counter()
        for tag, p, row in zip(walk_tags, walk_plats, walk_rows):
            if ckpt is not None and ckpt.step(snapshot):
                report.seconds = time.perf_counter() - start
                return True
            if hb:
                hb_processed += 1
                if hb_processed % hb == 0:
                    self._heartbeat(hb_processed, hb_total, row[0], runtimes)
            if tag == CE_TAG:
                # row = (t, dimm_code, server_code, rows_data_tuple)
                t = row[0]
                code = row[1]
                states = states_by[p]
                state = states.get(code)
                if state is None:
                    state = state_for_by[p](dimm_name_by[p](code))
                    states[code] = state
                    state_configs_by[p][code] = configs_by[p].get(
                        state.dimm_id
                    )
                if not state.server_id:
                    state.server_id = server_name_by[p](row[2])
                state.add_ce_row(t, row[3])
                if t < live_by[p] or len(state.times) < min_ces:
                    continue
                config = state_configs_by[p][code]
                if config is None:
                    continue
                last = last_scored_by[p].get(code)
                if last is not None and t - last < rescore:
                    continue
                if coherent and state.dimm_id in pending_dimms_by[p]:
                    # Settle the queue so this DIMM's earlier score can
                    # open its incident before we gate the new candidate.
                    flush(runtimes[p], report)
                if blocked_by[p](state.dimm_id, t):
                    continue
                t0 = time.perf_counter()
                features = serve_by[p](state, config, t)
                feature_seconds += time.perf_counter() - t0
                last_scored_by[p][code] = t
                scored_dimms_by[p].add(code)
                pending = pending_by[p]
                pending_dimms_by[p].add(state.dimm_id)
                pending.append((state.dimm_id, t, features))
                if len(pending) >= batch_size:
                    flush(runtimes[p], report)
            elif tag == UE_TAG:
                # row = (t, dimm_code)
                rt = runtimes[p]
                if rt.pending:
                    # Settle this platform's queued scores so alarm-vs-
                    # failure ordering holds; other platforms' queues are
                    # untouched (their DIMMs are unaffected by this UE).
                    flush(rt, report)
                code = row[1]
                state = rt.states.pop(code, None)
                if state is not None:
                    rt.retired_fallbacks += state.fallbacks
                    rt.retired_rebuilds += state.rebuilds
                predictable = state is not None and len(state.times) >= min_ces
                dimm_id = (
                    state.dimm_id if state is not None
                    else rt.dimm_name(code)
                )
                t0 = time.perf_counter()
                rt.alarms.on_ue(dimm_id, row[0], predictable=predictable)
                alarm_seconds += time.perf_counter() - t0
                rt.last_scored.pop(code, None)
                if self.policy is not None:
                    self.policy.advance(row[0])
            else:
                # row = (t, dimm_code, kind_code)
                states = states_by[p]
                code = row[1]
                state = states.get(code)
                if state is None:
                    state = state_for_by[p](dimm_name_by[p](code))
                    states[code] = state
                    state_configs_by[p][code] = configs_by[p].get(
                        state.dimm_id
                    )
                state.add_event_code(row[2], row[0])
        for rt in runtimes:
            if rt.pending:
                flush(rt, report)
        report.seconds = time.perf_counter() - start
        report.stage_seconds["features"] += feature_seconds
        report.stage_seconds["alarms"] += alarm_seconds
        return False

    def _replay_batched(
        self,
        stream: MergedFleetStream,
        stores: dict[str, object],
        runtimes: list[_PlatformRuntime],
        report: FleetReport,
        ckpt: ReplayCheckpointer | None = None,
    ) -> bool:
        """Columnar fast path: per-platform kernels + a merged decision loop.

        One :class:`ReplayKernel` per platform precomputes every scoring
        candidate; the walk then covers only candidates and UEs, merged
        with the same (time, kind, platform) keys as the full stream so
        every sequential decision lands in the per-event order.
        """
        rescore = self.rescore_interval_hours
        batch_size = self.batch_size
        coherent = self.coherent_flush
        policy = self.policy
        alarm_seconds = 0.0

        start = time.perf_counter()
        with self._tracer.span("fleet_replay.kernel_build"):
            kernels = [
                ReplayKernel(
                    rt.assignment.pipeline,
                    stores[platform].columns,
                    rt.assignment.configs,
                    min_ces_before_scoring=self.min_ces_before_scoring,
                    live_from_hour=rt.live_from,
                )
                for platform, rt in zip(stream.platforms, runtimes)
            ]

        # Global candidate/UE selection in merged-stream order.  Stability
        # of the lexsort keeps each platform's CE-table order on ties, so
        # per-platform subsequences equal the single-platform walk.
        parts: dict[str, list] = {
            "t": [], "tag": [], "plat": [], "idx": [], "code": [], "rank": [],
        }
        cand_dimms_by, row_of_by, fallback_by, ue_pred_by = [], [], [], []
        for i, kernel in enumerate(kernels):
            cand = np.flatnonzero(kernel.eligible)
            parts["t"] += [kernel.ce_times[cand], kernel.ue_times]
            parts["tag"] += [
                np.zeros(cand.size, dtype=np.int8),
                np.ones(kernel.n_ue, dtype=np.int8),
            ]
            parts["plat"] += [
                np.full(cand.size, i, dtype=np.int32),
                np.full(kernel.n_ue, i, dtype=np.int32),
            ]
            parts["idx"] += [cand, np.arange(kernel.n_ue, dtype=np.int64)]
            parts["code"] += [
                kernel.ce_codes[cand].astype(np.int64),
                kernel.ue_codes.astype(np.int64),
            ]
            parts["rank"] += [
                np.arange(cand.size, dtype=np.int64),
                np.full(kernel.n_ue, -1, dtype=np.int64),
            ]
            cand_dimms_by.append([
                kernel.seg_dimm_ids[s]
                for s in kernel.seg_of_ce[cand].tolist()
            ])
            row_of_by.append(kernel.row_of.tolist())
            fallback_by.append(kernel.fallback.tolist())
            ue_pred_by.append(kernel.ue_predictable.tolist())
        sel = {k: np.concatenate(v) for k, v in parts.items()}
        order = np.lexsort((sel["plat"], sel["tag"], sel["t"]))

        blocked_until_by: list[dict] = [{} for _ in runtimes]
        dimm_cache_by: list[dict] = [{} for _ in runtimes]
        served_fallbacks = [0] * len(runtimes)
        if ckpt is not None and ckpt.resume_state is not None:
            snap = pickle.loads(ckpt.resume_state["state"])
            for i, rt in enumerate(runtimes):
                rt.alarms = snap["alarms"][i]
                rt.alarms.bus = self.bus
                rt.last_scored = snap["last_scored"][i]
                rt.scored_dimms = snap["scored_dimms"][i]
                rt.pending = snap["pending"][i]
                rt.pending_dimms = {entry[0] for entry in rt.pending}
                rt.scored = snap["scored"][i]
                rt.batches = snap["batches"][i]
            self.policy = policy = snap["policy"]
            self.score_logs = snap["score_logs"]
            blocked_until_by = snap["blocked_until"]
            dimm_cache_by = snap["dimm_cache"]
            served_fallbacks = snap["served_fallbacks"]
            self.bus.restore_counts(ckpt.resume_state["bus_counts"])
            order = order[ckpt.position:]
        alarms_by = [rt.alarms for rt in runtimes]
        fast_alarms = [type(a) is AlarmManager for a in alarms_by]
        last_scored_by = [rt.last_scored for rt in runtimes]
        scored_dimms_by = [rt.scored_dimms for rt in runtimes]
        pending_by = [rt.pending for rt in runtimes]
        pending_dimms_by = [rt.pending_dimms for rt in runtimes]
        dimm_name_by = [rt.dimm_name for rt in runtimes]

        def snapshot() -> dict:
            # The kernels and merged order are deterministic functions of
            # the stores — only the sequential decision state is persisted.
            for a in alarms_by:
                a.bus = None
            try:
                blob = pickle.dumps(
                    {
                        "alarms": alarms_by,
                        "last_scored": last_scored_by,
                        "scored_dimms": scored_dimms_by,
                        "pending": pending_by,
                        "blocked_until": blocked_until_by,
                        "dimm_cache": dimm_cache_by,
                        "served_fallbacks": served_fallbacks,
                        "scored": [rt.scored for rt in runtimes],
                        "batches": [rt.batches for rt in runtimes],
                        "policy": self.policy,
                        "score_logs": self.score_logs,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            finally:
                for a in alarms_by:
                    a.bus = self.bus
            return {"state": blob, "bus_counts": self.bus.counts()}

        iters = zip(
            sel["tag"][order].tolist(),
            sel["plat"][order].tolist(),
            sel["idx"][order].tolist(),
            sel["t"][order].tolist(),
            sel["code"][order].tolist(),
            sel["rank"][order].tolist(),
        )
        hb = self.heartbeat_every if self.obs is not None else 0
        hb_total = int(sel["t"].size)
        hb_processed = 0
        for tag, p, index, t, code, rank in iters:
            if ckpt is not None and ckpt.step(snapshot):
                report.seconds = time.perf_counter() - start
                return True
            if hb:
                hb_processed += 1
                if hb_processed % hb == 0:
                    self._heartbeat(hb_processed, hb_total, t, runtimes)
            if tag == 0:
                if rescore > 0:
                    last = last_scored_by[p].get(code)
                    if last is not None and t - last < rescore:
                        continue
                blocked_until = blocked_until_by[p]
                bound = blocked_until.get(code)
                if bound is not None:
                    if t <= bound:
                        continue
                    del blocked_until[code]
                dimm_id = cand_dimms_by[p][rank]
                if coherent and dimm_id in pending_dimms_by[p]:
                    # Settle the queue so this DIMM's earlier score can
                    # open its incident before we gate the new candidate.
                    self._flush_batched(runtimes[p], kernels[p], report)
                alarms = alarms_by[p]
                if alarms.blocked(dimm_id, t):
                    if fast_alarms[p]:
                        blocked_until[code] = alarms.open_until(dimm_id)
                    continue
                if fallback_by[p][index]:
                    served_fallbacks[p] += 1
                if rescore > 0:
                    last_scored_by[p][code] = t
                scored_dimms_by[p].add(code)
                pending = pending_by[p]
                pending_dimms_by[p].add(dimm_id)
                pending.append((dimm_id, t, row_of_by[p][index]))
                if len(pending) >= batch_size:
                    self._flush_batched(runtimes[p], kernels[p], report)
            else:
                rt = runtimes[p]
                if rt.pending:
                    # Settle this platform's queued scores so alarm-vs-
                    # failure ordering holds; other platforms' queues are
                    # untouched (their DIMMs are unaffected by this UE).
                    self._flush_batched(rt, kernels[p], report)
                cache = dimm_cache_by[p]
                dimm_id = cache.get(code)
                if dimm_id is None:
                    dimm_id = cache[code] = dimm_name_by[p](code)
                t0 = time.perf_counter()
                rt.alarms.on_ue(dimm_id, t, predictable=ue_pred_by[p][index])
                alarm_seconds += time.perf_counter() - t0
                blocked_until_by[p].pop(code, None)
                rt.last_scored.pop(code, None)
                if policy is not None:
                    policy.advance(t)
        for rt, kernel in zip(runtimes, kernels):
            if rt.pending:
                self._flush_batched(rt, kernel, report)
        report.seconds = time.perf_counter() - start
        report.stage_seconds["alarms"] += alarm_seconds
        for rt, count in zip(runtimes, served_fallbacks):
            rt.retired_fallbacks = count
        return False

    def _buffer(
        self, rt: _PlatformRuntime, n: int, width: int
    ) -> np.ndarray:
        """The runtime's reused micro-batch score matrix."""
        buf = rt.matrix_buf
        if buf is None or buf.shape[0] < n or buf.shape[1] != width:
            buf = rt.matrix_buf = np.empty((max(n, self.batch_size), width))
        return buf

    def _flush(self, rt: _PlatformRuntime, report: FleetReport) -> None:
        """Score one platform's micro-batch; route alarms through policy."""
        pending = rt.pending
        n = len(pending)
        matrix = self._buffer(rt, n, pending[0][2].shape[0])[:n]
        for i, (_, _, features) in enumerate(pending):
            matrix[i] = features
        self._score_batch(rt, matrix, report)

    def _flush_batched(
        self, rt: _PlatformRuntime, kernel: ReplayKernel, report: FleetReport
    ) -> None:
        """Materialise one batched micro-batch's features, score, alarm."""
        pending = rt.pending
        n = len(pending)
        buf = self._buffer(rt, n, kernel.n_features)
        rows = np.fromiter(
            (row for _, _, row in pending), dtype=np.int64, count=n
        )
        t0 = time.perf_counter()
        matrix = kernel.features_for(rows, out=buf[:n])
        report.stage_seconds["features"] += time.perf_counter() - t0
        self._score_batch(rt, matrix, report)

    def _score_batch(
        self, rt: _PlatformRuntime, matrix: np.ndarray, report: FleetReport
    ) -> None:
        pending = rt.pending
        t0 = time.perf_counter()
        scores = rt.assignment.model.predict_proba(matrix)
        t1 = time.perf_counter()
        rt.predict_seconds += t1 - t0
        threshold = rt.threshold
        platform = rt.assignment.platform
        policy = self.policy
        log = self.score_logs.get(platform) if self.collect_scores else None
        for (dimm_id, t, _), score in zip(pending, scores):
            value = float(score)
            if log is not None:
                log.append((dimm_id, t, value))
            if value >= threshold:
                incident = rt.alarms.on_alarm(dimm_id, t, value)
                if incident is not None and policy is not None:
                    policy.on_incident(platform, incident)
        rt.scored += len(pending)
        rt.batches += 1
        report.stage_seconds["alarms"] += time.perf_counter() - t1
        pending.clear()
        rt.pending_dimms.clear()

    def _finalize(
        self,
        stream: MergedFleetStream,
        report: FleetReport,
        rejects: dict[str, object] | None = None,
    ) -> None:
        """Close incidents, settle costs, assemble the fleet report."""
        rejects = rejects if rejects is not None else {}
        end_hours = dict(stream.end_hours)
        if self.end_hours:
            for platform, end in self.end_hours.items():
                if platform in end_hours:
                    end_hours[platform] = float(end)
        # Drain the shared action queue to the fleet's global end BEFORE
        # settling any platform: the scheduler is fleet-wide, so a
        # per-platform drain would make cost summaries depend on the
        # spec's platform order (and disagree with the action summary).
        if self.policy is not None:
            self.policy.advance(max(end_hours.values()))
        summaries = []
        for platform in stream.platforms:
            rt = self.runtimes[platform]
            rt.alarms.finalize(end_hours[platform])
            counts = stream.counts[platform]
            alarm_summary = rt.alarms.summary(rt.live_from)
            platform_rejects = rejects.get(platform)
            platform_health = {
                "rejected_events": (
                    platform_rejects.total if platform_rejects else 0
                ),
                "rejects": (
                    dict(platform_rejects.by_reason) if platform_rejects
                    else {}
                ),
                "fallback_scores": rt.fallbacks(),
                "late_rebuilds": rt.rebuilds(),
                "outage_seconds": 0.0,
            }
            platform_report = {
                "model": rt.assignment.model_name,
                "train_platform": rt.assignment.train_platform,
                "threshold": rt.threshold,
                "live_from_hour": rt.live_from,
                "events": sum(counts.values()),
                "ces": counts["ces"],
                "ues": counts["ues"],
                "mem_events": counts["events"],
                "scored": rt.scored,
                "batches": rt.batches,
                "scored_dimms": len(rt.scored_dimms),
                "fallbacks": rt.fallbacks(),
                "alarms": alarm_summary,
                "health": platform_health,
            }
            report.platforms[platform] = platform_report
            report.scored += rt.scored
            report.predict_seconds += rt.predict_seconds
            summary, ledger = self.cost_model.settle(
                platform,
                rt.alarms,
                self.policy if self.policy is not None else _NULL_POLICY,
                rt.live_from,
            )
            self.cost_summaries[platform] = summary
            self.ledgers[platform] = ledger
            summaries.append(summary)
            report.costs[platform] = summary.to_dict()
        fleet = combine_summaries(summaries)
        self.cost_summaries["fleet"] = fleet
        report.fleet_cost = fleet.to_dict()
        report.actions = (
            self.policy.summary() if self.policy is not None else {}
        )
        report.events = stream.events
        report.events_per_second = (
            report.events / report.seconds if report.seconds > 0 else 0.0
        )
        report.bus_counts = self.bus.counts()
        fleet_rejects: dict[str, int] = {}
        for platform_rejects in rejects.values():
            for reason, count in platform_rejects.by_reason.items():
                fleet_rejects[reason] = fleet_rejects.get(reason, 0) + count
        report.health = {
            "rejected_events": sum(r.total for r in rejects.values()),
            "rejects": fleet_rejects,
            "fallback_scores": sum(
                rt.fallbacks() for rt in self.runtimes.values()
            ),
            "late_rebuilds": sum(
                rt.rebuilds() for rt in self.runtimes.values()
            ),
            "outage_seconds": 0.0,
        }


class _NullPolicy:
    """Stand-in when no policy engine is wired: no actions were taken."""

    def action_for_incident(self, platform, incident):
        return None


_NULL_POLICY = _NullPolicy()
