"""Incident-aware mitigation policy: alarms -> scheduled actions.

PR 4 terminated every alarm in a boolean ledger; production fleets act.
This module turns each opened :class:`~repro.streaming.alarms.Incident`
into a concrete mitigation action and pushes it through a capacity-aware
scheduler:

* the **policy** tiers incidents by score into ``vm_migrate`` (drain the
  server before the failure), ``bank_spare`` (ADDDC-class repair) or
  ``page_offline`` (retire the hot rows) — the same three rungs the RAS
  layer models (:mod:`repro.ras.sparing`, :mod:`repro.ras.page_offlining`)
  and the migration orchestrator draws from
  (:class:`~repro.ras.mitigation.MitigationPolicy`);
* the **scheduler** enforces per-window budgets (a fleet cannot live-
  migrate every alarming server at once): an action that finds its
  window's capacity exhausted falls back to the next-cheaper rung with
  headroom, else queues and executes at the start of the first window
  with free capacity;
* each executed action draws a success outcome from a seeded generator —
  success probabilities default to the RAS policies' residual-rate
  complements, so the knobs stay in one place.

Everything downstream (protection, interruption, money) is settled by
:mod:`repro.fleetops.cost`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.ras.mitigation import MitigationPolicy
from repro.ras.page_offlining import PageOffliningPolicy
from repro.ras.sparing import SparingKind, SparingPolicy
from repro.streaming.alarms import Incident


class MitigationAction(enum.Enum):
    """One mitigation rung, ordered most- to least-disruptive."""

    VM_MIGRATE = "vm_migrate"
    BANK_SPARE = "bank_spare"
    PAGE_OFFLINE = "page_offline"


#: Fallback order when a rung's window budget is exhausted: step down to
#: the next-cheaper action before queueing.
FALLBACK_ORDER = (
    MitigationAction.VM_MIGRATE,
    MitigationAction.BANK_SPARE,
    MitigationAction.PAGE_OFFLINE,
)


def _default_success_rates() -> dict:
    """Success odds derived from the existing RAS/mitigation policies.

    * ``vm_migrate``: the orchestrator's live-migration success rate;
    * ``bank_spare``: the sparing policy's bank repair keeps
      ``1 - residual_rate`` of the escalation risk away;
    * ``page_offline``: likewise from the offlining policy's row residual.
    """
    mitigation = MitigationPolicy()
    sparing = SparingPolicy()
    offlining = PageOffliningPolicy()
    return {
        MitigationAction.VM_MIGRATE: mitigation.live_migration_success,
        MitigationAction.BANK_SPARE: 1.0 - sparing.residual_rate[SparingKind.BANK],
        MitigationAction.PAGE_OFFLINE: 1.0 - offlining.residual_rate_row,
    }


@dataclass(frozen=True)
class ActionBudget:
    """Per-window action capacities (the scheduler's knobs)."""

    window_hours: float = 24.0
    vm_migrate: int = 4
    bank_spare: int = 8
    page_offline: int = 32

    def capacity(self, action: MitigationAction) -> int:
        return int(getattr(self, action.value))

    @classmethod
    def from_params(cls, params: dict | None) -> "ActionBudget":
        """Build from a (possibly JSON-deserialised) params mapping."""
        params = dict(params or {})
        unknown = set(params) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(
                f"unknown budget keys {sorted(unknown)}; valid: "
                f"{sorted(cls.__dataclass_fields__)}"
            )
        budget = cls(**params)
        if budget.window_hours <= 0:
            raise ValueError("budget window_hours must be positive")
        for action in MitigationAction:
            if budget.capacity(action) < 0:
                raise ValueError(f"budget {action.value} must be >= 0")
        return budget


@dataclass
class ScheduledAction:
    """One mitigation decision for one incident."""

    platform: str
    dimm_id: str
    opened_hour: float
    requested: MitigationAction
    action: MitigationAction  # after any capacity fallback
    requested_hour: float
    executed_hour: float | None = None  # None while queued
    success: bool | None = None  # drawn at execution
    #: Scheduler memo: next window index worth scanning (windows before it
    #: were already seen full, and consumed capacity never frees up).
    scan_window: int | None = None

    @property
    def executed(self) -> bool:
        return self.executed_hour is not None

    @property
    def wait_hours(self) -> float:
        if self.executed_hour is None:
            return 0.0
        return self.executed_hour - self.requested_hour

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "dimm_id": self.dimm_id,
            "opened_hour": self.opened_hour,
            "requested": self.requested.value,
            "action": self.action.value,
            "requested_hour": self.requested_hour,
            "executed_hour": self.executed_hour,
            "success": self.success,
        }


class ActionScheduler:
    """Windowed-capacity scheduler with FIFO overflow queues.

    Time only moves forward (the replay feeds events in merge order), so
    window bookkeeping is a dict keyed on ``(window_index, action)`` and
    queued actions drain lazily whenever the clock advances.
    """

    def __init__(self, budget: ActionBudget | None = None):
        self.budget = budget or ActionBudget()
        self._used: dict[tuple[int, MitigationAction], int] = {}
        self._capacity = {
            action: self.budget.capacity(action)
            for action in MitigationAction
        }
        self._queue: deque[ScheduledAction] = deque()
        self.executed = 0
        self.queued = 0

    def _window(self, hour: float) -> int:
        return int(hour // self.budget.window_hours)

    def has_capacity(self, action: MitigationAction, hour: float) -> bool:
        key = (self._window(hour), action)
        return self._used.get(key, 0) < self._capacity[action]

    def _consume(self, action: MitigationAction, hour: float) -> None:
        key = (self._window(hour), action)
        self._used[key] = self._used.get(key, 0) + 1

    def try_execute(self, action: MitigationAction, hour: float) -> bool:
        """Consume capacity for an immediate execution; False when full."""
        if not self.has_capacity(action, hour):
            return False
        self._consume(action, hour)
        self.executed += 1
        return True

    def enqueue(self, scheduled: ScheduledAction) -> None:
        self._queue.append(scheduled)
        self.queued += 1

    def drain(self, now: float, on_execute) -> None:
        """Execute queued actions whose turn arrived at or before ``now``.

        FIFO: the head runs at the *start* of the first window after its
        request in which any rung from its requested action down the
        fallback ladder has capacity (the same degradation rule as
        immediate execution); later entries wait behind it.
        ``on_execute(scheduled, hour)`` settles the outcome (success draw)
        in deterministic order.
        """
        window_hours = self.budget.window_hours
        now_window = self._window(now)
        used = self._used
        capacity = self._capacity
        while self._queue:
            head = self._queue[0]
            ladder = FALLBACK_ORDER[FALLBACK_ORDER.index(head.requested):]
            window = head.scan_window
            if window is None:
                window = self._window(head.requested_hour) + 1
            chosen = None
            while window <= now_window and chosen is None:
                for action in ladder:
                    if used.get((window, action), 0) < capacity[action]:
                        chosen = action
                        break
                if chosen is None:
                    window += 1
            if chosen is None:
                # The head's turn has not arrived: every window up to now's
                # is full for its ladder, and consumed capacity never frees
                # up, so the next drain can resume the scan past them.
                head.scan_window = max(window, now_window + 1)
                break
            self._queue.popleft()
            hour = window * window_hours
            head.action = chosen
            self._consume(chosen, hour)
            self.executed += 1
            on_execute(head, hour)

    def pending(self) -> int:
        return len(self._queue)


@dataclass(frozen=True)
class MitigationPolicyConfig:
    """Score tiers mapping incident severity to a mitigation rung."""

    vm_migrate_score: float = 0.95
    bank_spare_score: float = 0.80
    success_rates: dict = field(default_factory=_default_success_rates)

    def action_for(self, score: float) -> MitigationAction:
        if score >= self.vm_migrate_score:
            return MitigationAction.VM_MIGRATE
        if score >= self.bank_spare_score:
            return MitigationAction.BANK_SPARE
        return MitigationAction.PAGE_OFFLINE

    @classmethod
    def from_params(cls, params: dict | None) -> "MitigationPolicyConfig":
        params = dict(params or {})
        unknown = set(params) - {"vm_migrate_score", "bank_spare_score"}
        if unknown:
            raise ValueError(
                f"unknown policy keys {sorted(unknown)}; valid: "
                f"['bank_spare_score', 'vm_migrate_score']"
            )
        config = cls(**params)
        if not config.bank_spare_score <= config.vm_migrate_score:
            raise ValueError(
                "policy requires bank_spare_score <= vm_migrate_score"
            )
        return config


class PolicyEngine:
    """Routes every opened incident to a scheduled mitigation action."""

    def __init__(
        self,
        policy: MitigationPolicyConfig | None = None,
        budget: ActionBudget | None = None,
        seed: int = 7,
    ):
        self.policy = policy or MitigationPolicyConfig()
        self.scheduler = ActionScheduler(budget)
        self.rng = np.random.default_rng(seed)
        #: One action per incident, keyed on (platform, dimm, opened hour).
        self.actions: dict[tuple[str, str, float], ScheduledAction] = {}
        self.fallbacks = 0

    def _execute(self, scheduled: ScheduledAction, hour: float) -> None:
        if scheduled.action is not scheduled.requested:
            self.fallbacks += 1
        scheduled.executed_hour = hour
        scheduled.success = bool(
            self.rng.random() < self.policy.success_rates[scheduled.action]
        )

    def on_incident(self, platform: str, incident: Incident) -> ScheduledAction:
        """Choose, and if capacity allows execute, one incident's action."""
        now = incident.opened_hour
        self.scheduler.drain(now, self._execute)
        requested = self.policy.action_for(incident.score)
        scheduled = ScheduledAction(
            platform=platform,
            dimm_id=incident.dimm_id,
            opened_hour=incident.opened_hour,
            requested=requested,
            action=requested,
            requested_hour=now,
        )
        start = FALLBACK_ORDER.index(requested)
        chosen = None
        for action in FALLBACK_ORDER[start:]:
            if self.scheduler.try_execute(action, now):
                chosen = action
                break
        if chosen is not None:
            scheduled.action = chosen
            self._execute(scheduled, now)
        else:
            self.scheduler.enqueue(scheduled)
        self.actions[
            (platform, incident.dimm_id, incident.opened_hour)
        ] = scheduled
        return scheduled

    def advance(self, now: float) -> None:
        """Drain queues up to ``now`` (call at UEs and at end of replay)."""
        self.scheduler.drain(now, self._execute)

    def action_for_incident(
        self, platform: str, incident: Incident
    ) -> ScheduledAction | None:
        return self.actions.get(
            (platform, incident.dimm_id, incident.opened_hour)
        )

    def summary(self) -> dict:
        executed = [a for a in self.actions.values() if a.executed]
        by_action = {action.value: 0 for action in MitigationAction}
        succeeded = {action.value: 0 for action in MitigationAction}
        for action in executed:
            by_action[action.action.value] += 1
            if action.success:
                succeeded[action.action.value] += 1
        waits = [a.wait_hours for a in executed if a.wait_hours > 0]
        return {
            "requested": len(self.actions),
            "executed": len(executed),
            "pending": self.scheduler.pending(),
            "fallbacks": self.fallbacks,
            "by_action": by_action,
            "succeeded": succeeded,
            "queued_executions": len(waits),
            "max_wait_hours": max(waits) if waits else 0.0,
        }
