"""The ``fleet_ops`` scenario: heterogeneous fleet replay end to end.

One run = one multi-architecture datacenter:

1. every platform in the spec is simulated / served from the artifact
   cache, and its production model is resolved from the **assignments**
   param — by default each platform serves a model trained on itself;
   ``{"k920": {"train_platform": "intel_purley"}}`` reuses the
   transfer-matrix machinery to serve k920 with a purley-trained model;
2. each model is fitted once on its training platform's splits and its
   serving threshold derived there (exactly the ``streaming_replay``
   calibration), so the fleet's grid of cells lines up with the offline
   transfer matrix;
3. the whole fleet's telemetry is merged into ONE stream and replayed in
   a single pass through :class:`~repro.fleetops.engine.FleetReplayEngine`
   with per-platform alarm managers, the shared capacity-aware
   :class:`~repro.fleetops.policy.PolicyEngine`, and the
   :class:`~repro.fleetops.cost.CostModel`;
4. cells report alarm-level precision/recall per (train, serve) pair with
   the cost model's exact VIRR, and ``extras["fleet_ops"]`` carries the
   full operations story: throughput, actions (executed / queued /
   fallbacks), and per-platform plus fleet-wide cost summaries.

Scenario parameters (``spec.params``, all optional):

* ``assignments`` — ``{platform: {"model": name, "train_platform": name}}``
* ``policy`` — ``{"vm_migrate_score": .., "bank_spare_score": ..}``
* ``budget`` — ``{"window_hours": .., "vm_migrate": .., "bank_spare": ..,
  "page_offline": ..}``
* ``costs`` — :class:`~repro.fleetops.cost.ActionCosts` fields
* ``batch_size`` (default 256), ``rescore_interval_hours`` (default the
  5-minute production cadence), ``collect_scores`` (parity tooling),
  ``engine`` (``"batched"`` column-wise replay kernels, or
  ``"per_event"`` — the pure-Python reference loop)
* ``replay_workers`` — > 1 runs the merged replay through the
  distributed :class:`~repro.distributed.coordinator.ReplayCoordinator`
  (DIMM-sharded worker processes, coherent-flush contract)
"""

from __future__ import annotations

from repro.evaluation.experiment import MODEL_BUILDERS, ModelResult
from repro.experiments.registry import register_scenario
from repro.experiments.results import Cell
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.fleetops.cost import ActionCosts, CostModel
from repro.fleetops.engine import FleetReplayEngine, ServingAssignment
from repro.fleetops.policy import (
    ActionBudget,
    MitigationPolicyConfig,
    PolicyEngine,
)
from repro.fleetops.stream import merge_fleet_streams
from repro.streaming.bus import EventBus
from repro.streaming.replay import REPLAY_ENGINES
from repro.streaming.scenario import (
    DEFAULT_RESCORE_INTERVAL_HOURS,
    serving_threshold,
)


def resolve_assignments(spec) -> dict[str, dict]:
    """Per-platform ``{"model": .., "train_platform": ..}`` with defaults.

    Raises a clear error for unknown platforms, unknown keys, or a
    ``train_platform`` outside the spec (its artifacts would bypass the
    run's cache accounting).
    """
    raw = (spec.params or {}).get("assignments", {})
    if not isinstance(raw, dict):
        raise ValueError("params.assignments must be a JSON object")
    unknown = set(raw) - set(spec.platforms)
    if unknown:
        raise ValueError(
            f"assignments for platforms not in spec.platforms: "
            f"{sorted(unknown)}"
        )
    default_model = spec.models[0]
    resolved = {}
    for platform in spec.platforms:
        entry = raw.get(platform, {})
        if not isinstance(entry, dict):
            raise ValueError(
                f"assignments[{platform!r}] must be a JSON object"
            )
        bad_keys = set(entry) - {"model", "train_platform"}
        if bad_keys:
            raise ValueError(
                f"assignments[{platform!r}] has unknown keys "
                f"{sorted(bad_keys)}; valid: ['model', 'train_platform']"
            )
        train_platform = entry.get("train_platform", platform)
        if train_platform not in spec.platforms:
            raise ValueError(
                f"assignments[{platform!r}].train_platform "
                f"{train_platform!r} is not in spec.platforms "
                f"{list(spec.platforms)}"
            )
        resolved[platform] = {
            "model": entry.get("model", default_model),
            "train_platform": train_platform,
        }
    return resolved


def build_serving_assignments(ctx, assignments_spec):
    """Fit models + thresholds for every (serve, train) pair in the spec.

    Returns ``(stores, assignments, cells, unsupported)`` — the shared
    front half of ``fleet_ops`` and ``distributed_replay``: per-platform
    stores, picklable :class:`ServingAssignment` objects, pre-filled
    unsupported-cells, and the list of skipped platforms.
    """
    stores = {}
    assignments: dict[str, ServingAssignment] = {}
    cells: list[Cell] = []
    unsupported: list[str] = []
    #: (train_platform, model_name) -> (fitted model, threshold): serving
    #: platforms sharing a source share ONE fit (fits are deterministic).
    fitted: dict[tuple[str, str], tuple[object, float]] = {}
    for platform in ctx.spec.platforms:
        entry = assignments_spec[platform]
        model_name, train_platform = entry["model"], entry["train_platform"]
        source = ctx.experiment(train_platform)
        builder = MODEL_BUILDERS[model_name]
        probe = builder(source.samples.feature_names, ctx.protocol.seed)
        supports = getattr(probe, "supports", None)
        if supports is not None and not (
            supports(train_platform) and supports(platform)
        ):
            cells.append(
                Cell(train_platform, platform, model_name,
                     ModelResult(platform=platform, model_name=model_name,
                                 supported=False))
            )
            unsupported.append(platform)
            continue
        shared = fitted.get((train_platform, model_name))
        if shared is None:
            # Fit once on the training platform's splits (deterministic, so
            # it matches the transfer matrix's shared-fit row) and calibrate
            # the serving threshold there — no serving-platform labels are
            # used.  Cross-architecture assignments reuse the same fit.
            model = probe
            model.fit(
                source.train.X,
                source.train.y,
                eval_set=(source.validation.X, source.validation.y),
            )
            shared = (
                model,
                serving_threshold(model, source.train, source.validation),
            )
            fitted[(train_platform, model_name)] = shared
        model, threshold = shared
        simulation = ctx.simulation(platform)
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=ctx.protocol.labeling, sampling=ctx.protocol.sampling
            )
        )
        pipeline.fit(simulation.store)
        stores[platform] = simulation.store
        hours = ctx.effective_hours(platform)
        assignments[platform] = ServingAssignment(
            platform=platform,
            model_name=model_name,
            train_platform=train_platform,
            model=model,
            threshold=threshold,
            pipeline=pipeline,
            configs=simulation.store.configs,
            live_from_hour=ctx.protocol.sampling.train_fraction * hours,
        )
    return stores, assignments, cells, unsupported


@register_scenario("fleet_ops")
def fleet_ops(ctx):
    """Replay the merged heterogeneous fleet with mitigation + costs."""
    params = ctx.spec.params or {}
    batch_size = int(params.get("batch_size", 256))
    rescore = float(
        params.get("rescore_interval_hours", DEFAULT_RESCORE_INTERVAL_HOURS)
    )
    collect_scores = bool(params.get("collect_scores", False))
    replay_engine = str(params.get("engine", "batched"))
    replay_workers = int(params.get("replay_workers", 0))
    heartbeat_every = int(params.get("heartbeat_every", 0) or 0)
    if replay_engine not in REPLAY_ENGINES:
        raise ValueError(
            f"unknown replay engine {replay_engine!r}; "
            f"valid: {list(REPLAY_ENGINES)}"
        )
    assignments_spec = resolve_assignments(ctx.spec)
    policy = PolicyEngine(
        policy=MitigationPolicyConfig.from_params(params.get("policy")),
        budget=ActionBudget.from_params(params.get("budget")),
        seed=ctx.protocol.seed,
    )
    cost_model = CostModel(ActionCosts.from_params(params.get("costs")))

    stores, assignments, cells, unsupported = build_serving_assignments(
        ctx, assignments_spec
    )
    if not assignments:
        raise ValueError(
            "fleet_ops: no supported (platform, model) assignment in spec"
        )

    if replay_workers > 1:
        # Sharded path: N workers over DIMM partitions.  The coordinator
        # runs coherent-flush workers and applies mitigation in canonical
        # incident order — its contract (see repro.distributed) — so the
        # merged report is deterministic for any worker count.
        from repro.distributed.coordinator import ReplayCoordinator

        coordinator = ReplayCoordinator(
            assignments,
            ctx.protocol.labeling,
            policy=policy,
            cost_model=cost_model,
            bus=EventBus(),
            workers=replay_workers,
            rescore_interval_hours=rescore,
            batch_size=batch_size,
            engine=replay_engine,
            obs=ctx.obs,
            heartbeat_every=heartbeat_every,
        )
        report = coordinator.replay(stores)
        return _fleet_cells_extras(
            report, coordinator.cost_summaries, assignments,
            assignments_spec, cells, unsupported,
        )

    # -- one merged pass ---------------------------------------------------
    # The batched kernels rebuild the merged order from the columnar
    # stores, so the stream stays a manifest; the per-event reference
    # needs the payloads decoded.
    stream = merge_fleet_streams(
        stores, decode_payloads=(replay_engine == "per_event")
    )
    engine = FleetReplayEngine(
        assignments,
        labeling=ctx.protocol.labeling,
        policy=policy,
        cost_model=cost_model,
        bus=EventBus(),
        rescore_interval_hours=rescore,
        batch_size=batch_size,
        engine=replay_engine,
        collect_scores=collect_scores,
        obs=ctx.obs,
        heartbeat_every=heartbeat_every,
    )
    report = engine.replay(stream, stores)
    return _fleet_cells_extras(
        report, engine.cost_summaries, assignments, assignments_spec,
        cells, unsupported,
    )


def _fleet_cells_extras(
    report, cost_summaries, assignments, assignments_spec, cells, unsupported
):
    """Shared back half: per-assignment cells + the ``fleet_ops`` extras."""
    for platform, assignment in assignments.items():
        summary = report.platforms[platform]["alarms"]
        cost = cost_summaries[platform]
        cells.append(
            Cell(
                assignment.train_platform, platform, assignment.model_name,
                ModelResult(
                    platform=platform,
                    model_name=assignment.model_name,
                    supported=True,
                    precision=summary["precision"],
                    recall=summary["recall"],
                    f1=summary["f1"],
                    virr=cost.virr.virr if cost.virr is not None else 0.0,
                    threshold=float(assignment.threshold),
                    test_dimms=report.platforms[platform]["scored_dimms"],
                    test_positive_dimms=summary["ue_dimms_predictable"],
                ),
            )
        )
    extras = {
        "fleet_ops": {
            "report": report.to_dict(),
            "assignments": {
                platform: dict(entry)
                for platform, entry in assignments_spec.items()
            },
            "unsupported": unsupported,
        }
    }
    return cells, extras


def render_fleet_extras(extras: dict) -> str:
    """Human-readable summary of the scenario's ``extras`` payload."""
    payload = extras.get("fleet_ops")
    if not payload:
        return ""
    report = payload["report"]
    lines = [
        "FLEET OPERATIONS",
        f"  merged replay: {report['events']} events in "
        f"{report['seconds']:.2f}s ({report['events_per_second']:.0f} ev/s, "
        f"engine={report.get('engine', 'per_event')}), "
        f"scored={report['scored']}",
    ]
    stages = report.get("stage_seconds")
    if stages:
        lines.append(
            "  stages: "
            + " ".join(
                f"{stage}={seconds:.3f}s"
                for stage, seconds in stages.items()
            )
        )
    actions = report.get("actions") or {}
    if actions:
        by_action = " ".join(
            f"{name}={count}" for name, count in actions["by_action"].items()
        )
        lines.append(
            f"  actions: executed={actions['executed']} "
            f"pending={actions['pending']} fallbacks={actions['fallbacks']} "
            f"({by_action}; max queue wait "
            f"{actions['max_wait_hours']:.1f}h)"
        )
    for platform, platform_report in report["platforms"].items():
        alarms = platform_report["alarms"]
        cost = report["costs"][platform]
        lines.append(
            f"  {platform} <- {platform_report['train_platform']}"
            f"/{platform_report['model']}: "
            f"P/R/F1 = {alarms['precision']:.2f}/{alarms['recall']:.2f}/"
            f"{alarms['f1']:.2f}  (tp={alarms['tp']} late={alarms['late']} "
            f"fp={alarms['fp']} censored={alarms['censored']})"
        )
        lines.append(
            f"    cost: protected={cost['protected_dimms']}/"
            f"{cost['ue_dimms']} UE DIMMs, VIRR={cost.get('virr', 0.0):.3f}, "
            f"savings={cost['savings']:.1f} "
            f"({cost['savings_fraction']:+.1%} of baseline "
            f"{cost['baseline_cost']:.1f})"
        )
    fleet = report["fleet_cost"]
    lines.append(
        f"  fleet: protected={fleet['protected_dimms']}/{fleet['ue_dimms']} "
        f"UE DIMMs, VIRR={fleet.get('virr', 0.0):.3f}, "
        f"savings={fleet['savings']:.1f} "
        f"({fleet['savings_fraction']:+.1%} of baseline "
        f"{fleet['baseline_cost']:.1f})"
    )
    return "\n".join(lines)
