"""Interruption-cost accounting: dispositions x actions -> money and VIRR.

"First CE Matters" argues a predictor's worth is the downstream
interruption cost it removes, not its classifier metrics.  This module
settles every incident disposition the :class:`AlarmManager` produced
(tp / late / fp / censored) against the mitigation action the policy
engine took for it:

* a **tp** incident whose action executed with enough lead *and*
  succeeded is **protected** — its UE interrupts nothing;
* a tp whose action was late, queued past the UE, or failed still
  interrupts (the cold-migration analogue);
* **late** and **fp** incidents spend their action's cost for nothing;
* **censored** incidents are excluded from precision-like accounting but
  their action spend is real and stays on the books;
* UE DIMMs that never had a tp incident interrupt in full.

Output is a per-platform :class:`CostSummary` plus a fleet-wide roll-up:
exact VM-interruption terms via :class:`~repro.ml.virr.VirrBreakdown`
(the paper's V / V' bookkeeping), a money column, and a
:class:`~repro.mlops.migration.MigrationLedger` populated with the same
events so the PR-3-era VIRR path stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ml.virr import VirrBreakdown
from repro.mlops.migration import MigrationLedger
from repro.ras.mitigation import MitigationPath
from repro.streaming.alarms import AlarmManager, IncidentStatus
from repro.fleetops.policy import MitigationAction, PolicyEngine, ScheduledAction

#: MigrationLedger path per executed action (the ledger's vocabulary).
_LEDGER_PATHS = {
    MitigationAction.VM_MIGRATE: MitigationPath.LIVE_MIGRATION,
    MitigationAction.BANK_SPARE: MitigationPath.MEMORY_MITIGATION,
    MitigationAction.PAGE_OFFLINE: MitigationPath.MEMORY_MITIGATION,
}


@dataclass(frozen=True)
class ActionCosts:
    """Unit costs (arbitrary currency; only ratios matter)."""

    vms_per_server: float = 10.0
    #: Hard-interrupting one VM (the cost prediction tries to avoid).
    vm_interruption: float = 10.0
    #: Live-migrating one VM off an alarmed server.
    vm_migration: float = 1.0
    #: Flat cost of one ADDDC-class bank-sparing repair.
    bank_spare: float = 2.0
    #: Flat cost of retiring one server's hot pages.
    page_offline: float = 0.5

    def action_cost(self, action: MitigationAction) -> float:
        if action is MitigationAction.VM_MIGRATE:
            return self.vms_per_server * self.vm_migration
        if action is MitigationAction.BANK_SPARE:
            return self.bank_spare
        return self.page_offline

    @property
    def interruption_cost(self) -> float:
        """Hard-interrupting one server's VMs."""
        return self.vms_per_server * self.vm_interruption

    @classmethod
    def from_params(cls, params: dict | None) -> "ActionCosts":
        params = dict(params or {})
        unknown = set(params) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(
                f"unknown cost keys {sorted(unknown)}; valid: "
                f"{sorted(cls.__dataclass_fields__)}"
            )
        costs = cls(**params)
        for name in cls.__dataclass_fields__:
            if getattr(costs, name) < 0:
                raise ValueError(f"cost {name} must be >= 0")
        return costs


@dataclass
class CostSummary:
    """One platform's (or the fleet's) settled replay economics."""

    platform: str
    ue_dimms: int = 0
    protected_dimms: int = 0
    caught_unprotected_dimms: int = 0
    missed_dimms: int = 0
    dispositions: dict = field(default_factory=dict)  # status -> count
    actions: dict = field(default_factory=dict)  # action -> executed count
    wasted_actions: int = 0  # executed for late/fp/censored incidents
    unexecuted_actions: int = 0  # still queued when the replay ended
    action_cost: float = 0.0
    interruption_cost: float = 0.0  # with prediction + mitigation
    baseline_cost: float = 0.0  # every UE DIMM interrupts (no prediction)
    virr: VirrBreakdown | None = None

    @property
    def total_cost(self) -> float:
        return self.action_cost + self.interruption_cost

    @property
    def savings(self) -> float:
        return self.baseline_cost - self.total_cost

    @property
    def savings_fraction(self) -> float:
        if self.baseline_cost == 0:
            return 0.0
        return self.savings / self.baseline_cost

    def to_dict(self) -> dict:
        payload = {
            "platform": self.platform,
            "ue_dimms": self.ue_dimms,
            "protected_dimms": self.protected_dimms,
            "caught_unprotected_dimms": self.caught_unprotected_dimms,
            "missed_dimms": self.missed_dimms,
            "dispositions": dict(self.dispositions),
            "actions": dict(self.actions),
            "wasted_actions": self.wasted_actions,
            "unexecuted_actions": self.unexecuted_actions,
            "action_cost": round(self.action_cost, 4),
            "interruption_cost": round(self.interruption_cost, 4),
            "baseline_cost": round(self.baseline_cost, 4),
            "total_cost": round(self.total_cost, 4),
            "savings": round(self.savings, 4),
            "savings_fraction": round(self.savings_fraction, 6),
        }
        if self.virr is not None:
            payload["virr"] = round(self.virr.virr, 6)
            payload["interruptions_without_prediction"] = (
                self.virr.interruptions_without_prediction
            )
            payload["interruptions_with_prediction"] = (
                self.virr.interruptions_with_prediction
            )
        return payload


class CostModel:
    """Settles alarm dispositions and scheduled actions into money/VIRR."""

    def __init__(self, costs: ActionCosts | None = None):
        self.costs = costs or ActionCosts()

    def _protects(
        self,
        action: ScheduledAction | None,
        ue_hour: float,
        lead_hours: float,
    ) -> bool:
        """Did this incident's action shield the server from its UE?

        Execution must land at least ``lead_hours`` before the failure
        (live migration needs time to drain; repairs need time to take)
        and the drawn outcome must be a success.
        """
        if action is None or not action.executed or not action.success:
            return False
        return action.executed_hour + lead_hours <= ue_hour

    def settle(
        self,
        platform: str,
        alarms: AlarmManager,
        policy: PolicyEngine,
        live_from_hour: float = 0.0,
    ) -> tuple[CostSummary, MigrationLedger]:
        """One platform's replay -> (cost summary, migration ledger)."""
        costs = self.costs
        summary = CostSummary(platform=platform)
        summary.dispositions = {"tp": 0, "late": 0, "fp": 0, "censored": 0}
        summary.actions = {action.value: 0 for action in MitigationAction}
        ledger = MigrationLedger(vms_per_server=costs.vms_per_server)
        protected: set[str] = set()
        caught: set[str] = set()

        for incident in alarms.incidents:
            if incident.opened_hour < live_from_hour:
                continue
            action = policy.action_for_incident(platform, incident)
            if action is not None and action.executed:
                summary.actions[action.action.value] += 1
                summary.action_cost += costs.action_cost(action.action)
                ledger.alarmed_dimms.setdefault(
                    incident.dimm_id, incident.opened_hour
                )
                ledger.record_path(_LEDGER_PATHS[action.action])
            elif action is not None:
                summary.unexecuted_actions += 1

            if incident.status is IncidentStatus.RESOLVED:
                if incident.ue_hour >= incident.opened_hour + alarms.lead_hours:
                    summary.dispositions["tp"] += 1
                    caught.add(incident.dimm_id)
                    if self._protects(
                        action, incident.ue_hour, alarms.lead_hours
                    ):
                        protected.add(incident.dimm_id)
                else:
                    summary.dispositions["late"] += 1
                    if action is not None and action.executed:
                        summary.wasted_actions += 1
            elif incident.status is IncidentStatus.EXPIRED:
                summary.dispositions["fp"] += 1
                if action is not None and action.executed:
                    summary.wasted_actions += 1
            elif incident.status is IncidentStatus.CENSORED:
                summary.dispositions["censored"] += 1
                if action is not None and action.executed:
                    summary.wasted_actions += 1

        live_ues = {
            dimm_id: hour
            for dimm_id, hour in alarms.ue_hours.items()
            if hour >= live_from_hour
        }
        for dimm_id, hour in live_ues.items():
            ledger.failed_dimms.setdefault(dimm_id, hour)
        # protected is a subset of caught (protection is judged only on
        # tp incidents), so the partition below is exact.  Both are
        # restricted to DIMMs whose first UE fell in the live window — a
        # replacement DIMM resolving an incident after a pre-deployment UE
        # is outside the judged population.
        protected &= set(live_ues)
        caught &= set(live_ues)
        summary.ue_dimms = len(live_ues)
        summary.protected_dimms = len(protected)
        summary.caught_unprotected_dimms = len(caught - protected)
        summary.missed_dimms = summary.ue_dimms - len(caught)

        interrupted = summary.ue_dimms - summary.protected_dimms
        summary.interruption_cost = interrupted * costs.interruption_cost
        summary.baseline_cost = summary.ue_dimms * costs.interruption_cost
        vms = costs.vms_per_server
        caught_total = len(caught)
        summary.virr = VirrBreakdown(
            interruptions_without_prediction=vms * summary.ue_dimms,
            cold_migration_interruptions=vms * summary.caught_unprotected_dimms,
            missed_failure_interruptions=vms * summary.missed_dimms,
            y_c=(
                summary.caught_unprotected_dimms / caught_total
                if caught_total else 0.0
            ),
            vms_per_server=vms,
        )
        return summary, ledger


def combine_summaries(
    platform_summaries: list[CostSummary], label: str = "fleet"
) -> CostSummary:
    """Fleet-wide roll-up: sums of every count and cost term."""
    fleet = CostSummary(platform=label)
    fleet.dispositions = {"tp": 0, "late": 0, "fp": 0, "censored": 0}
    fleet.actions = {action.value: 0 for action in MitigationAction}
    without = with_cold = with_missed = vms = 0.0
    for summary in platform_summaries:
        fleet.ue_dimms += summary.ue_dimms
        fleet.protected_dimms += summary.protected_dimms
        fleet.caught_unprotected_dimms += summary.caught_unprotected_dimms
        fleet.missed_dimms += summary.missed_dimms
        for key, value in summary.dispositions.items():
            fleet.dispositions[key] += value
        for key, value in summary.actions.items():
            fleet.actions[key] += value
        fleet.wasted_actions += summary.wasted_actions
        fleet.unexecuted_actions += summary.unexecuted_actions
        fleet.action_cost += summary.action_cost
        fleet.interruption_cost += summary.interruption_cost
        fleet.baseline_cost += summary.baseline_cost
        if summary.virr is not None:
            without += summary.virr.interruptions_without_prediction
            with_cold += summary.virr.cold_migration_interruptions
            with_missed += summary.virr.missed_failure_interruptions
            vms = summary.virr.vms_per_server
    caught_total = fleet.protected_dimms + fleet.caught_unprotected_dimms
    fleet.virr = VirrBreakdown(
        interruptions_without_prediction=without,
        cold_migration_interruptions=with_cold,
        missed_failure_interruptions=with_missed,
        y_c=(
            fleet.caught_unprotected_dimms / caught_total
            if caught_total else 0.0
        ),
        vms_per_server=vms,
    )
    return fleet
