"""Static DIMM and server configuration.

These mirror the "memory specifications" the BMC records alongside error
logs (Section II-B) and the static features used by the paper's models
(Section VI): manufacturer, data width, frequency and chip process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.geometry import DimmGeometry


class Manufacturer(enum.Enum):
    """Anonymised DRAM manufacturers (the paper anonymises vendors too)."""

    VENDOR_A = "A"
    VENDOR_B = "B"
    VENDOR_C = "C"
    VENDOR_D = "D"
    VENDOR_E = "E"


class ChipProcess(enum.Enum):
    """DRAM process node class."""

    NM_1X = "1x"
    NM_1Y = "1y"
    NM_1Z = "1z"


#: DDR4 speed grades (MT/s) seen in the fleets.
SUPPORTED_FREQUENCIES_MTS = (2400, 2666, 2933, 3200)


@dataclass(frozen=True)
class DimmSpec:
    """Static description of one DIMM."""

    dimm_id: str
    manufacturer: Manufacturer
    part_number: str
    capacity_gb: int = 32
    data_width: int = 4
    frequency_mts: int = 2666
    chip_process: ChipProcess = ChipProcess.NM_1Y
    geometry: DimmGeometry = field(default_factory=DimmGeometry)

    def __post_init__(self) -> None:
        if self.data_width not in (4, 8):
            raise ValueError(f"data_width must be x4 or x8, got x{self.data_width}")
        if self.frequency_mts not in SUPPORTED_FREQUENCIES_MTS:
            raise ValueError(
                f"frequency {self.frequency_mts} not in {SUPPORTED_FREQUENCIES_MTS}"
            )
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")

    @property
    def vendor_code(self) -> str:
        return self.manufacturer.value


@dataclass(frozen=True)
class ServerSpec:
    """Static description of one server and its populated DIMMs."""

    server_id: str
    platform_name: str
    dimms: tuple[DimmSpec, ...]

    def __post_init__(self) -> None:
        if not self.dimms:
            raise ValueError("a server must have at least one DIMM")
        ids = [dimm.dimm_id for dimm in self.dimms]
        if len(set(ids)) != len(ids):
            raise ValueError("DIMM ids within a server must be unique")

    @property
    def dimm_ids(self) -> tuple[str, ...]:
        return tuple(dimm.dimm_id for dimm in self.dimms)


def make_part_number(
    manufacturer: Manufacturer,
    capacity_gb: int,
    data_width: int,
    frequency_mts: int,
    series: int,
) -> str:
    """Synthesise a stable, vendor-style part number string."""
    return (
        f"{manufacturer.value}{capacity_gb:03d}x{data_width}-"
        f"{frequency_mts}-{series:02d}"
    )
