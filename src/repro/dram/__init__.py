"""DRAM organization substrate: geometry, error bitmaps, faults and specs."""

from repro.dram.errorbits import (
    BusErrorPattern,
    DeviceErrorBitmap,
    merge_device_bitmaps,
)
from repro.dram.faults import BitPatternProfile, Fault, FaultMode
from repro.dram.geometry import (
    BURST_LENGTH,
    BUS_WIDTH,
    DATA_BITS,
    ECC_BITS,
    X4_DEVICE_WIDTH,
    X4_DEVICES_PER_RANK,
    CellAddress,
    DimmGeometry,
    iter_bank_ids,
)
from repro.dram.spec import (
    SUPPORTED_FREQUENCIES_MTS,
    ChipProcess,
    DimmSpec,
    Manufacturer,
    ServerSpec,
    make_part_number,
)

__all__ = [
    "BURST_LENGTH",
    "BUS_WIDTH",
    "DATA_BITS",
    "ECC_BITS",
    "X4_DEVICE_WIDTH",
    "X4_DEVICES_PER_RANK",
    "BitPatternProfile",
    "BusErrorPattern",
    "CellAddress",
    "ChipProcess",
    "DeviceErrorBitmap",
    "DimmGeometry",
    "DimmSpec",
    "Fault",
    "FaultMode",
    "Manufacturer",
    "ServerSpec",
    "SUPPORTED_FREQUENCIES_MTS",
    "iter_bank_ids",
    "make_part_number",
    "merge_device_bitmaps",
]
