"""DRAM organization model.

This module describes the physical layout of a DDR4 DIMM the way the paper's
Figure 1 does: a DIMM is a set of ranks; each rank is built from x4 DRAM
devices (chips); each device contains banks organized in rows and columns of
cells.  A CPU read transfers a burst of ``BURST_LENGTH`` beats over a 72-bit
bus (64 data bits + 8 ECC bits), and each x4 device contributes 4 DQ lanes to
that bus.

The classes here are deliberately free of failure semantics — faults live in
:mod:`repro.dram.faults` and error-bit patterns in :mod:`repro.dram.errorbits`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Number of beats in one DDR4 burst access (BL8).
BURST_LENGTH = 8

#: Data lanes on the memory bus (64 data + 8 ECC = 72).
DATA_BITS = 64
ECC_BITS = 8
BUS_WIDTH = DATA_BITS + ECC_BITS

#: DQ lanes contributed by one x4 device.
X4_DEVICE_WIDTH = 4

#: Number of x4 devices on one rank of a 72-bit-bus ECC DIMM (16 data + 2 ECC).
X4_DEVICES_PER_RANK = BUS_WIDTH // X4_DEVICE_WIDTH


@dataclass(frozen=True)
class DimmGeometry:
    """Geometry of one DIMM.

    Defaults describe a common 32 GB dual-rank x4 DDR4 RDIMM: 18 x4 devices
    per rank, 4 bank groups of 4 banks, 2^17 rows and 2^10 columns per bank.
    """

    ranks: int = 2
    device_width: int = X4_DEVICE_WIDTH
    devices_per_rank: int = X4_DEVICES_PER_RANK
    bank_groups: int = 4
    banks_per_group: int = 4
    rows: int = 1 << 17
    columns: int = 1 << 10

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.device_width * self.devices_per_rank != BUS_WIDTH:
            raise ValueError(
                "device_width * devices_per_rank must equal the 72-bit bus; "
                f"got {self.device_width} * {self.devices_per_rank}"
            )
        for name in ("bank_groups", "banks_per_group", "rows", "columns"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def banks(self) -> int:
        """Total banks per device."""
        return self.bank_groups * self.banks_per_group

    @property
    def total_devices(self) -> int:
        """Total DRAM devices on the DIMM."""
        return self.ranks * self.devices_per_rank

    @property
    def cells_per_bank(self) -> int:
        return self.rows * self.columns

    def device_dq_lanes(self, device: int) -> range:
        """Bus DQ lanes driven by ``device`` (devices are numbered per rank)."""
        self._check_device(device)
        start = device * self.device_width
        return range(start, start + self.device_width)

    def lane_to_device(self, lane: int) -> int:
        """Map a bus DQ lane (0..71) to the device that drives it."""
        if not 0 <= lane < BUS_WIDTH:
            raise ValueError(f"lane must be in [0, {BUS_WIDTH}), got {lane}")
        return lane // self.device_width

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.devices_per_rank:
            raise ValueError(
                f"device must be in [0, {self.devices_per_rank}), got {device}"
            )

    def validate_address(self, address: "CellAddress") -> None:
        """Raise ``ValueError`` if ``address`` does not fit this geometry."""
        if not 0 <= address.rank < self.ranks:
            raise ValueError(f"rank {address.rank} out of range")
        self._check_device(address.device)
        if not 0 <= address.bank < self.banks:
            raise ValueError(f"bank {address.bank} out of range")
        if not 0 <= address.row < self.rows:
            raise ValueError(f"row {address.row} out of range")
        if not 0 <= address.column < self.columns:
            raise ValueError(f"column {address.column} out of range")


@dataclass(frozen=True, order=True)
class CellAddress:
    """Address of one cell (or the cell-aligned location of a burst access).

    ``device`` identifies the x4 chip within the rank; ``bank`` is the flat
    bank index (bank_group * banks_per_group + bank).
    """

    rank: int
    device: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "CellAddress") -> bool:
        return (
            self.rank == other.rank
            and self.device == other.device
            and self.bank == other.bank
            and self.row == other.row
        )

    def same_column(self, other: "CellAddress") -> bool:
        return (
            self.rank == other.rank
            and self.device == other.device
            and self.bank == other.bank
            and self.column == other.column
        )

    def same_bank(self, other: "CellAddress") -> bool:
        return (
            self.rank == other.rank
            and self.device == other.device
            and self.bank == other.bank
        )


def iter_bank_ids(geometry: DimmGeometry) -> Iterator[tuple[int, int, int]]:
    """Yield ``(rank, device, bank)`` triples for every bank on the DIMM."""
    for rank in range(geometry.ranks):
        for device in range(geometry.devices_per_rank):
            for bank in range(geometry.banks):
                yield rank, device, bank
