"""Error-bit patterns on the memory bus.

The paper (Section V, Figure 5) analyses errors at the granularity of one
burst transfer: 8 beats x 72 DQ lanes, where each x4 device drives 4 adjacent
lanes.  Two views are provided:

* :class:`BusErrorPattern` — the full ``(8, 72)`` boolean matrix of erroneous
  bits in one transfer; this is what the ECC substrate decodes.
* :class:`DeviceErrorBitmap` — the ``(8, 4)`` slice for a single x4 device;
  this is what the paper's DQ/beat count and interval statistics are
  computed on.

Counts and intervals follow the paper's Figure 5 axes: DQ count in 1..4,
beat count in 1..8, DQ interval in 0..3 and beat interval in 0..7, where an
interval is the span ``max(index) - min(index)`` over erroneous lanes/beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.dram.geometry import BURST_LENGTH, BUS_WIDTH, X4_DEVICE_WIDTH


@dataclass(frozen=True)
class DeviceErrorBitmap:
    """Erroneous bits of one x4 device during one burst: 8 beats x 4 DQs."""

    bits: tuple[tuple[int, int], ...]  # sorted (beat, dq) pairs

    @classmethod
    def from_positions(
        cls, positions: Iterable[tuple[int, int]]
    ) -> "DeviceErrorBitmap":
        """Build from ``(beat, dq)`` pairs; validates and deduplicates."""
        unique = sorted(set((int(b), int(d)) for b, d in positions))
        for beat, dq in unique:
            if not 0 <= beat < BURST_LENGTH:
                raise ValueError(f"beat {beat} out of range [0, {BURST_LENGTH})")
            if not 0 <= dq < X4_DEVICE_WIDTH:
                raise ValueError(f"dq {dq} out of range [0, {X4_DEVICE_WIDTH})")
        return cls(bits=tuple(unique))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "DeviceErrorBitmap":
        """Build from an ``(8, 4)`` boolean matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.shape != (BURST_LENGTH, X4_DEVICE_WIDTH):
            raise ValueError(
                f"expected shape ({BURST_LENGTH}, {X4_DEVICE_WIDTH}), "
                f"got {matrix.shape}"
            )
        beats, dqs = np.nonzero(matrix)
        return cls.from_positions(zip(beats.tolist(), dqs.tolist()))

    def to_matrix(self) -> np.ndarray:
        matrix = np.zeros((BURST_LENGTH, X4_DEVICE_WIDTH), dtype=bool)
        for beat, dq in self.bits:
            matrix[beat, dq] = True
        return matrix

    @property
    def is_empty(self) -> bool:
        return not self.bits

    @property
    def error_bit_count(self) -> int:
        return len(self.bits)

    @property
    def dqs(self) -> tuple[int, ...]:
        """Distinct erroneous DQ lanes, ascending."""
        return tuple(sorted({dq for _, dq in self.bits}))

    @property
    def beats(self) -> tuple[int, ...]:
        """Distinct erroneous beats, ascending."""
        return tuple(sorted({beat for beat, _ in self.bits}))

    @property
    def dq_count(self) -> int:
        return len(self.dqs)

    @property
    def beat_count(self) -> int:
        return len(self.beats)

    @property
    def dq_interval(self) -> int:
        """Span between the lowest and highest erroneous DQ (0 if <=1 DQ)."""
        dqs = self.dqs
        if len(dqs) < 2:
            return 0
        return dqs[-1] - dqs[0]

    @property
    def beat_interval(self) -> int:
        """Span between the lowest and highest erroneous beat (0 if <=1)."""
        beats = self.beats
        if len(beats) < 2:
            return 0
        return beats[-1] - beats[0]

    def union(self, other: "DeviceErrorBitmap") -> "DeviceErrorBitmap":
        return DeviceErrorBitmap.from_positions(self.bits + other.bits)


@dataclass(frozen=True)
class BusErrorPattern:
    """Erroneous bits of one full burst transfer: 8 beats x 72 lanes.

    ``device_bits`` maps a device index (0..17) to its per-device bitmap;
    only devices with at least one erroneous bit are present.
    """

    device_bits: tuple[tuple[int, DeviceErrorBitmap], ...]

    @classmethod
    def from_device_bitmaps(
        cls, bitmaps: dict[int, DeviceErrorBitmap]
    ) -> "BusErrorPattern":
        entries = []
        for device in sorted(bitmaps):
            bitmap = bitmaps[device]
            if not 0 <= device < BUS_WIDTH // X4_DEVICE_WIDTH:
                raise ValueError(f"device {device} out of range")
            if not bitmap.is_empty:
                entries.append((device, bitmap))
        return cls(device_bits=tuple(entries))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "BusErrorPattern":
        """Build from an ``(8, 72)`` boolean bus matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.shape != (BURST_LENGTH, BUS_WIDTH):
            raise ValueError(
                f"expected shape ({BURST_LENGTH}, {BUS_WIDTH}), got {matrix.shape}"
            )
        bitmaps: dict[int, DeviceErrorBitmap] = {}
        for device in range(BUS_WIDTH // X4_DEVICE_WIDTH):
            lanes = slice(device * X4_DEVICE_WIDTH, (device + 1) * X4_DEVICE_WIDTH)
            sub = matrix[:, lanes]
            if sub.any():
                bitmaps[device] = DeviceErrorBitmap.from_matrix(sub)
        return cls.from_device_bitmaps(bitmaps)

    def to_matrix(self) -> np.ndarray:
        matrix = np.zeros((BURST_LENGTH, BUS_WIDTH), dtype=bool)
        for device, bitmap in self.device_bits:
            lanes = slice(device * X4_DEVICE_WIDTH, (device + 1) * X4_DEVICE_WIDTH)
            matrix[:, lanes] |= bitmap.to_matrix()
        return matrix

    @property
    def is_empty(self) -> bool:
        return not self.device_bits

    @property
    def devices(self) -> tuple[int, ...]:
        """Devices with at least one erroneous bit, ascending."""
        return tuple(device for device, _ in self.device_bits)

    @property
    def device_count(self) -> int:
        return len(self.device_bits)

    @property
    def is_single_device(self) -> bool:
        return self.device_count == 1

    @property
    def error_bit_count(self) -> int:
        return sum(bitmap.error_bit_count for _, bitmap in self.device_bits)

    def bitmap_for(self, device: int) -> DeviceErrorBitmap:
        for dev, bitmap in self.device_bits:
            if dev == device:
                return bitmap
        return DeviceErrorBitmap(bits=())

    def symbols_per_beat(self) -> dict[int, tuple[int, ...]]:
        """For each erroneous beat, the devices (4-bit symbols) in error.

        A "symbol" here is the nibble one x4 device contributes to one beat —
        the correction unit of Chipkill-class ECC.
        """
        result: dict[int, set[int]] = {}
        for device, bitmap in self.device_bits:
            for beat in bitmap.beats:
                result.setdefault(beat, set()).add(device)
        return {beat: tuple(sorted(devs)) for beat, devs in result.items()}

    @property
    def max_symbols_in_any_beat(self) -> int:
        """Worst-case number of erroneous device symbols within one beat."""
        per_beat = self.symbols_per_beat()
        if not per_beat:
            return 0
        return max(len(devs) for devs in per_beat.values())


def merge_device_bitmaps(
    bitmaps: Sequence[DeviceErrorBitmap],
) -> DeviceErrorBitmap:
    """Union a sequence of per-device bitmaps (e.g. over a DIMM's CE history)."""
    merged: DeviceErrorBitmap = DeviceErrorBitmap(bits=())
    for bitmap in bitmaps:
        merged = merged.union(bitmap)
    return merged
