"""DRAM fault models.

A *fault* is the physical root cause (Section II-A of the paper); an *error*
is one manifestation of the fault observed during an access.  The paper's
fault taxonomy (Section V) has two axes:

* the DRAM-hierarchy region the fault occupies — cell, column, row or bank —
  modelled by :class:`FaultMode`;
* the device span — single-device vs multi-device — modelled by the number of
  devices a :class:`Fault` touches.

Each fault carries a :class:`BitPatternProfile` describing the error-bit
signature its activations stamp onto the bus (which DQ lanes, how many beats,
with what beat stride).  The signature is what makes platform-specific UE
escalation emerge: the per-platform ECC models in :mod:`repro.ecc.models`
correct some signatures and not others.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.dram.errorbits import BusErrorPattern, DeviceErrorBitmap
from repro.dram.geometry import BURST_LENGTH, CellAddress, DimmGeometry, X4_DEVICE_WIDTH


class FaultMode(enum.Enum):
    """Region of the DRAM hierarchy occupied by a fault."""

    CELL = "cell"
    COLUMN = "column"
    ROW = "row"
    BANK = "bank"

    @property
    def level(self) -> int:
        """Hierarchy level: larger means a larger faulty region."""
        order = {
            FaultMode.CELL: 0,
            FaultMode.COLUMN: 1,
            FaultMode.ROW: 2,
            FaultMode.BANK: 3,
        }
        return order[self]


@dataclass(frozen=True)
class BitPatternProfile:
    """Distribution over per-device error-bit signatures for one fault.

    Attributes:
        dq_lanes: DQ lanes (within the x4 device, 0..3) the fault can flip.
        dq_count_weights: probability of flipping 1..len(dq_lanes) of them in
            one activation (re-normalised internally).
        beat_count_weights: probability of 1..8 erroneous beats.
        beat_stride: if set, erroneous beats are spaced exactly this many
            beats apart (e.g. stride 4 yields the Purley-risky 4-beat
            interval); if None, beats are sampled contiguously or uniformly
            depending on ``contiguous_beats``.
        contiguous_beats: sample adjacent beats when True, uniform otherwise.
    """

    dq_lanes: tuple[int, ...] = (0,)
    dq_count_weights: tuple[float, ...] = (1.0,)
    beat_count_weights: tuple[float, ...] = (1.0,)
    beat_stride: int | None = None
    contiguous_beats: bool = True

    def __post_init__(self) -> None:
        if not self.dq_lanes:
            raise ValueError("dq_lanes must be non-empty")
        for lane in self.dq_lanes:
            if not 0 <= lane < X4_DEVICE_WIDTH:
                raise ValueError(f"dq lane {lane} out of range")
        if len(set(self.dq_lanes)) != len(self.dq_lanes):
            raise ValueError("dq_lanes must be unique")
        if len(self.dq_count_weights) > len(self.dq_lanes):
            raise ValueError("more dq_count_weights than available lanes")
        if len(self.beat_count_weights) > BURST_LENGTH:
            raise ValueError("more beat_count_weights than beats")
        if self.beat_stride is not None and not 1 <= self.beat_stride < BURST_LENGTH:
            raise ValueError(f"beat_stride {self.beat_stride} out of range")
        for weights in (self.dq_count_weights, self.beat_count_weights):
            if not weights or min(weights) < 0 or sum(weights) <= 0:
                raise ValueError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator) -> DeviceErrorBitmap:
        """Draw one per-device error-bit signature."""
        dq_count = self._sample_count(rng, self.dq_count_weights)
        dqs = rng.choice(self.dq_lanes, size=dq_count, replace=False)

        beat_count = self._sample_count(rng, self.beat_count_weights)
        beats = self._sample_beats(rng, beat_count)

        positions = [(int(beat), int(dq)) for beat in beats for dq in dqs]
        return DeviceErrorBitmap.from_positions(positions)

    @staticmethod
    def _sample_count(rng: np.random.Generator, weights: tuple[float, ...]) -> int:
        probabilities = np.asarray(weights, dtype=float)
        probabilities = probabilities / probabilities.sum()
        return int(rng.choice(len(weights), p=probabilities)) + 1

    def _sample_beats(self, rng: np.random.Generator, beat_count: int) -> list[int]:
        if self.beat_stride is not None:
            stride = self.beat_stride
            max_count = 1 + (BURST_LENGTH - 1) // stride
            beat_count = min(beat_count, max_count)
            max_start = BURST_LENGTH - stride * (beat_count - 1) - 1
            start = int(rng.integers(0, max_start + 1))
            return [start + i * stride for i in range(beat_count)]
        if self.contiguous_beats:
            start = int(rng.integers(0, BURST_LENGTH - beat_count + 1))
            return list(range(start, start + beat_count))
        return sorted(
            int(b) for b in rng.choice(BURST_LENGTH, size=beat_count, replace=False)
        )


_FAULT_COUNTER = itertools.count()


@dataclass
class Fault:
    """One physical fault on a DIMM.

    ``devices`` holds the device indices (within ``rank``) the fault spans;
    a single-device fault has exactly one entry.  ``multi_device_joint_prob``
    is the probability that one activation manifests on two or more of those
    devices *in the same burst* — the condition that defeats Chipkill-class
    ECC.
    """

    mode: FaultMode
    rank: int
    devices: tuple[int, ...]
    bank: int
    row: int
    column: int
    pattern_profile: BitPatternProfile
    ce_rate_per_hour: float
    onset_hour: float = 0.0
    multi_device_joint_prob: float = 0.0
    #: Bank-mode faults are physically localised (e.g. a failing subarray or
    #: decoder region): activations land in a block of this many rows/columns
    #: anchored at (row, column).  Makes bank faults *detectable*: repeated
    #: rows and columns inside one bank trip both the row and the column
    #: thresholds, which is the paper's bank-fault criterion.
    block_rows: int = 32
    block_columns: int = 16
    fault_id: int = field(default_factory=lambda: next(_FAULT_COUNTER))

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a fault must span at least one device")
        if len(set(self.devices)) != len(self.devices):
            raise ValueError("fault devices must be unique")
        if self.ce_rate_per_hour <= 0:
            raise ValueError("ce_rate_per_hour must be positive")
        if not 0.0 <= self.multi_device_joint_prob <= 1.0:
            raise ValueError("multi_device_joint_prob must be in [0, 1]")

    @property
    def is_multi_device(self) -> bool:
        return len(self.devices) > 1

    def sample_cell(
        self, rng: np.random.Generator, geometry: DimmGeometry, device: int
    ) -> CellAddress:
        """Sample the cell coordinates of one activation on ``device``.

        The anchor (row, column) is fixed by the fault; which coordinate is
        randomised depends on the fault mode (a row fault hits random columns
        of its row, etc.).
        """
        if self.mode is FaultMode.CELL:
            row, column = self.row, self.column
        elif self.mode is FaultMode.COLUMN:
            row = int(rng.integers(0, geometry.rows))
            column = self.column
        elif self.mode is FaultMode.ROW:
            row = self.row
            column = int(rng.integers(0, geometry.columns))
        else:  # BANK: within the fault's block of the bank
            row = (self.row + int(rng.integers(0, self.block_rows))) % geometry.rows
            column = (
                self.column + int(rng.integers(0, self.block_columns))
            ) % geometry.columns
        address = CellAddress(
            rank=self.rank, device=device, bank=self.bank, row=row, column=column
        )
        geometry.validate_address(address)
        return address

    def sample_bus_pattern(self, rng: np.random.Generator) -> BusErrorPattern:
        """Sample the bus-level error pattern of one activation.

        Multi-device faults flip bits on >= 2 devices in the same burst with
        probability ``multi_device_joint_prob``; otherwise a single (randomly
        chosen) member device manifests.
        """
        if self.is_multi_device and rng.random() < self.multi_device_joint_prob:
            count = int(rng.integers(2, len(self.devices) + 1))
            chosen = rng.choice(self.devices, size=count, replace=False)
        else:
            chosen = [self.devices[int(rng.integers(0, len(self.devices)))]]
        bitmaps = {
            int(device): self.pattern_profile.sample(rng) for device in chosen
        }
        return BusErrorPattern.from_device_bitmaps(bitmaps)
