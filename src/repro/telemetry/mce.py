"""Machine Check Exception register packing.

Production error telemetry arrives as raw machine-check register values that
the collection pipeline has to decode (paper Section II-B / Figure 6 "Log
Collection").  We model an IA32_MCi_STATUS-style 64-bit status register and
a companion address register:

``STATUS`` layout (bit ranges, LSB 0):
    0..15   MCA error code (0x009x = memory, channel in low nibble)
    16..31  model-specific error code (we store dq_count/beat_count nibbles)
    32..37  corrected error count
    38..52  reserved
    53      address-register-valid
    54      miscv
    55      uncorrected flag (UC)
    56..62  reserved
    63      valid

``ADDR`` layout packs the DRAM coordinates:
    0..9    column
    10..27  row
    28..33  bank
    34..39  device
    40..43  rank

``MISC`` layout carries the bit-level decode the paper's features need:
    0..3    dq interval
    4..7    beat interval
    8..25   device bitmap (bit d set when device d saw erroneous bits)
    26..35  error bit count

The codec is exercised by the BMC collector and round-trip tested; it exists
so that the data pipeline genuinely parses raw registers rather than passing
Python objects around.
"""

from __future__ import annotations

from dataclasses import dataclass

_MCA_MEMORY_BASE = 0x0090

_COL_SHIFT, _COL_BITS = 0, 10
_ROW_SHIFT, _ROW_BITS = 10, 18
_BANK_SHIFT, _BANK_BITS = 28, 6
_DEV_SHIFT, _DEV_BITS = 34, 6
_RANK_SHIFT, _RANK_BITS = 40, 4

_VALID_BIT = 1 << 63
_UC_BIT = 1 << 55
_ADDRV_BIT = 1 << 53


def _mask(bits: int) -> int:
    return (1 << bits) - 1


@dataclass(frozen=True)
class McaSignal:
    """Decoded machine-check signal for one memory error."""

    channel: int
    rank: int
    device: int
    bank: int
    row: int
    column: int
    corrected_count: int
    uncorrected: bool
    dq_count: int = 1
    beat_count: int = 1
    dq_interval: int = 0
    beat_interval: int = 0
    devices: tuple[int, ...] = ()
    error_bit_count: int = 1


def encode_mce(signal: McaSignal) -> tuple[int, int, int]:
    """Pack a decoded signal into (status, addr, misc) raw register values."""
    if not 0 <= signal.channel < 16:
        raise ValueError(f"channel {signal.channel} out of range")
    if not 0 <= signal.column < (1 << _COL_BITS):
        raise ValueError(f"column {signal.column} out of range")
    if not 0 <= signal.row < (1 << _ROW_BITS):
        raise ValueError(f"row {signal.row} out of range")
    if not 0 <= signal.bank < (1 << _BANK_BITS):
        raise ValueError(f"bank {signal.bank} out of range")
    if not 0 <= signal.device < (1 << _DEV_BITS):
        raise ValueError(f"device {signal.device} out of range")
    if not 0 <= signal.rank < (1 << _RANK_BITS):
        raise ValueError(f"rank {signal.rank} out of range")
    if not 0 <= signal.dq_count <= 15 or not 0 <= signal.beat_count <= 15:
        raise ValueError("dq_count/beat_count must fit a nibble")

    status = _MCA_MEMORY_BASE | (signal.channel & 0xF)
    status |= (signal.dq_count & 0xF) << 16
    status |= (signal.beat_count & 0xF) << 20
    status |= (min(signal.corrected_count, _mask(6)) & _mask(6)) << 32
    status |= _VALID_BIT | _ADDRV_BIT
    if signal.uncorrected:
        status |= _UC_BIT

    addr = (
        (signal.column & _mask(_COL_BITS)) << _COL_SHIFT
        | (signal.row & _mask(_ROW_BITS)) << _ROW_SHIFT
        | (signal.bank & _mask(_BANK_BITS)) << _BANK_SHIFT
        | (signal.device & _mask(_DEV_BITS)) << _DEV_SHIFT
        | (signal.rank & _mask(_RANK_BITS)) << _RANK_SHIFT
    )

    if not 0 <= signal.dq_interval <= 15 or not 0 <= signal.beat_interval <= 15:
        raise ValueError("dq_interval/beat_interval must fit a nibble")
    device_bitmap = 0
    for device in signal.devices:
        if not 0 <= device < 18:
            raise ValueError(f"device {device} out of x4 rank range")
        device_bitmap |= 1 << device
    misc = (
        (signal.dq_interval & 0xF)
        | (signal.beat_interval & 0xF) << 4
        | device_bitmap << 8
        | (min(signal.error_bit_count, _mask(10)) & _mask(10)) << 26
    )
    return status, addr, misc


def decode_mce(status: int, addr: int, misc: int = 0) -> McaSignal:
    """Unpack raw (status, addr, misc) registers back into a decoded signal."""
    if not status & _VALID_BIT:
        raise ValueError("status register not valid (bit 63 clear)")
    mca_code = status & 0xFFFF
    if mca_code & 0xFFF0 != _MCA_MEMORY_BASE:
        raise ValueError(f"not a memory MCA code: {mca_code:#06x}")
    device_bitmap = (misc >> 8) & _mask(18)
    devices = tuple(d for d in range(18) if device_bitmap & (1 << d))
    return McaSignal(
        channel=mca_code & 0xF,
        rank=(addr >> _RANK_SHIFT) & _mask(_RANK_BITS),
        device=(addr >> _DEV_SHIFT) & _mask(_DEV_BITS),
        bank=(addr >> _BANK_SHIFT) & _mask(_BANK_BITS),
        row=(addr >> _ROW_SHIFT) & _mask(_ROW_BITS),
        column=(addr >> _COL_SHIFT) & _mask(_COL_BITS),
        corrected_count=(status >> 32) & _mask(6),
        uncorrected=bool(status & _UC_BIT),
        dq_count=(status >> 16) & 0xF,
        beat_count=(status >> 20) & 0xF,
        dq_interval=misc & 0xF,
        beat_interval=(misc >> 4) & 0xF,
        devices=devices,
        error_bit_count=(misc >> 26) & _mask(10),
    )
