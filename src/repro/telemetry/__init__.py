"""Telemetry substrate: records, MCE codec, BMC collection, log store."""

from repro.telemetry.bmc import BmcCollector, BmcStats
from repro.telemetry.columnar import (
    FleetArrays,
    TelemetryColumns,
    segmented_searchsorted,
)
from repro.telemetry.log_store import LogStore, iter_stream, read_jsonl_payloads
from repro.telemetry.mce import McaSignal, decode_mce, encode_mce
from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
    record_from_dict,
)

__all__ = [
    "BmcCollector",
    "BmcStats",
    "CERecord",
    "DimmConfigRecord",
    "FleetArrays",
    "LogStore",
    "TelemetryColumns",
    "McaSignal",
    "MemEventKind",
    "MemEventRecord",
    "UERecord",
    "decode_mce",
    "encode_mce",
    "iter_stream",
    "read_jsonl_payloads",
    "record_from_dict",
    "segmented_searchsorted",
]
