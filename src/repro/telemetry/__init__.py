"""Telemetry substrate: records, MCE codec, BMC collection, log store."""

from repro.telemetry.bmc import BmcCollector, BmcStats
from repro.telemetry.log_store import LogStore, iter_stream
from repro.telemetry.mce import McaSignal, decode_mce, encode_mce
from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
    record_from_dict,
)

__all__ = [
    "BmcCollector",
    "BmcStats",
    "CERecord",
    "DimmConfigRecord",
    "LogStore",
    "McaSignal",
    "MemEventKind",
    "MemEventRecord",
    "UERecord",
    "decode_mce",
    "encode_mce",
    "iter_stream",
    "record_from_dict",
]
