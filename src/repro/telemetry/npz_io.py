"""Zero-copy ``.npz`` member access for the distributed shard format.

``np.savez`` writes an uncompressed (ZIP_STORED) archive, so every member
is a plain ``.npy`` blob sitting at a fixed byte offset inside the file.
:func:`load_npz_arrays` exploits that: instead of decompressing members
into fresh buffers, it parses each member's zip local-file header, reads
the npy header right behind it, and hands back an ``np.memmap`` over the
payload bytes — the OS page cache backs every shard a worker opens, and
loading N shards costs no data copies at all.

Members that are compressed, object-typed, or written by a zip
implementation we don't recognise fall back to a regular ``np.load``
read, so the function is always correct and only opportunistically
zero-copy.  Memory-mapped arrays are read-only; callers that need to
mutate must copy (``ColumnarTable`` grows into a fresh writable buffer
on the first append past capacity, so appending to a mapped table is
safe by construction).
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

#: Fixed prefix of a zip local file header (PKZIP appnote 4.3.7):
#: signature(4) .. name_len at offset 26, extra_len at offset 28.
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_SIG = b"PK\x03\x04"


def _member_name(info: zipfile.ZipInfo) -> str:
    name = info.filename
    return name[:-4] if name.endswith(".npy") else name


def _mmap_member(path, handle, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Map one ZIP_STORED npy member in place; None when not mappable."""
    handle.seek(info.header_offset)
    local = handle.read(_LOCAL_HEADER_SIZE)
    if len(local) < _LOCAL_HEADER_SIZE or local[:4] != _LOCAL_HEADER_SIG:
        return None
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    handle.seek(info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len)
    try:
        version = npy_format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = npy_format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = npy_format.read_array_header_2_0(handle)
        else:
            return None
    except ValueError:
        return None
    if dtype.hasobject:
        return None
    if any(dim == 0 for dim in shape):
        # np.memmap rejects zero-length maps; an empty array needs no map.
        return np.empty(shape, dtype=dtype, order="F" if fortran else "C")
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=handle.tell(),
        shape=shape,
        order="F" if fortran else "C",
    )


def load_npz_arrays(path, *, mmap: bool = False) -> dict[str, np.ndarray]:
    """All members of an ``.npz`` as ``{name: array}``.

    With ``mmap=True``, ZIP_STORED members come back as read-only
    ``np.memmap`` views over the archive bytes; anything else is loaded
    normally.  With ``mmap=False`` this is a plain eager ``np.load``.
    """
    path = Path(path)
    if not mmap:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
        for info in archive.infolist():
            mapped = None
            if info.compress_type == zipfile.ZIP_STORED:
                mapped = _mmap_member(path, handle, info)
            if mapped is None:
                with archive.open(info) as member:
                    mapped = npy_format.read_array(member, allow_pickle=False)
            arrays[_member_name(info)] = mapped
    return arrays
