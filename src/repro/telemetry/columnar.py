"""Columnar (struct-of-arrays) backing store for telemetry records.

The fleet-level extraction engine wants every DIMM's history as numpy
arrays without ever looping over python record objects.  This module keeps
a columnar mirror of the :class:`~repro.telemetry.log_store.LogStore`
contents: one growable float64 table per record kind (CE / UE / memory
event), appended in amortized O(1) via doubling buffers, plus integer
vocabularies for DIMM and server ids.

All numeric record fields fit exactly in float64 (coordinates are < 2^20,
counts are tiny), so a single homogeneous table per kind keeps appends to
one numpy row-assignment and lets the fleet assembly below run as a
handful of whole-table numpy calls:

* :meth:`TelemetryColumns.fleet_view` lexsorts each kind once by
  ``(dimm, time)`` and returns a :class:`FleetArrays` — ragged per-DIMM
  concatenations with segment offsets, ordered by sorted DIMM id.  Every
  per-DIMM history is then a zero-copy slice of these arrays, and the
  cross-DIMM extraction pass consumes them whole.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.records import (
    CERecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
)

#: Column layout of the CE table.
CE_T, CE_DQ_COUNT, CE_BEAT_COUNT, CE_DQ_INTERVAL, CE_BEAT_INTERVAL = range(5)
CE_N_DEVICES, CE_ERROR_BITS, CE_ROW, CE_COLUMN, CE_BANK = range(5, 10)
CE_DEVICE0, CE_DIMM, CE_SERVER = range(10, 13)
CE_WIDTH = 13

#: Column layout of the UE table.
UE_T, UE_DIMM = range(2)
UE_WIDTH = 2

#: Column layout of the memory-event table.
EV_T, EV_DIMM, EV_KIND = range(3)
EV_WIDTH = 3

#: Integer codes of the memory-event kinds as stored in the event table
#: (public: the streaming replay engine decodes event rows with these).
KIND_CODES = {kind: code for code, kind in enumerate(MemEventKind)}
STORM_CODE = KIND_CODES[MemEventKind.CE_STORM]
REPAIR_CODES = frozenset(
    KIND_CODES[kind]
    for kind in (
        MemEventKind.PAGE_OFFLINE,
        MemEventKind.ROW_SPARED,
        MemEventKind.BANK_SPARED,
        MemEventKind.PCLS_APPLIED,
    )
)


class ColumnarTable:
    """Growable float64 row table with amortized O(1) appends."""

    def __init__(self, n_columns: int, capacity: int = 64):
        self._buffer = np.empty((capacity, n_columns), dtype=float)
        self._n = 0

    def append(self, row: tuple) -> None:
        if self._n == self._buffer.shape[0]:
            self._grow(self._n + 1)
        self._buffer[self._n] = row
        self._n += 1

    def extend(self, rows: np.ndarray) -> None:
        """Bulk-append a ``(m, n_columns)`` block in one copy."""
        rows = np.asarray(rows, dtype=float)
        if rows.size == 0:
            return
        needed = self._n + rows.shape[0]
        if needed > self._buffer.shape[0]:
            self._grow(needed)
        self._buffer[self._n : needed] = rows
        self._n = needed

    def _grow(self, needed: int) -> None:
        capacity = self._buffer.shape[0]
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self._buffer.shape[1]), dtype=float)
        grown[: self._n] = self._buffer[: self._n]
        self._buffer = grown

    def rows(self) -> np.ndarray:
        """View of the filled prefix (aliases the internal buffer)."""
        return self._buffer[: self._n]

    def __len__(self) -> int:
        return self._n

    @classmethod
    def from_rows(cls, rows: np.ndarray) -> "ColumnarTable":
        """Adopt a ``(m, n_columns)`` block as the table's full contents.

        The block is aliased, not copied, so a read-only (memory-mapped)
        array is a valid backing store: the buffer is exactly full, so
        the first ``append``/``extend`` grows into a fresh writable
        buffer before touching any row.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(
                f"ColumnarTable.from_rows needs a 2-d block, got shape "
                f"{rows.shape}"
            )
        if rows.shape[0] == 0:
            # An empty block would leave a zero-capacity buffer that the
            # doubling ``_grow`` can never enlarge; start fresh instead.
            return cls(rows.shape[1])
        table = cls.__new__(cls)
        table._buffer = rows
        table._n = int(rows.shape[0])
        return table


class Vocabulary:
    """Interned string ids <-> dense integer codes (first-seen order)."""

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        code = self._codes.get(name)
        if code is None:
            code = len(self._names)
            self._codes[name] = code
            self._names.append(name)
        return code

    def name(self, code: int) -> str:
        return self._names[code]

    def names(self) -> list[str]:
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    @classmethod
    def from_names(cls, names) -> "Vocabulary":
        """Rebuild a vocabulary whose code for ``names[i]`` is ``i``."""
        vocab = cls()
        for name in names:
            vocab.intern(str(name))
        if len(vocab) != len(names):
            raise ValueError("Vocabulary.from_names needs distinct names")
        return vocab


@dataclass
class FleetArrays:
    """Every fleet DIMM's telemetry as ragged (dimm, time)-sorted arrays.

    ``dimm_ids`` lists the DIMMs with at least one CE, in sorted-id order;
    segment ``i`` of each array (between ``*_offsets[i]`` and
    ``*_offsets[i + 1]``) holds DIMM ``i``'s records, time-sorted with
    ties in ingestion order — exactly the layout
    :meth:`DimmHistory.from_records` produces per DIMM.
    """

    dimm_ids: list[str]
    server_ids: list[str]  # per DIMM: server of the first CE
    # CE columns (concatenated; float except the int64 coordinates).
    times: np.ndarray
    dq_count: np.ndarray
    beat_count: np.ndarray
    dq_interval: np.ndarray
    beat_interval: np.ndarray
    n_devices: np.ndarray
    error_bits: np.ndarray
    rows: np.ndarray
    columns: np.ndarray
    banks: np.ndarray
    devices: np.ndarray
    ce_offsets: np.ndarray
    # Event segments (storms / repair actions), same ragged layout.
    storm_times: np.ndarray
    storm_offsets: np.ndarray
    repair_times: np.ndarray
    repair_offsets: np.ndarray
    #: First UE hour per DIMM (NaN when the DIMM never saw a UE).
    ue_hours: np.ndarray

    @property
    def n_dimms(self) -> int:
        return len(self.dimm_ids)

    def __len__(self) -> int:
        return int(self.times.size)

    def shard(self, lo: int, hi: int) -> "FleetArrays":
        """Sub-fleet of DIMMs ``[lo, hi)`` with re-based segment offsets.

        Array fields are zero-copy slices; this is what the sharded
        parallel build pickles out to worker processes.
        """
        ce, st, rp = self.ce_offsets, self.storm_offsets, self.repair_offsets
        return FleetArrays(
            dimm_ids=self.dimm_ids[lo:hi],
            server_ids=self.server_ids[lo:hi],
            times=self.times[ce[lo] : ce[hi]],
            dq_count=self.dq_count[ce[lo] : ce[hi]],
            beat_count=self.beat_count[ce[lo] : ce[hi]],
            dq_interval=self.dq_interval[ce[lo] : ce[hi]],
            beat_interval=self.beat_interval[ce[lo] : ce[hi]],
            n_devices=self.n_devices[ce[lo] : ce[hi]],
            error_bits=self.error_bits[ce[lo] : ce[hi]],
            rows=self.rows[ce[lo] : ce[hi]],
            columns=self.columns[ce[lo] : ce[hi]],
            banks=self.banks[ce[lo] : ce[hi]],
            devices=self.devices[ce[lo] : ce[hi]],
            ce_offsets=ce[lo : hi + 1] - ce[lo],
            storm_times=self.storm_times[st[lo] : st[hi]],
            storm_offsets=st[lo : hi + 1] - st[lo],
            repair_times=self.repair_times[rp[lo] : rp[hi]],
            repair_offsets=rp[lo : hi + 1] - rp[lo],
            ue_hours=self.ue_hours[lo:hi],
        )


def _segmented(
    table: np.ndarray,
    t_col: int,
    dimm_col: int,
    rank: np.ndarray,
    n_dimms: int,
    keep: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort one kind's rows by ``(dimm rank, time)``; return offsets too."""
    if table.size:
        row_rank = rank[table[:, dimm_col].astype(np.int64)]
    else:
        row_rank = np.empty(0, dtype=np.int64)
    mask = row_rank >= 0
    if keep is not None:
        mask &= keep
    if not mask.all():
        table = table[mask]
        row_rank = row_rank[mask]
    order = np.lexsort((table[:, t_col], row_rank))
    counts = np.bincount(row_rank, minlength=n_dimms)
    offsets = np.zeros(n_dimms + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return table[order], offsets


class TelemetryColumns:
    """Columnar mirror of one campaign's telemetry (the fleet store)."""

    def __init__(self) -> None:
        self.ces = ColumnarTable(CE_WIDTH)
        self.ues = ColumnarTable(UE_WIDTH)
        self.events = ColumnarTable(EV_WIDTH)
        self.dimms = Vocabulary()
        self.servers = Vocabulary()
        self.version = 0
        self._fleet: FleetArrays | None = None
        self._fleet_version = -1

    # -- ingestion ---------------------------------------------------------

    def _ce_row(self, ce: CERecord) -> tuple:
        return (
            ce.timestamp_hours,
            ce.dq_count,
            ce.beat_count,
            ce.dq_interval,
            ce.beat_interval,
            len(ce.devices),
            ce.error_bit_count,
            ce.row,
            ce.column,
            ce.bank,
            ce.devices[0] if ce.devices else 0,
            self.dimms.intern(ce.dimm_id),
            self.servers.intern(ce.server_id),
        )

    def append_ce(self, ce: CERecord) -> None:
        self.ces.append(self._ce_row(ce))
        self.version += 1

    def append_ue(self, ue: UERecord) -> None:
        self.ues.append((ue.timestamp_hours, self.dimms.intern(ue.dimm_id)))
        self.version += 1

    def append_event(self, event: MemEventRecord) -> None:
        self.events.append(
            (
                event.timestamp_hours,
                self.dimms.intern(event.dimm_id),
                KIND_CODES[event.kind],
            )
        )
        self.version += 1

    def extend_ces(self, ces: list[CERecord]) -> None:
        """Bulk ingestion: one table construction instead of per-row appends."""
        if not ces:
            return
        self.ces.extend(np.array([self._ce_row(ce) for ce in ces], dtype=float))
        self.version += 1

    def extend_ues(self, ues: list[UERecord]) -> None:
        if not ues:
            return
        self.ues.extend(
            np.array(
                [
                    (ue.timestamp_hours, self.dimms.intern(ue.dimm_id))
                    for ue in ues
                ],
                dtype=float,
            )
        )
        self.version += 1

    def extend_events(self, events: list[MemEventRecord]) -> None:
        if not events:
            return
        self.events.extend(
            np.array(
                [
                    (
                        event.timestamp_hours,
                        self.dimms.intern(event.dimm_id),
                        KIND_CODES[event.kind],
                    )
                    for event in events
                ],
                dtype=float,
            )
        )
        self.version += 1

    # -- fleet assembly ----------------------------------------------------

    def fleet_view(self) -> FleetArrays:
        """Ragged fleet arrays (cached until the next append)."""
        if self._fleet is None or self._fleet_version != self.version:
            self._fleet = self._build_fleet()
            self._fleet_version = self.version
        return self._fleet

    def _build_fleet(self) -> FleetArrays:
        ce_rows = self.ces.rows()
        ce_codes = ce_rows[:, CE_DIMM].astype(np.int64)
        with_ces = np.unique(ce_codes)
        # Fleet order is sorted DIMM id (the order build_samples iterates).
        dimm_ids = sorted(self.dimms.name(int(code)) for code in with_ces)
        rank = np.full(len(self.dimms) or 1, -1, dtype=np.int64)
        for position, dimm_id in enumerate(dimm_ids):
            rank[self.dimms.intern(dimm_id)] = position
        n = len(dimm_ids)

        sorted_ces, ce_offsets = _segmented(ce_rows, CE_T, CE_DIMM, rank, n)
        event_rows = self.events.rows()
        kinds = event_rows[:, EV_KIND].astype(np.int64)
        storms, storm_offsets = _segmented(
            event_rows, EV_T, EV_DIMM, rank, n, keep=kinds == STORM_CODE
        )
        repairs, repair_offsets = _segmented(
            event_rows, EV_T, EV_DIMM, rank, n,
            keep=np.isin(kinds, list(REPAIR_CODES)),
        )

        ue_rows = self.ues.rows()
        first_ue = np.full(n, np.inf)
        if ue_rows.size:
            ue_rank = rank[ue_rows[:, UE_DIMM].astype(np.int64)]
            known = ue_rank >= 0
            np.minimum.at(first_ue, ue_rank[known], ue_rows[known, UE_T])
        ue_hours = np.where(np.isfinite(first_ue), first_ue, np.nan)

        if n:
            server_codes = sorted_ces[ce_offsets[:-1], CE_SERVER].astype(np.int64)
            server_ids = [self.servers.name(int(code)) for code in server_codes]
        else:
            server_ids = []

        return FleetArrays(
            dimm_ids=dimm_ids,
            server_ids=server_ids,
            times=np.ascontiguousarray(sorted_ces[:, CE_T]),
            dq_count=np.ascontiguousarray(sorted_ces[:, CE_DQ_COUNT]),
            beat_count=np.ascontiguousarray(sorted_ces[:, CE_BEAT_COUNT]),
            dq_interval=np.ascontiguousarray(sorted_ces[:, CE_DQ_INTERVAL]),
            beat_interval=np.ascontiguousarray(sorted_ces[:, CE_BEAT_INTERVAL]),
            n_devices=np.ascontiguousarray(sorted_ces[:, CE_N_DEVICES]),
            error_bits=np.ascontiguousarray(sorted_ces[:, CE_ERROR_BITS]),
            rows=sorted_ces[:, CE_ROW].astype(np.int64),
            columns=sorted_ces[:, CE_COLUMN].astype(np.int64),
            banks=sorted_ces[:, CE_BANK].astype(np.int64),
            devices=sorted_ces[:, CE_DEVICE0].astype(np.int64),
            ce_offsets=ce_offsets,
            storm_times=np.ascontiguousarray(storms[:, EV_T]),
            storm_offsets=storm_offsets,
            repair_times=np.ascontiguousarray(repairs[:, EV_T]),
            repair_offsets=repair_offsets,
            ue_hours=ue_hours,
        )

    # -- serialization -----------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The full store as five dense arrays (the ``.npz`` payload)."""
        return {
            "ces": np.ascontiguousarray(self.ces.rows()),
            "ues": np.ascontiguousarray(self.ues.rows()),
            "events": np.ascontiguousarray(self.events.rows()),
            "dimm_names": np.asarray(self.dimms.names(), dtype=str),
            "server_names": np.asarray(self.servers.names(), dtype=str),
        }

    def to_npz(self, path) -> None:
        """Serialize to an uncompressed ``.npz`` (ZIP_STORED, mappable)."""
        with open(path, "wb") as handle:
            np.savez(handle, **self.to_arrays())

    @classmethod
    def from_arrays(
        cls,
        ces: np.ndarray,
        ues: np.ndarray,
        events: np.ndarray,
        dimm_names,
        server_names,
    ) -> "TelemetryColumns":
        """Rebuild a store around existing (possibly mapped) tables.

        The tables are adopted without copying; vocabulary codes must
        match positions in ``dimm_names``/``server_names`` (which
        :meth:`to_arrays` guarantees).
        """
        columns = cls.__new__(cls)
        columns.ces = ColumnarTable.from_rows(
            np.asarray(ces).reshape(-1, CE_WIDTH)
        )
        columns.ues = ColumnarTable.from_rows(
            np.asarray(ues).reshape(-1, UE_WIDTH)
        )
        columns.events = ColumnarTable.from_rows(
            np.asarray(events).reshape(-1, EV_WIDTH)
        )
        columns.dimms = Vocabulary.from_names(
            [str(name) for name in np.asarray(dimm_names).tolist()]
        )
        columns.servers = Vocabulary.from_names(
            [str(name) for name in np.asarray(server_names).tolist()]
        )
        columns.version = len(columns.ces) + len(columns.ues) + len(
            columns.events
        )
        columns._fleet = None
        columns._fleet_version = -1
        return columns

    @classmethod
    def from_npz(cls, path, *, mmap: bool = False) -> "TelemetryColumns":
        """Reload :meth:`to_npz` output, bit-for-bit.

        ``mmap=True`` adopts read-only memory-mapped tables (zero-copy;
        safe for replay/extraction, which never mutate rows in place).
        """
        from repro.telemetry.npz_io import load_npz_arrays

        arrays = load_npz_arrays(path, mmap=mmap)
        return cls.from_arrays(
            arrays["ces"],
            arrays["ues"],
            arrays["events"],
            arrays["dimm_names"],
            arrays["server_names"],
        )


def segmented_searchsorted(
    values: np.ndarray,
    value_offsets: np.ndarray,
    queries: np.ndarray,
    query_segments: np.ndarray,
) -> np.ndarray:
    """``searchsorted(..., side="left")`` of each query within its segment.

    ``values`` concatenates per-segment sorted arrays (segment ``s`` lives
    in ``values[value_offsets[s]:value_offsets[s + 1]]``).  Queries carry
    their segment in ``query_segments`` and need not be sorted.  One stable
    lexsort of (segment, value, query-before-value) merges everything; each
    query's within-segment insertion index is then the running count of
    values ahead of it minus the values of earlier segments.  The float
    comparisons are exactly those of per-segment ``np.searchsorted`` calls,
    so the result is bit-for-bit identical — just without the per-segment
    call overhead.
    """
    n_values = values.size
    n_queries = queries.size
    if n_queries == 0:
        return np.empty(0, dtype=np.int64)
    if n_values == 0:
        return np.zeros(n_queries, dtype=np.int64)
    value_segments = np.repeat(
        np.arange(value_offsets.size - 1), np.diff(value_offsets)
    )
    merged_values = np.concatenate([values, queries])
    merged_segments = np.concatenate([value_segments, query_segments])
    # side="left": queries sort before equal values.
    tags = np.zeros(merged_values.size, dtype=np.int8)
    tags[:n_values] = 1
    order = np.lexsort((tags, merged_values, merged_segments))
    value_running = np.cumsum(order < n_values)
    query_positions = np.flatnonzero(order >= n_values)
    result = np.empty(n_queries, dtype=np.int64)
    result[order[query_positions] - n_values] = (
        value_running[query_positions]
        - value_offsets[query_segments[order[query_positions] - n_values]]
    )
    return result
