"""Append-only telemetry store with time/DIMM queries.

The store is the in-process stand-in for the paper's Data Lake: every CE,
UE, memory event and configuration record lands here, and the analysis and
feature layers query it.  Records can be persisted to / loaded from JSONL so
the MLOps data pipeline has a durable format.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import json
import warnings
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.telemetry.columnar import FleetArrays, TelemetryColumns
from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventRecord,
    UERecord,
    record_from_dict,
)


class LogStore:
    """Holds all telemetry of one simulated (or ingested) campaign."""

    def __init__(self) -> None:
        self._ces: list[CERecord] = []
        self._ues: list[UERecord] = []
        self._events: list[MemEventRecord] = []
        self._configs: dict[str, DimmConfigRecord] = {}
        self._ce_by_dimm: dict[str, list[CERecord]] = {}
        self._ue_by_dimm: dict[str, list[UERecord]] = {}
        self._events_by_dimm: dict[str, list[MemEventRecord]] = {}
        self._sorted = True
        # Columnar (struct-of-arrays) mirror: feeds the fleet-level
        # extraction engine without touching the record objects again.
        self.columns = TelemetryColumns()
        #: Malformed JSONL lines/payloads dropped by :meth:`load_jsonl`.
        self.skipped_lines = 0
        # Per-(kind, dimm) timestamp arrays backing the binary searches in
        # _slice_by_time; rebuilt lazily, invalidated on append.
        self._ts_cache: dict[tuple[str, str], np.ndarray] = {}

    # -- ingestion ---------------------------------------------------------

    def add_ce(self, record: CERecord) -> None:
        self._ces.append(record)
        self._ce_by_dimm.setdefault(record.dimm_id, []).append(record)
        self.columns.append_ce(record)
        self._sorted = False
        self._ts_cache.pop(("ce", record.dimm_id), None)

    def add_ue(self, record: UERecord) -> None:
        self._ues.append(record)
        self._ue_by_dimm.setdefault(record.dimm_id, []).append(record)
        self.columns.append_ue(record)
        self._sorted = False
        self._ts_cache.pop(("ue", record.dimm_id), None)

    def add_event(self, record: MemEventRecord) -> None:
        self._events.append(record)
        self._events_by_dimm.setdefault(record.dimm_id, []).append(record)
        self.columns.append_event(record)
        self._sorted = False
        self._ts_cache.pop(("event", record.dimm_id), None)

    def add_config(self, record: DimmConfigRecord) -> None:
        self._configs[record.dimm_id] = record

    def extend(self, records: Iterable) -> None:
        """Ingest a heterogeneous stream of records."""
        for record in records:
            if isinstance(record, CERecord):
                self.add_ce(record)
            elif isinstance(record, UERecord):
                self.add_ue(record)
            elif isinstance(record, MemEventRecord):
                self.add_event(record)
            elif isinstance(record, DimmConfigRecord):
                self.add_config(record)
            else:
                raise TypeError(f"unknown record type {type(record)!r}")

    def ingest_bulk(self, records: Iterable) -> int:
        """Bulk ingestion: one columnar append per record kind.

        Equivalent to :meth:`extend` but amortizes the columnar-store work
        over the whole batch (one table construction per kind instead of a
        per-record row append); this is the JSONL-load fast path.
        """
        ces: list[CERecord] = []
        ues: list[UERecord] = []
        events: list[MemEventRecord] = []
        count = 0
        for record in records:
            count += 1
            if isinstance(record, CERecord):
                ces.append(record)
            elif isinstance(record, UERecord):
                ues.append(record)
            elif isinstance(record, MemEventRecord):
                events.append(record)
            elif isinstance(record, DimmConfigRecord):
                self._configs[record.dimm_id] = record
            else:
                raise TypeError(f"unknown record type {type(record)!r}")
        for record in ces:
            self._ce_by_dimm.setdefault(record.dimm_id, []).append(record)
        for record in ues:
            self._ue_by_dimm.setdefault(record.dimm_id, []).append(record)
        for record in events:
            self._events_by_dimm.setdefault(record.dimm_id, []).append(record)
        self._ces.extend(ces)
        self._ues.extend(ues)
        self._events.extend(events)
        self.columns.extend_ces(ces)
        self.columns.extend_ues(ues)
        self.columns.extend_events(events)
        if ces or ues or events:
            self._sorted = False
            self._ts_cache.clear()
        return count

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        key = lambda record: record.timestamp_hours  # noqa: E731
        self._ces.sort(key=key)
        self._ues.sort(key=key)
        self._events.sort(key=key)
        for per_dimm in (self._ce_by_dimm, self._ue_by_dimm, self._events_by_dimm):
            for records in per_dimm.values():
                records.sort(key=key)
        self._sorted = True

    # -- queries -----------------------------------------------------------

    @property
    def ces(self) -> list[CERecord]:
        self._ensure_sorted()
        return self._ces

    @property
    def ues(self) -> list[UERecord]:
        self._ensure_sorted()
        return self._ues

    @property
    def events(self) -> list[MemEventRecord]:
        self._ensure_sorted()
        return self._events

    @property
    def configs(self) -> dict[str, DimmConfigRecord]:
        return dict(self._configs)

    def dimm_ids_with_ces(self) -> list[str]:
        return sorted(self._ce_by_dimm)

    def config_for(self, dimm_id: str) -> DimmConfigRecord:
        return self._configs[dimm_id]

    def _timestamps(self, kind: str, dimm_id: str, records: list) -> np.ndarray:
        """Cached timestamp array of one DIMM's records (call after sorting)."""
        key = (kind, dimm_id)
        cached = self._ts_cache.get(key)
        if cached is None or cached.size != len(records):
            cached = np.fromiter(
                (record.timestamp_hours for record in records),
                dtype=float,
                count=len(records),
            )
            self._ts_cache[key] = cached
        return cached

    def ces_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[CERecord]:
        """CEs of one DIMM within ``[start_hour, end_hour)`` (half-open)."""
        self._ensure_sorted()
        records = self._ce_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("ce", dimm_id, records),
            start_hour, end_hour,
        )

    def ues_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[UERecord]:
        self._ensure_sorted()
        records = self._ue_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("ue", dimm_id, records),
            start_hour, end_hour,
        )

    def events_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[MemEventRecord]:
        self._ensure_sorted()
        records = self._events_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("event", dimm_id, records),
            start_hour, end_hour,
        )

    def fleet_arrays(self) -> FleetArrays:
        """Columnar fleet view: every DIMM's history as ragged arrays.

        This is the zero-object-loop path the fleet extraction engine
        consumes; see :class:`repro.telemetry.columnar.FleetArrays`.
        The view is cached until the next appended record.
        """
        return self.columns.fleet_view()

    def first_ce_hour(self, dimm_id: str) -> float | None:
        records = self.ces_for_dimm(dimm_id)
        return records[0].timestamp_hours if records else None

    def first_ue_hour(self, dimm_id: str) -> float | None:
        records = self.ues_for_dimm(dimm_id)
        return records[0].timestamp_hours if records else None

    @property
    def end_hour(self) -> float:
        """Timestamp of the last record in the store (0.0 when empty)."""
        self._ensure_sorted()
        last = 0.0
        for records in (self._ces, self._ues, self._events):
            if records:
                last = max(last, records[-1].timestamp_hours)
        return last

    # -- persistence ---------------------------------------------------------

    def dump_jsonl(self, path: str | Path, chunk_lines: int = 4096) -> int:
        """Write every record as one JSON object per line; returns count.

        Lines are buffered and written ``chunk_lines`` at a time: few
        write syscalls without ever materializing the whole serialized
        campaign in memory.
        """
        self._ensure_sorted()
        path = Path(path)
        count = 0
        chunk: list[str] = []
        with path.open("w", encoding="utf-8") as handle:
            for records in (self._configs.values(), self._ces, self._ues, self._events):
                for record in records:
                    chunk.append(json.dumps(record.to_dict()))
                    if len(chunk) >= chunk_lines:
                        handle.write("\n".join(chunk) + "\n")
                        count += len(chunk)
                        chunk.clear()
            if chunk:
                handle.write("\n".join(chunk) + "\n")
                count += len(chunk)
        return count

    @classmethod
    def load_jsonl(
        cls,
        path: str | Path,
        chunk_lines: int = 4096,
        metrics=None,
    ) -> "LogStore":
        """Bulk load: chunked JSON parses + one columnar ingest.

        Joining ``chunk_lines`` lines into one JSON array trades that many
        small ``json.loads`` calls for one C-level parse while keeping the
        set of live payload dicts bounded (a whole-file join wins the parse
        but loses more to allocator/GC pressure).  :meth:`ingest_bulk` then
        appends each record kind to the columnar store in one shot instead
        of per row.  Cyclic GC is suspended for the duration: the load
        allocates millions of acyclic, long-lived objects, and letting the
        collector scan a large live heap on every allocation threshold
        dominates load time in long-running processes.

        Malformed lines (broken JSON, or payloads that don't decode into a
        record) are skipped, counted on the returned store's
        ``skipped_lines``, and surfaced in one warning — a torn tail line
        from a crashed writer must not make a whole campaign unloadable.
        ``metrics`` (a :class:`repro.obs.MetricsRegistry`) additionally
        exposes the count as
        ``repro_logstore_skipped_lines_total{source=<file name>}``.
        """
        store = cls()
        records: list = []
        skipped = 0

        def on_skip(_line: str) -> None:
            nonlocal skipped
            skipped += 1

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                for payloads in _iter_payload_chunks(
                    handle, chunk_lines, on_skip=on_skip
                ):
                    mark = len(records)
                    try:
                        records.extend(map(record_from_dict, payloads))
                    except (KeyError, ValueError, TypeError):
                        # Rare path: re-walk the chunk per payload so only
                        # the malformed records are dropped (the partial
                        # extend is rolled back first).
                        del records[mark:]
                        for payload in payloads:
                            try:
                                records.append(record_from_dict(payload))
                            except (KeyError, ValueError, TypeError):
                                skipped += 1
            store.ingest_bulk(records)
        finally:
            if gc_was_enabled:
                gc.enable()
        store.skipped_lines = skipped
        if metrics is not None:
            metrics.counter(
                "repro_logstore_skipped_lines_total",
                "Malformed JSONL lines dropped by the tolerant loader.",
                labels=("source",),
            ).labels(source=Path(path).name).inc(skipped)
        if skipped:
            warnings.warn(
                f"load_jsonl: skipped {skipped} malformed line(s) in {path}",
                RuntimeWarning,
                stacklevel=2,
            )
        return store

    def __len__(self) -> int:
        return len(self._ces) + len(self._ues) + len(self._events)


def _slice_by_time(
    records: list,
    timestamps: np.ndarray,
    start_hour: float | None,
    end_hour: float | None,
):
    """Binary-search a time-sorted record list down to a half-open window."""
    if not records:
        return []
    if start_hour is None and end_hour is None:
        return records[:]
    lo = (
        0
        if start_hour is None
        else int(np.searchsorted(timestamps, start_hour, side="left"))
    )
    hi = (
        len(records)
        if end_hour is None
        else int(np.searchsorted(timestamps, end_hour, side="left"))
    )
    return records[lo:hi]


def _iter_payload_chunks(handle, chunk_lines: int, on_skip=None):
    """Yield payload-dict lists, one C-level JSON parse per line chunk.

    With ``on_skip`` set, a chunk whose joined parse fails is re-parsed
    line by line and each broken line is reported via ``on_skip(line)``
    instead of aborting the whole load; without it, the JSON error
    propagates (the strict behaviour ``read_jsonl_payloads`` keeps).
    """
    while True:
        chunk = list(itertools.islice(handle, chunk_lines))
        if not chunk:
            return
        body = ",".join(line for line in chunk if line.strip())
        if not body:
            continue
        try:
            yield json.loads("[" + body + "]")
        except json.JSONDecodeError:
            if on_skip is None:
                raise
            payloads = []
            for line in chunk:
                line = line.strip()
                if not line:
                    continue
                try:
                    payloads.append(json.loads(line))
                except json.JSONDecodeError:
                    on_skip(line)
            yield payloads


def read_jsonl_payloads(path: str | Path, chunk_lines: int = 4096) -> list[dict]:
    """Parse a JSONL file into payload dicts (chunked ``json.loads`` calls)."""
    payloads: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for chunk in _iter_payload_chunks(handle, chunk_lines):
            payloads.extend(chunk)
    return payloads


def iter_stream(store: LogStore) -> Iterator:
    """Yield all CE/UE/event records in global timestamp order.

    This is the "stream" view the MLOps online-serving path consumes.  The
    three per-kind lists are already time-sorted, so a k-way heap merge
    replaces the full re-sort (ties keep the CE < UE < event order the old
    stable sort produced).
    """
    return heapq.merge(
        store.ces, store.ues, store.events,
        key=lambda record: record.timestamp_hours,
    )
