"""Append-only telemetry store with time/DIMM queries.

The store is the in-process stand-in for the paper's Data Lake: every CE,
UE, memory event and configuration record lands here, and the analysis and
feature layers query it.  Records can be persisted to / loaded from JSONL so
the MLOps data pipeline has a durable format.
"""

from __future__ import annotations

import bisect
import heapq
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.telemetry.records import (
    CERecord,
    DimmConfigRecord,
    MemEventRecord,
    UERecord,
    record_from_dict,
)


class LogStore:
    """Holds all telemetry of one simulated (or ingested) campaign."""

    def __init__(self) -> None:
        self._ces: list[CERecord] = []
        self._ues: list[UERecord] = []
        self._events: list[MemEventRecord] = []
        self._configs: dict[str, DimmConfigRecord] = {}
        self._ce_by_dimm: dict[str, list[CERecord]] = {}
        self._ue_by_dimm: dict[str, list[UERecord]] = {}
        self._events_by_dimm: dict[str, list[MemEventRecord]] = {}
        self._sorted = True
        # Per-(kind, dimm) timestamp lists backing the binary searches in
        # _slice_by_time; rebuilt lazily, invalidated on append.
        self._ts_cache: dict[tuple[str, str], list[float]] = {}

    # -- ingestion ---------------------------------------------------------

    def add_ce(self, record: CERecord) -> None:
        self._ces.append(record)
        self._ce_by_dimm.setdefault(record.dimm_id, []).append(record)
        self._sorted = False
        self._ts_cache.pop(("ce", record.dimm_id), None)

    def add_ue(self, record: UERecord) -> None:
        self._ues.append(record)
        self._ue_by_dimm.setdefault(record.dimm_id, []).append(record)
        self._sorted = False
        self._ts_cache.pop(("ue", record.dimm_id), None)

    def add_event(self, record: MemEventRecord) -> None:
        self._events.append(record)
        self._events_by_dimm.setdefault(record.dimm_id, []).append(record)
        self._sorted = False
        self._ts_cache.pop(("event", record.dimm_id), None)

    def add_config(self, record: DimmConfigRecord) -> None:
        self._configs[record.dimm_id] = record

    def extend(self, records: Iterable) -> None:
        """Ingest a heterogeneous stream of records."""
        for record in records:
            if isinstance(record, CERecord):
                self.add_ce(record)
            elif isinstance(record, UERecord):
                self.add_ue(record)
            elif isinstance(record, MemEventRecord):
                self.add_event(record)
            elif isinstance(record, DimmConfigRecord):
                self.add_config(record)
            else:
                raise TypeError(f"unknown record type {type(record)!r}")

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        key = lambda record: record.timestamp_hours  # noqa: E731
        self._ces.sort(key=key)
        self._ues.sort(key=key)
        self._events.sort(key=key)
        for per_dimm in (self._ce_by_dimm, self._ue_by_dimm, self._events_by_dimm):
            for records in per_dimm.values():
                records.sort(key=key)
        self._sorted = True

    # -- queries -----------------------------------------------------------

    @property
    def ces(self) -> list[CERecord]:
        self._ensure_sorted()
        return self._ces

    @property
    def ues(self) -> list[UERecord]:
        self._ensure_sorted()
        return self._ues

    @property
    def events(self) -> list[MemEventRecord]:
        self._ensure_sorted()
        return self._events

    @property
    def configs(self) -> dict[str, DimmConfigRecord]:
        return dict(self._configs)

    def dimm_ids_with_ces(self) -> list[str]:
        return sorted(self._ce_by_dimm)

    def config_for(self, dimm_id: str) -> DimmConfigRecord:
        return self._configs[dimm_id]

    def _timestamps(self, kind: str, dimm_id: str, records: list) -> list[float]:
        """Cached timestamp list of one DIMM's records (call after sorting)."""
        key = (kind, dimm_id)
        cached = self._ts_cache.get(key)
        if cached is None or len(cached) != len(records):
            cached = [record.timestamp_hours for record in records]
            self._ts_cache[key] = cached
        return cached

    def ces_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[CERecord]:
        """CEs of one DIMM within ``[start_hour, end_hour)`` (half-open)."""
        self._ensure_sorted()
        records = self._ce_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("ce", dimm_id, records),
            start_hour, end_hour,
        )

    def ues_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[UERecord]:
        self._ensure_sorted()
        records = self._ue_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("ue", dimm_id, records),
            start_hour, end_hour,
        )

    def events_for_dimm(
        self,
        dimm_id: str,
        start_hour: float | None = None,
        end_hour: float | None = None,
    ) -> list[MemEventRecord]:
        self._ensure_sorted()
        records = self._events_by_dimm.get(dimm_id, [])
        return _slice_by_time(
            records, self._timestamps("event", dimm_id, records),
            start_hour, end_hour,
        )

    def first_ce_hour(self, dimm_id: str) -> float | None:
        records = self.ces_for_dimm(dimm_id)
        return records[0].timestamp_hours if records else None

    def first_ue_hour(self, dimm_id: str) -> float | None:
        records = self.ues_for_dimm(dimm_id)
        return records[0].timestamp_hours if records else None

    @property
    def end_hour(self) -> float:
        """Timestamp of the last record in the store (0.0 when empty)."""
        self._ensure_sorted()
        last = 0.0
        for records in (self._ces, self._ues, self._events):
            if records:
                last = max(last, records[-1].timestamp_hours)
        return last

    # -- persistence ---------------------------------------------------------

    def dump_jsonl(self, path: str | Path) -> int:
        """Write every record as one JSON object per line; returns count."""
        self._ensure_sorted()
        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as handle:
            for record in self._configs.values():
                handle.write(json.dumps(record.to_dict()) + "\n")
                count += 1
            for records in (self._ces, self._ues, self._events):
                for record in records:
                    handle.write(json.dumps(record.to_dict()) + "\n")
                    count += 1
        return count

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "LogStore":
        store = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.extend([record_from_dict(json.loads(line))])
        return store

    def __len__(self) -> int:
        return len(self._ces) + len(self._ues) + len(self._events)


def _slice_by_time(
    records: list,
    timestamps: list[float],
    start_hour: float | None,
    end_hour: float | None,
):
    """Binary-search a time-sorted record list down to a half-open window."""
    if not records:
        return []
    if start_hour is None and end_hour is None:
        return records[:]
    lo = 0 if start_hour is None else bisect.bisect_left(timestamps, start_hour)
    hi = len(records) if end_hour is None else bisect.bisect_left(timestamps, end_hour)
    return records[lo:hi]


def iter_stream(store: LogStore) -> Iterator:
    """Yield all CE/UE/event records in global timestamp order.

    This is the "stream" view the MLOps online-serving path consumes.  The
    three per-kind lists are already time-sorted, so a k-way heap merge
    replaces the full re-sort (ties keep the CE < UE < event order the old
    stable sort produced).
    """
    return heapq.merge(
        store.ces, store.ues, store.events,
        key=lambda record: record.timestamp_hours,
    )
