"""BMC log-collection path.

The Baseboard Management Controller supervises the server and is where all
memory error logs land (paper Section II-B).  :class:`BmcCollector` is the
front end of the data pipeline: it accepts *raw* machine-check register
values, decodes them via :mod:`repro.telemetry.mce`, applies CE-storm
suppression, and appends structured records to a :class:`LogStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ras.ce_storm import CeStormDetector, StormAction, StormConfig
from repro.telemetry.log_store import LogStore
from repro.telemetry.mce import McaSignal, decode_mce
from repro.telemetry.records import (
    CERecord,
    MemEventKind,
    MemEventRecord,
    UERecord,
)


@dataclass
class BmcStats:
    """Collection-path counters (surfaced on the MLOps monitoring dashboard)."""

    ces_logged: int = 0
    ces_suppressed: int = 0
    ues_logged: int = 0
    storms: int = 0


class BmcCollector:
    """Decodes raw MCE registers into the log store, with storm suppression."""

    def __init__(
        self,
        store: LogStore,
        storm_config: StormConfig | None = None,
    ) -> None:
        self.store = store
        self.storm_detector = CeStormDetector(storm_config)
        self.stats = BmcStats()

    def collect_raw(
        self,
        timestamp_hours: float,
        server_id: str,
        dimm_id: str,
        status: int,
        addr: int,
        misc: int,
        fault_id: int = -1,
    ) -> StormAction | None:
        """Ingest one raw machine-check; returns the storm action for CEs."""
        signal = decode_mce(status, addr, misc)
        if signal.uncorrected:
            self._log_ue(timestamp_hours, server_id, dimm_id, signal, fault_id)
            return None
        return self._log_ce(timestamp_hours, server_id, dimm_id, signal, fault_id)

    def _log_ce(
        self,
        timestamp_hours: float,
        server_id: str,
        dimm_id: str,
        signal: McaSignal,
        fault_id: int,
    ) -> StormAction:
        action = self.storm_detector.observe(dimm_id, timestamp_hours)
        if action is StormAction.SUPPRESS:
            self.stats.ces_suppressed += 1
            return action
        if action is StormAction.STORM_START:
            self.stats.storms += 1
            self.store.add_event(
                MemEventRecord(
                    timestamp_hours=timestamp_hours,
                    server_id=server_id,
                    dimm_id=dimm_id,
                    kind=MemEventKind.CE_STORM,
                    detail=f"storm #{self.storm_detector.storm_count(dimm_id)}",
                )
            )
        devices = signal.devices or (signal.device,)
        self.store.add_ce(
            CERecord(
                timestamp_hours=timestamp_hours,
                server_id=server_id,
                dimm_id=dimm_id,
                rank=signal.rank,
                bank=signal.bank,
                row=signal.row,
                column=signal.column,
                devices=devices,
                dq_count=signal.dq_count,
                beat_count=signal.beat_count,
                dq_interval=signal.dq_interval,
                beat_interval=signal.beat_interval,
                error_bit_count=signal.error_bit_count,
                fault_id=fault_id,
            )
        )
        self.stats.ces_logged += 1
        return action

    def _log_ue(
        self,
        timestamp_hours: float,
        server_id: str,
        dimm_id: str,
        signal: McaSignal,
        fault_id: int,
    ) -> None:
        had_ces = bool(self.store.ces_for_dimm(dimm_id))
        devices = signal.devices or (signal.device,)
        self.store.add_ue(
            UERecord(
                timestamp_hours=timestamp_hours,
                server_id=server_id,
                dimm_id=dimm_id,
                rank=signal.rank,
                bank=signal.bank,
                row=signal.row,
                column=signal.column,
                devices=devices,
                sudden=not had_ces,
                fault_id=fault_id,
            )
        )
        self.stats.ues_logged += 1
