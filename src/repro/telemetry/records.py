"""Telemetry record types.

These are the structured records the BMC pipeline emits (paper Section II-B:
"all these logs including Corrected and Uncorrected errors, events, and
memory specifications are recorded in the BMC").  Timestamps are simulation
hours (float) from the start of the observation campaign.

``fault_id`` on error records is *ground truth* carried through for analysis
and calibration only; the feature pipeline never reads it.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.dram.errorbits import BusErrorPattern


class MemEventKind(enum.Enum):
    """Memory events recorded alongside raw errors."""

    CE_STORM = "ce_storm"
    CE_SUPPRESSED = "ce_suppressed"
    PAGE_OFFLINE = "page_offline"
    ROW_SPARED = "row_spared"
    BANK_SPARED = "bank_spared"
    PCLS_APPLIED = "pcls_applied"


@dataclass(frozen=True, slots=True)
class CERecord:
    """One corrected-error log entry."""

    timestamp_hours: float
    server_id: str
    dimm_id: str
    rank: int
    bank: int
    row: int
    column: int
    devices: tuple[int, ...]
    dq_count: int
    beat_count: int
    dq_interval: int
    beat_interval: int
    error_bit_count: int
    fault_id: int = -1  # ground truth, never a model feature

    @property
    def is_multi_device(self) -> bool:
        return len(self.devices) > 1

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["devices"] = list(self.devices)
        payload["record_type"] = "ce"
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CERecord":
        # Explicit kwargs (no payload copy): this runs once per line on the
        # JSONL bulk-load path, where the dict round trip dominated.
        return cls(
            timestamp_hours=payload["timestamp_hours"],
            server_id=payload["server_id"],
            dimm_id=payload["dimm_id"],
            rank=payload["rank"],
            bank=payload["bank"],
            row=payload["row"],
            column=payload["column"],
            devices=tuple(payload["devices"]),
            dq_count=payload["dq_count"],
            beat_count=payload["beat_count"],
            dq_interval=payload["dq_interval"],
            beat_interval=payload["beat_interval"],
            error_bit_count=payload["error_bit_count"],
            fault_id=payload.get("fault_id", -1),
        )

    @classmethod
    def from_pattern(
        cls,
        *,
        timestamp_hours: float,
        server_id: str,
        dimm_id: str,
        rank: int,
        bank: int,
        row: int,
        column: int,
        pattern: BusErrorPattern,
        fault_id: int = -1,
    ) -> "CERecord":
        """Summarise a bus error pattern into a log record.

        Bit-level statistics follow the paper's per-device convention: for a
        multi-device burst we record the statistics of the worst (most bits)
        device, since production decoders report one locus per MCE.
        """
        worst = max(pattern.device_bits, key=lambda item: item[1].error_bit_count)
        bitmap = worst[1]
        return cls(
            timestamp_hours=timestamp_hours,
            server_id=server_id,
            dimm_id=dimm_id,
            rank=rank,
            bank=bank,
            row=row,
            column=column,
            devices=pattern.devices,
            dq_count=bitmap.dq_count,
            beat_count=bitmap.beat_count,
            dq_interval=bitmap.dq_interval,
            beat_interval=bitmap.beat_interval,
            error_bit_count=pattern.error_bit_count,
            fault_id=fault_id,
        )


@dataclass(frozen=True, slots=True)
class UERecord:
    """One uncorrectable-error log entry."""

    timestamp_hours: float
    server_id: str
    dimm_id: str
    rank: int
    bank: int
    row: int
    column: int
    devices: tuple[int, ...]
    sudden: bool = False  # ground truth: no CE history before this UE
    fault_id: int = -1

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["devices"] = list(self.devices)
        payload["record_type"] = "ue"
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "UERecord":
        return cls(
            timestamp_hours=payload["timestamp_hours"],
            server_id=payload["server_id"],
            dimm_id=payload["dimm_id"],
            rank=payload["rank"],
            bank=payload["bank"],
            row=payload["row"],
            column=payload["column"],
            devices=tuple(payload["devices"]),
            sudden=payload.get("sudden", False),
            fault_id=payload.get("fault_id", -1),
        )


@dataclass(frozen=True, slots=True)
class MemEventRecord:
    """One memory event (CE storm, page offline, sparing action, ...)."""

    timestamp_hours: float
    server_id: str
    dimm_id: str
    kind: MemEventKind
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "record_type": "event",
            "timestamp_hours": self.timestamp_hours,
            "server_id": self.server_id,
            "dimm_id": self.dimm_id,
            "kind": self.kind.value,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MemEventRecord":
        return cls(
            timestamp_hours=payload["timestamp_hours"],
            server_id=payload["server_id"],
            dimm_id=payload["dimm_id"],
            kind=MemEventKind(payload["kind"]),
            detail=payload.get("detail", ""),
        )


@dataclass(frozen=True, slots=True)
class DimmConfigRecord:
    """Static DIMM configuration as logged by the BMC inventory pass."""

    dimm_id: str
    server_id: str
    platform: str
    manufacturer: str
    part_number: str
    capacity_gb: int
    data_width: int
    frequency_mts: int
    chip_process: str

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["record_type"] = "config"
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DimmConfigRecord":
        return cls(
            dimm_id=payload["dimm_id"],
            server_id=payload["server_id"],
            platform=payload["platform"],
            manufacturer=payload["manufacturer"],
            part_number=payload["part_number"],
            capacity_gb=payload["capacity_gb"],
            data_width=payload["data_width"],
            frequency_mts=payload["frequency_mts"],
            chip_process=payload["chip_process"],
        )


RECORD_TYPES = {
    "ce": CERecord,
    "ue": UERecord,
    "event": MemEventRecord,
    "config": DimmConfigRecord,
}


def record_from_dict(payload: dict[str, Any]) -> Any:
    """Deserialize any telemetry record from its dict form."""
    kind = payload.get("record_type")
    if kind not in RECORD_TYPES:
        raise ValueError(f"unknown record_type {kind!r}")
    return RECORD_TYPES[kind].from_dict(payload)
