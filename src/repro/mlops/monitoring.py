"""Monitoring: dashboards, drift detection, feedback (paper Figure 6, top).

Every MLOps phase reports counters and time series into a
:class:`Dashboard`.  :class:`DriftMonitor` compares serving-time feature
distributions against the training snapshot using PSI (Population
Stability Index) and the two-sample Kolmogorov-Smirnov test, and raises a
retraining signal when drift is sustained — the feedback loop that keeps
the production models current.

.. deprecated::
    :class:`Dashboard` / :class:`MetricSeries` are now a thin
    compatibility shim over :class:`repro.obs.MetricsRegistry` — the
    unified metrics surface shared with the replay/serving stack.  New
    code should register instruments on a registry directly; the shim
    keeps the lifecycle's dotted ``increment``/``record``/``snapshot``
    API working and mirrors everything into the backing registry (as
    ``repro_dashboard_*`` families) so one Prometheus export covers
    drift monitoring and replay alike.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.obs.metrics import MetricsRegistry


@dataclass
class MetricSeries:
    """Time/value pairs (kept for drift tooling; latest mirrors to a
    registry gauge via :class:`Dashboard`)."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def latest(self) -> float | None:
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0


def _sanitize(name: str) -> str:
    """Dotted dashboard names -> valid prometheus metric names."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


class Dashboard:
    """Named counters and time series for all pipeline phases.

    Deprecated shim: values live in the backing
    :class:`~repro.obs.metrics.MetricsRegistry` (pass ``registry`` to
    share one export surface with an instrumented replay); ``snapshot()``
    reads them back under the original dotted names.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.series: dict[str, MetricSeries] = defaultdict(MetricSeries)
        self._counter_names: dict[str, str] = {}  # dotted -> registry name

    def increment(self, name: str, amount: float = 1.0) -> None:
        metric = self._counter_names.get(name)
        if metric is None:
            metric = "repro_dashboard_" + _sanitize(name) + "_total"
            self._counter_names[name] = metric
        self.registry.counter(
            metric, "MLOps dashboard counter %r." % name
        ).inc(amount)

    def record(self, name: str, t: float, value: float) -> None:
        self.series[name].record(t, value)
        self.registry.gauge(
            "repro_dashboard_" + _sanitize(name) + "_latest",
            "MLOps dashboard series %r (latest value)." % name,
        ).set(value)

    @property
    def counters(self) -> dict[str, float]:
        """Back-compat view of the registry's dashboard counters."""
        return {
            dotted: self.registry.get(metric).labels().value
            for dotted, metric in self._counter_names.items()
        }

    def snapshot(self) -> dict[str, float]:
        summary = dict(self.counters)
        for name, series in self.series.items():
            latest = series.latest()
            if latest is not None:
                summary[f"{name}.latest"] = latest
        return summary


def population_stability_index(
    expected: np.ndarray, observed: np.ndarray, bins: int = 10
) -> float:
    """PSI between a reference sample and an observed sample.

    Common operational reading: < 0.1 stable, 0.1-0.25 moderate shift,
    > 0.25 significant shift.
    """
    expected = np.asarray(expected, dtype=float)
    observed = np.asarray(observed, dtype=float)
    if expected.size == 0 or observed.size == 0:
        return 0.0
    quantiles = np.quantile(expected, np.linspace(0.0, 1.0, bins + 1))
    edges = np.unique(quantiles)
    if edges.size < 3:
        return 0.0
    expected_hist, _ = np.histogram(expected, bins=edges)
    observed_hist, _ = np.histogram(observed, bins=edges)
    expected_frac = np.clip(expected_hist / expected.size, 1e-6, None)
    observed_frac = np.clip(observed_hist / observed.size, 1e-6, None)
    return float(np.sum((observed_frac - expected_frac)
                        * np.log(observed_frac / expected_frac)))


@dataclass(frozen=True)
class DriftReport:
    feature: str
    psi: float
    ks_statistic: float
    ks_pvalue: float

    def is_drifted(self, psi_threshold: float = 0.25, alpha: float = 0.01) -> bool:
        return self.psi > psi_threshold and self.ks_pvalue < alpha


class DriftMonitor:
    """Feature-distribution drift against a training reference."""

    def __init__(
        self,
        reference: np.ndarray,
        feature_names: list[str],
        psi_threshold: float = 0.25,
        min_samples: int = 50,
    ):
        reference = np.asarray(reference, dtype=float)
        if reference.ndim != 2 or reference.shape[1] != len(feature_names):
            raise ValueError("reference shape does not match feature names")
        self.reference = reference
        self.feature_names = list(feature_names)
        self.psi_threshold = psi_threshold
        self.min_samples = min_samples
        self._buffer: list[np.ndarray] = []

    def observe(self, vector: np.ndarray) -> None:
        self._buffer.append(np.asarray(vector, dtype=float))

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def check(self) -> list[DriftReport]:
        """Drift reports for every feature (empty until enough samples)."""
        if len(self._buffer) < self.min_samples:
            return []
        observed = np.vstack(self._buffer)
        reports = []
        for index, name in enumerate(self.feature_names):
            ref_column = self.reference[:, index]
            obs_column = observed[:, index]
            if np.allclose(ref_column.std(), 0) and np.allclose(obs_column.std(), 0):
                continue
            ks = stats.ks_2samp(ref_column, obs_column)
            reports.append(
                DriftReport(
                    feature=name,
                    psi=population_stability_index(ref_column, obs_column),
                    ks_statistic=float(ks.statistic),
                    ks_pvalue=float(ks.pvalue),
                )
            )
        return reports

    def needs_retraining(self, drifted_feature_fraction: float = 0.2) -> bool:
        """Retrain when a sustained fraction of features has drifted."""
        reports = self.check()
        if not reports:
            return False
        drifted = sum(report.is_drifted(self.psi_threshold) for report in reports)
        return drifted / len(reports) >= drifted_feature_fraction

    def reset(self) -> None:
        self._buffer.clear()
