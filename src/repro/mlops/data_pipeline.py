"""Data pipeline: raw sources -> Data Lake (paper Figure 6, left).

The pipeline is a DAG of named stages (collection, parsing, validation,
loading) executed in topological order — a single-process realization of
the paper's DLI-based ingestion.  Stages are plain callables so tests can
inject failures at any point.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import networkx as nx

from repro.telemetry.log_store import LogStore, read_jsonl_payloads
from repro.telemetry.records import record_from_dict


@dataclass
class StageResult:
    stage: str
    records_in: int
    records_out: int
    seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class DataPipeline:
    """A DAG of ingestion stages feeding the data lake."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._stages: dict[str, Callable[[list], list]] = {}
        self.runs: list[list[StageResult]] = []

    def add_stage(
        self,
        name: str,
        func: Callable[[list], list],
        after: tuple[str, ...] = (),
    ) -> None:
        if name in self._stages:
            raise ValueError(f"duplicate stage {name!r}")
        for dependency in after:
            if dependency not in self._stages:
                raise ValueError(f"unknown dependency {dependency!r}")
        self._stages[name] = func
        self._graph.add_node(name)
        for dependency in after:
            self._graph.add_edge(dependency, name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(name)
            del self._stages[name]
            raise ValueError(f"stage {name!r} would create a cycle")

    def run(self, records: list) -> tuple[list, list[StageResult]]:
        """Push records through every stage in topological order."""
        results: list[StageResult] = []
        current = records
        for name in nx.topological_sort(self._graph):
            started = time.perf_counter()
            try:
                output = self._stages[name](current)
                results.append(
                    StageResult(
                        stage=name,
                        records_in=len(current),
                        records_out=len(output),
                        seconds=time.perf_counter() - started,
                    )
                )
                current = output
            except Exception as exc:  # noqa: BLE001 - surfaced to monitoring
                results.append(
                    StageResult(
                        stage=name,
                        records_in=len(current),
                        records_out=0,
                        seconds=time.perf_counter() - started,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                self.runs.append(results)
                return [], results
        self.runs.append(results)
        return current, results


@dataclass
class DataLake:
    """Durable record storage with per-source partitions (JSONL files)."""

    root: Path
    partitions: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def write_partition(self, source: str, records: list) -> Path:
        path = self.root / f"{source}.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        self.partitions[source] = self.partitions.get(source, 0) + len(records)
        return path

    def read_partition(self, source: str) -> list:
        path = self.root / f"{source}.jsonl"
        if not path.exists():
            return []
        return [
            record_from_dict(payload) for payload in read_jsonl_payloads(path)
        ]

    def as_log_store(self, sources: tuple[str, ...] | None = None) -> LogStore:
        store = LogStore()
        names = sources if sources is not None else tuple(self.partitions)
        for source in names:
            store.ingest_bulk(self.read_partition(source))
        return store


def default_ingestion_pipeline() -> DataPipeline:
    """The standard 4-stage pipeline: validate -> dedup -> sort -> load."""
    pipeline = DataPipeline()

    def validate(records: list) -> list:
        return [r for r in records if getattr(r, "timestamp_hours", 0.0) >= 0.0]

    def deduplicate(records: list) -> list:
        seen: set[tuple] = set()
        unique = []
        for record in records:
            key = (
                type(record).__name__,
                getattr(record, "dimm_id", ""),
                round(getattr(record, "timestamp_hours", 0.0), 9),
                getattr(record, "row", -1),
                getattr(record, "column", -1),
            )
            if key not in seen:
                seen.add(key)
                unique.append(record)
        return unique

    def sort_by_time(records: list) -> list:
        return sorted(records, key=lambda r: getattr(r, "timestamp_hours", 0.0))

    pipeline.add_stage("validate", validate)
    pipeline.add_stage("deduplicate", deduplicate, after=("validate",))
    pipeline.add_stage("sort", sort_by_time, after=("deduplicate",))
    return pipeline
