"""MLOps lifecycle orchestrator: the whole of paper Figure 6, end to end.

Given one platform's simulated campaign, :func:`run_lifecycle`:

1. ingests the training period through the data pipeline into a data lake;
2. materialises training features in the feature store;
3. trains the production algorithm, registers it, passes it through the
   CI/CD gate;
4. replays the held-out period as a live stream through online serving —
   raising alarms, resolving them via mitigation/migration, feeding the
   drift monitor and dashboards;
5. reports the ledger's confusion counts and VIRR plus drift status.

This is what the ``mlops_lifecycle.py`` example and the MLOps integration
tests run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.evaluation.experiment import MODEL_BUILDERS
from repro.evaluation.protocol import ExperimentProtocol
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.features.sampling import aggregate_by_dimm, temporal_split
from repro.ml.metrics import ConfusionCounts
from repro.ml.threshold import select_threshold
from repro.mlops.data_pipeline import DataLake, default_ingestion_pipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.migration import MigrationSimulator
from repro.mlops.model_registry import CiCdPipeline, ModelRegistry
from repro.mlops.monitoring import Dashboard, DriftMonitor
from repro.mlops.serving import AlarmSystem, OnlinePredictionService
from repro.simulator.fleet import SimulationResult
from repro.telemetry.log_store import LogStore, iter_stream
from repro.telemetry.records import CERecord, UERecord


@dataclass
class LifecycleReport:
    """Outcome of one lifecycle run."""

    platform: str
    deployed: bool
    gate_reason: str
    model_version: int | None
    alarms: int
    scored: int
    confusion: ConfusionCounts | None
    virr: float | None
    observed_cold_fraction: float
    drifted: bool
    dashboard: dict[str, float]


def _serving_features(
    service: OnlinePredictionService,
    feature_pipeline: FeaturePipeline,
    simulation: SimulationResult,
    record: CERecord,
    timestamp: float,
):
    """Recompute the serving-time feature vector for drift monitoring."""
    state = service._states.get(record.dimm_id)
    if state is None or len(state.history) < 2:
        return None
    config = simulation.store.configs.get(record.dimm_id)
    if config is None:
        return None
    return feature_pipeline.transform_one(state.history, config, timestamp)


def run_lifecycle(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    lake_root: str | Path,
    algorithm: str = "lightgbm",
    vms_per_server: float = 10.0,
) -> LifecycleReport:
    platform = simulation.platform.name
    dashboard = Dashboard()
    split_hour = protocol.sampling.train_fraction * simulation.duration_hours

    # 1. Data pipeline: raw records -> data lake -> training log store.
    pipeline = default_ingestion_pipeline()
    lake = DataLake(Path(lake_root))
    all_records = (
        list(simulation.store.configs.values())
        + list(simulation.store.ces)
        + list(simulation.store.ues)
        + list(simulation.store.events)
    )
    train_records = [
        record
        for record in all_records
        if getattr(record, "timestamp_hours", 0.0) < split_hour
    ]
    cleaned, stage_results = pipeline.run(train_records)
    for result in stage_results:
        dashboard.increment(f"pipeline.{result.stage}.records", result.records_out)
    lake.write_partition("bmc_train", cleaned)
    train_store = lake.as_log_store(("bmc_train",))
    for config in simulation.store.configs.values():
        train_store.add_config(config)

    # 2. Feature store: materialise the training snapshot.
    feature_pipeline = FeaturePipeline(
        FeaturePipelineConfig(labeling=protocol.labeling, sampling=protocol.sampling)
    )
    feature_store = FeatureStore(feature_pipeline)
    snapshot = feature_store.materialize(
        "train-v1", train_store, platform, campaign_end_hour=split_hour
    )
    dashboard.increment("feature_store.snapshots")
    samples = snapshot.samples

    # 3. Train, tune, register, gate.
    split = temporal_split(samples, split_hour, protocol.sampling)
    train, validation = split.train, split.validation
    if len(train) == 0 or train.y.sum() == 0:
        return LifecycleReport(
            platform=platform,
            deployed=False,
            gate_reason="insufficient training data",
            model_version=None,
            alarms=0,
            scored=0,
            confusion=None,
            virr=None,
            observed_cold_fraction=0.0,
            drifted=False,
            dashboard=dashboard.snapshot(),
        )
    model = MODEL_BUILDERS[algorithm](samples.feature_names, protocol.seed)
    eval_set = (
        (validation.X, validation.y) if len(validation) else (train.X, train.y)
    )
    model.fit(train.X, train.y, eval_set=eval_set)

    # Tune at *sample* granularity: the online service raises an alarm the
    # moment any single scoring crosses the threshold, so the threshold must
    # be calibrated against single-sample scores, not pooled DIMM scores.
    # A perfect validation F1 tends to sit at an extreme score; cap the
    # threshold with an alarm budget of ~3x the positive rate so serving
    # stays sensitive to slightly weaker scores (score calibration drifts
    # between the training period and live operation).
    tune_split = validation if len(validation) and validation.y.sum() else train
    tune_scores = model.predict_proba(tune_split.X)
    if tune_split.y.sum() > 0:
        point = select_threshold(tune_split.y, tune_scores, objective="f1")
        positive_rate = float(tune_split.y.mean())
        budget_cut = float(
            np.quantile(tune_scores, 1.0 - min(0.5, 3.0 * positive_rate))
        )
        threshold, tuned_f1 = min(point.threshold, budget_cut), point.f1
    else:
        threshold, tuned_f1 = 0.5, 0.0

    registry = ModelRegistry()
    cicd = CiCdPipeline(registry)
    version = registry.register(
        platform=platform,
        algorithm=algorithm,
        model=model,
        threshold=threshold,
        metrics={"f1": tuned_f1},
    )
    decision = cicd.submit(version)
    dashboard.increment("cicd.submissions")
    if not decision.promoted:
        return LifecycleReport(
            platform=platform,
            deployed=False,
            gate_reason=decision.reason,
            model_version=version.version,
            alarms=0,
            scored=0,
            confusion=None,
            virr=None,
            observed_cold_fraction=0.0,
            drifted=False,
            dashboard=dashboard.snapshot(),
        )

    # 4. Replay the held-out period as a live stream.
    alarm_system = AlarmSystem()
    service = OnlinePredictionService(
        feature_store, registry, alarm_system, platform
    )
    migration = MigrationSimulator(
        vms_per_server=vms_per_server, rng=np.random.default_rng(protocol.seed)
    )
    drift = DriftMonitor(
        reference=samples.X, feature_names=samples.feature_names, min_samples=50
    )
    for dimm_id, config in simulation.store.configs.items():
        service.register_config(dimm_id, config)

    serve_store = LogStore()
    serve_store.ingest_bulk(all_records)
    for record in iter_stream(serve_store):
        timestamp = record.timestamp_hours
        live = timestamp >= split_hour  # the model went live at split_hour

        if isinstance(record, UERecord):
            service.observe(record)
            if live:
                migration.on_ue(record.dimm_id, timestamp)
                dashboard.increment("ues.observed")
            continue

        alarm = service.observe(record)
        if alarm is not None:
            if live:
                path = migration.on_alarm(alarm)
                dashboard.increment(f"migration.{path.value}")
                dashboard.record("alarms.score", timestamp, alarm.score)
            else:
                # Pre-deployment history replay: discard the alarm so it
                # can fire again (and be acted on) once the model is live.
                alarm_system.acknowledge(alarm.dimm_id)
                alarm_system.alarms.pop()
                state = service._states.get(alarm.dimm_id)
                if state is not None:
                    state.alarmed = False
        if live and isinstance(record, CERecord):
            features = _serving_features(service, feature_pipeline,
                                         simulation, record, timestamp)
            if features is not None:
                drift.observe(features)

    ledger = migration.ledger
    counts = ledger.confusion()
    breakdown = ledger.virr(y_c=protocol.y_c)
    dashboard.increment("alarms.total", len(alarm_system.alarms))

    return LifecycleReport(
        platform=platform,
        deployed=True,
        gate_reason=decision.reason,
        model_version=version.version,
        alarms=len(alarm_system.alarms),
        scored=service.scored,
        confusion=counts,
        virr=breakdown.virr,
        observed_cold_fraction=migration.orchestrator.observed_cold_fraction,
        drifted=drift.needs_retraining(),
        dashboard=dashboard.snapshot(),
    )
