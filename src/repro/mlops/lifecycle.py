"""MLOps lifecycle orchestrator: the whole of paper Figure 6, end to end.

Given one platform's simulated campaign, :func:`run_lifecycle`:

1. ingests the training period through the data pipeline into a data lake;
2. materialises training features in the feature store;
3. trains the production algorithm, registers it, passes it through the
   CI/CD gate;
4. replays the held-out period as a live stream through the streaming
   :class:`~repro.streaming.replay.ReplayEngine` — columnar fleet merge,
   incremental windowed features, alarm incidents — resolving alarms via
   mitigation/migration and feeding the drift monitor and dashboards;
5. reports the ledger's confusion counts and VIRR plus drift status.

The replay step used to walk record objects one at a time through
``OnlinePredictionService.observe``; it now rides the replay engine with
the exact same serving semantics — score every CE from hour zero (warming
the rescore throttle), alarm only once the model is live at the split
hour, and block an alarmed DIMM until its UE (an infinite-horizon
:class:`~repro.streaming.alarms.AlarmManager` mirrors the old
``AlarmSystem``).  Scores and alarms are identical to the retired loop,
enforced by ``tests/mlops/test_lifecycle_replay.py``; the drift monitor
now sees the engine-served vectors (scored CEs) instead of per-CE
recomputed ones.

This is what the ``mlops_lifecycle.py`` example and the MLOps integration
tests run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.evaluation.experiment import MODEL_BUILDERS
from repro.evaluation.protocol import ExperimentProtocol
from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig
from repro.features.sampling import temporal_split
from repro.ml.metrics import ConfusionCounts
from repro.ml.threshold import select_threshold
from repro.mlops.data_pipeline import DataLake, default_ingestion_pipeline
from repro.mlops.feature_store import FeatureStore
from repro.mlops.migration import MigrationSimulator
from repro.mlops.model_registry import CiCdPipeline, ModelRegistry
from repro.mlops.monitoring import Dashboard, DriftMonitor
from repro.mlops.serving import (
    MIN_CES_BEFORE_SCORING,
    RESCORE_INTERVAL_HOURS,
    Alarm,
)
from repro.simulator.fleet import SimulationResult
from repro.streaming.alarms import AlarmManager
from repro.streaming.bus import EventBus
from repro.streaming.replay import ReplayEngine


@dataclass
class LifecycleReport:
    """Outcome of one lifecycle run."""

    platform: str
    deployed: bool
    gate_reason: str
    model_version: int | None
    alarms: int
    scored: int
    confusion: ConfusionCounts | None
    virr: float | None
    observed_cold_fraction: float
    drifted: bool
    dashboard: dict[str, float]


def replay_held_out(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    feature_pipeline: FeaturePipeline,
    model,
    threshold: float,
    split_hour: float,
    migration: MigrationSimulator,
    drift: DriftMonitor | None = None,
    dashboard: Dashboard | None = None,
    model_version: int = 0,
):
    """Stream the campaign through the replay engine with serving semantics.

    Scores every CE from hour zero exactly like the retired ``observe()``
    loop (the pre-deployment period warms the rescore throttle), raises
    alarms only from ``split_hour`` on, and keeps an alarmed DIMM blocked
    until its UE via an infinite-horizon alarm manager — the semantics of
    the serving layer's ``AlarmSystem``.  Alarms feed ``migration`` in
    stream order over the event bus; scored vectors feed ``drift``.
    Returns the engine's :class:`~repro.streaming.replay.StreamingReport`.
    """
    platform = simulation.platform.name
    configs = simulation.store.configs
    bus = EventBus()

    def _route_alarm(topic, incident) -> None:
        config = configs.get(incident.dimm_id)
        path = migration.on_alarm(
            Alarm(
                timestamp_hours=incident.opened_hour,
                platform=platform,
                server_id=config.server_id if config is not None else "",
                dimm_id=incident.dimm_id,
                score=incident.score,
                model_version=model_version,
            )
        )
        if dashboard is not None:
            dashboard.increment(f"migration.{path.value}")
            dashboard.record(
                "alarms.score", incident.opened_hour, incident.score
            )

    bus.subscribe("alarm.raised", _route_alarm)

    def _observe_drift(dimm_id, t, features, score) -> None:
        if drift is not None and t >= split_hour:
            drift.observe(features)

    engine = ReplayEngine(
        feature_pipeline,
        model,
        threshold,
        platform,
        configs=simulation.store.configs,
        labeling=protocol.labeling,
        bus=bus,
        live_from_hour=0.0,
        alarm_from_hour=split_hour,
        min_ces_before_scoring=MIN_CES_BEFORE_SCORING,
        rescore_interval_hours=RESCORE_INTERVAL_HOURS,
        # One score per flush keeps the alarm schedule identical to the
        # synchronous observe() loop this replaced (queued scores behind a
        # fresh incident would otherwise surface as suppressed alarms).
        batch_size=1,
        alarms=AlarmManager(
            protocol.labeling.lead_hours, float("inf"), bus
        ),
        score_hook=_observe_drift if drift is not None else None,
    )
    report = engine.replay(simulation.store)

    # Ground-truth failures for the ledger: every UE in the live window,
    # in time order (first UE per DIMM wins, as in the retired loop).
    live_ues = sorted(
        (
            (ue.timestamp_hours, ue.dimm_id)
            for ue in simulation.store.ues
            if ue.timestamp_hours >= split_hour
        ),
    )
    for hour, dimm_id in live_ues:
        migration.on_ue(dimm_id, hour)
        if dashboard is not None:
            dashboard.increment("ues.observed")
    return report


def run_lifecycle(
    simulation: SimulationResult,
    protocol: ExperimentProtocol,
    lake_root: str | Path,
    algorithm: str = "lightgbm",
    vms_per_server: float = 10.0,
) -> LifecycleReport:
    platform = simulation.platform.name
    dashboard = Dashboard()
    split_hour = protocol.sampling.train_fraction * simulation.duration_hours

    # 1. Data pipeline: raw records -> data lake -> training log store.
    pipeline = default_ingestion_pipeline()
    lake = DataLake(Path(lake_root))
    all_records = (
        list(simulation.store.configs.values())
        + list(simulation.store.ces)
        + list(simulation.store.ues)
        + list(simulation.store.events)
    )
    train_records = [
        record
        for record in all_records
        if getattr(record, "timestamp_hours", 0.0) < split_hour
    ]
    cleaned, stage_results = pipeline.run(train_records)
    for result in stage_results:
        dashboard.increment(f"pipeline.{result.stage}.records", result.records_out)
    lake.write_partition("bmc_train", cleaned)
    train_store = lake.as_log_store(("bmc_train",))
    for config in simulation.store.configs.values():
        train_store.add_config(config)

    # 2. Feature store: materialise the training snapshot.
    feature_pipeline = FeaturePipeline(
        FeaturePipelineConfig(labeling=protocol.labeling, sampling=protocol.sampling)
    )
    feature_store = FeatureStore(feature_pipeline)
    snapshot = feature_store.materialize(
        "train-v1", train_store, platform, campaign_end_hour=split_hour
    )
    dashboard.increment("feature_store.snapshots")
    samples = snapshot.samples

    # 3. Train, tune, register, gate.
    split = temporal_split(samples, split_hour, protocol.sampling)
    train, validation = split.train, split.validation
    if len(train) == 0 or train.y.sum() == 0:
        return LifecycleReport(
            platform=platform,
            deployed=False,
            gate_reason="insufficient training data",
            model_version=None,
            alarms=0,
            scored=0,
            confusion=None,
            virr=None,
            observed_cold_fraction=0.0,
            drifted=False,
            dashboard=dashboard.snapshot(),
        )
    model = MODEL_BUILDERS[algorithm](samples.feature_names, protocol.seed)
    eval_set = (
        (validation.X, validation.y) if len(validation) else (train.X, train.y)
    )
    model.fit(train.X, train.y, eval_set=eval_set)

    # Tune at *sample* granularity: the online service raises an alarm the
    # moment any single scoring crosses the threshold, so the threshold must
    # be calibrated against single-sample scores, not pooled DIMM scores.
    # A perfect validation F1 tends to sit at an extreme score; cap the
    # threshold with an alarm budget of ~3x the positive rate so serving
    # stays sensitive to slightly weaker scores (score calibration drifts
    # between the training period and live operation).
    tune_split = validation if len(validation) and validation.y.sum() else train
    tune_scores = model.predict_proba(tune_split.X)
    if tune_split.y.sum() > 0:
        point = select_threshold(tune_split.y, tune_scores, objective="f1")
        positive_rate = float(tune_split.y.mean())
        budget_cut = float(
            np.quantile(tune_scores, 1.0 - min(0.5, 3.0 * positive_rate))
        )
        threshold, tuned_f1 = min(point.threshold, budget_cut), point.f1
    else:
        threshold, tuned_f1 = 0.5, 0.0

    registry = ModelRegistry()
    cicd = CiCdPipeline(registry)
    version = registry.register(
        platform=platform,
        algorithm=algorithm,
        model=model,
        threshold=threshold,
        metrics={"f1": tuned_f1},
    )
    decision = cicd.submit(version)
    dashboard.increment("cicd.submissions")
    if not decision.promoted:
        return LifecycleReport(
            platform=platform,
            deployed=False,
            gate_reason=decision.reason,
            model_version=version.version,
            alarms=0,
            scored=0,
            confusion=None,
            virr=None,
            observed_cold_fraction=0.0,
            drifted=False,
            dashboard=dashboard.snapshot(),
        )

    # 4. Replay the held-out period as a live stream via the replay engine.
    migration = MigrationSimulator(
        vms_per_server=vms_per_server, rng=np.random.default_rng(protocol.seed)
    )
    drift = DriftMonitor(
        reference=samples.X, feature_names=samples.feature_names, min_samples=50
    )
    stream_report = replay_held_out(
        simulation,
        protocol,
        feature_pipeline,
        model,
        threshold,
        split_hour,
        migration,
        drift=drift,
        dashboard=dashboard,
        model_version=version.version,
    )

    ledger = migration.ledger
    counts = ledger.confusion()
    breakdown = ledger.virr(y_c=protocol.y_c)
    alarms_raised = stream_report.alarms.get("raised", 0)
    dashboard.increment("alarms.total", alarms_raised)

    return LifecycleReport(
        platform=platform,
        deployed=True,
        gate_reason=decision.reason,
        model_version=version.version,
        alarms=alarms_raised,
        scored=stream_report.scored,
        confusion=counts,
        virr=breakdown.virr,
        observed_cold_fraction=migration.orchestrator.observed_cold_fraction,
        drifted=drift.needs_retraining(),
        dashboard=dashboard.snapshot(),
    )
