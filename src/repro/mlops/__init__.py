"""MLOps framework: data pipeline, feature store, deployment, monitoring."""

from repro.mlops.data_pipeline import (
    DataLake,
    DataPipeline,
    StageResult,
    default_ingestion_pipeline,
)
from repro.mlops.feature_store import (
    FeatureDefinition,
    FeatureRegistry,
    FeatureStore,
    MaterializedFeatures,
)
from repro.mlops.lifecycle import LifecycleReport, run_lifecycle
from repro.mlops.migration import MigrationLedger, MigrationSimulator
from repro.mlops.model_registry import (
    CiCdPipeline,
    GateDecision,
    GatePolicy,
    ModelRegistry,
    ModelStage,
    ModelVersion,
)
from repro.mlops.monitoring import (
    Dashboard,
    DriftMonitor,
    DriftReport,
    MetricSeries,
    population_stability_index,
)
from repro.mlops.retraining import (
    RetrainingOrchestrator,
    RetrainingPolicy,
    RetrainingReport,
)
from repro.mlops.serving import Alarm, AlarmSystem, OnlinePredictionService

__all__ = [
    "Alarm",
    "AlarmSystem",
    "CiCdPipeline",
    "Dashboard",
    "DataLake",
    "DataPipeline",
    "DriftMonitor",
    "DriftReport",
    "FeatureDefinition",
    "FeatureRegistry",
    "FeatureStore",
    "GateDecision",
    "GatePolicy",
    "LifecycleReport",
    "MaterializedFeatures",
    "MetricSeries",
    "MigrationLedger",
    "MigrationSimulator",
    "ModelRegistry",
    "ModelStage",
    "ModelVersion",
    "OnlinePredictionService",
    "RetrainingOrchestrator",
    "RetrainingPolicy",
    "RetrainingReport",
    "StageResult",
    "default_ingestion_pipeline",
    "population_stability_index",
    "run_lifecycle",
]
