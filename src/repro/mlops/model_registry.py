"""Model registry and CI/CD gate (paper Figure 6, "ML Deployment").

Models are registered with their evaluation metrics and promoted through
``registered -> staging -> production`` by the CI/CD pipeline, which gates
promotion on benchmark improvement (the paper: models advance only when
they "show substantial improvements in predefined benchmark evaluations").
Rollback re-activates the previous production version.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class ModelStage(enum.Enum):
    REGISTERED = "registered"
    STAGING = "staging"
    PRODUCTION = "production"
    ARCHIVED = "archived"


@dataclass
class ModelVersion:
    """One registered model for one platform."""

    version: int
    platform: str
    algorithm: str
    model: Any
    threshold: float
    metrics: dict[str, float]
    stage: ModelStage = ModelStage.REGISTERED
    tags: dict[str, str] = field(default_factory=dict)


class ModelRegistry:
    """Versioned model storage with stage transitions, per platform."""

    def __init__(self) -> None:
        self._versions: dict[str, list[ModelVersion]] = {}
        self._counter = itertools.count(1)

    def register(
        self,
        platform: str,
        algorithm: str,
        model: Any,
        threshold: float,
        metrics: dict[str, float],
        tags: dict[str, str] | None = None,
    ) -> ModelVersion:
        version = ModelVersion(
            version=next(self._counter),
            platform=platform,
            algorithm=algorithm,
            model=model,
            threshold=threshold,
            metrics=dict(metrics),
            tags=dict(tags or {}),
        )
        self._versions.setdefault(platform, []).append(version)
        return version

    def versions(self, platform: str) -> list[ModelVersion]:
        return list(self._versions.get(platform, []))

    def production_model(self, platform: str) -> ModelVersion | None:
        for version in reversed(self._versions.get(platform, [])):
            if version.stage is ModelStage.PRODUCTION:
                return version
        return None

    def promote_to_staging(self, version: ModelVersion) -> None:
        if version.stage is not ModelStage.REGISTERED:
            raise ValueError(f"cannot stage a model in stage {version.stage}")
        version.stage = ModelStage.STAGING

    def promote_to_production(self, version: ModelVersion) -> None:
        if version.stage is not ModelStage.STAGING:
            raise ValueError(
                f"only staged models can go to production, got {version.stage}"
            )
        current = self.production_model(version.platform)
        if current is not None:
            current.stage = ModelStage.ARCHIVED
        version.stage = ModelStage.PRODUCTION

    def rollback(self, platform: str) -> ModelVersion | None:
        """Archive current production and restore the previous one."""
        history = self._versions.get(platform, [])
        production = self.production_model(platform)
        if production is None:
            return None
        production.stage = ModelStage.ARCHIVED
        for version in reversed(history):
            if version.stage is ModelStage.ARCHIVED and version is not production:
                version.stage = ModelStage.PRODUCTION
                return version
        return None


@dataclass(frozen=True)
class GatePolicy:
    """Promotion gate: which metric must improve, by how much."""

    metric: str = "f1"
    min_improvement: float = 0.01  # absolute
    min_value: float = 0.2  # floor for a first deployment


@dataclass(frozen=True)
class GateDecision:
    promoted: bool
    reason: str


class CiCdPipeline:
    """Integration-test + benchmark gate in front of production."""

    def __init__(self, registry: ModelRegistry, policy: GatePolicy | None = None):
        self.registry = registry
        self.policy = policy or GatePolicy()
        self.decisions: list[GateDecision] = []

    def submit(self, version: ModelVersion) -> GateDecision:
        """Run the gate for a freshly registered model version."""
        policy = self.policy
        candidate_score = version.metrics.get(policy.metric)
        if candidate_score is None:
            decision = GateDecision(False, f"missing metric {policy.metric!r}")
            self.decisions.append(decision)
            return decision

        production = self.registry.production_model(version.platform)
        if production is None:
            if candidate_score >= policy.min_value:
                self.registry.promote_to_staging(version)
                self.registry.promote_to_production(version)
                decision = GateDecision(
                    True, f"first deployment ({policy.metric}={candidate_score:.3f})"
                )
            else:
                decision = GateDecision(
                    False,
                    f"{policy.metric}={candidate_score:.3f} below floor "
                    f"{policy.min_value}",
                )
        else:
            incumbent_score = production.metrics.get(policy.metric, 0.0)
            if candidate_score >= incumbent_score + policy.min_improvement:
                self.registry.promote_to_staging(version)
                self.registry.promote_to_production(version)
                decision = GateDecision(
                    True,
                    f"{policy.metric} improved "
                    f"{incumbent_score:.3f} -> {candidate_score:.3f}",
                )
            else:
                decision = GateDecision(
                    False,
                    f"{policy.metric}={candidate_score:.3f} does not beat "
                    f"production {incumbent_score:.3f} by {policy.min_improvement}",
                )
        self.decisions.append(decision)
        return decision
