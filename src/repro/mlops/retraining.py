"""Closing the feedback loop: drift-triggered retraining (paper Figure 6).

The monitoring layer raises a retraining signal (sustained feature drift or
degraded alarm precision); :class:`RetrainingOrchestrator` then rebuilds
the training snapshot from the data lake's latest window, trains a
candidate, and pushes it through the CI/CD gate.  Promotion is never
automatic — the gate still requires benchmark improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.experiment import MODEL_BUILDERS
from repro.features.sampling import SamplingParams, aggregate_by_dimm, temporal_split
from repro.ml.threshold import select_threshold
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import CiCdPipeline, GateDecision, ModelRegistry
from repro.telemetry.log_store import LogStore


@dataclass(frozen=True)
class RetrainingReport:
    triggered: bool
    reason: str
    decision: GateDecision | None = None
    candidate_version: int | None = None


@dataclass(frozen=True)
class RetrainingPolicy:
    """When retraining may fire and how candidates are trained."""

    min_hours_between_retrains: float = 168.0  # one week
    algorithm: str = "lightgbm"
    seed: int = 0


class RetrainingOrchestrator:
    """Drift/feedback -> new candidate -> CI/CD gate."""

    def __init__(
        self,
        feature_store: FeatureStore,
        registry: ModelRegistry,
        cicd: CiCdPipeline,
        policy: RetrainingPolicy | None = None,
    ):
        self.feature_store = feature_store
        self.registry = registry
        self.cicd = cicd
        self.policy = policy or RetrainingPolicy()
        self._last_retrain_hour: dict[str, float] = {}

    def maybe_retrain(
        self,
        platform: str,
        store: LogStore,
        now_hours: float,
        drifted: bool,
        sampling: SamplingParams | None = None,
    ) -> RetrainingReport:
        """Retrain if drift fired and the cool-down has elapsed."""
        if not drifted:
            return RetrainingReport(triggered=False, reason="no drift signal")
        last = self._last_retrain_hour.get(platform)
        if (
            last is not None
            and now_hours - last < self.policy.min_hours_between_retrains
        ):
            return RetrainingReport(
                triggered=False,
                reason=f"cool-down: last retrain at {last:.0f}h",
            )

        sampling = sampling or SamplingParams()
        snapshot = self.feature_store.materialize(
            f"retrain-{platform}-{now_hours:.0f}",
            store,
            platform,
            campaign_end_hour=now_hours,
        )
        samples = snapshot.samples
        if len(samples) == 0 or samples.y.sum() == 0:
            return RetrainingReport(
                triggered=False, reason="no labeled positives in window"
            )
        split = temporal_split(samples, now_hours, sampling)
        train = split.train if len(split.train) else samples
        validation = split.validation if len(split.validation) else train

        model = MODEL_BUILDERS[self.policy.algorithm](
            samples.feature_names, self.policy.seed
        )
        model.fit(train.X, train.y, eval_set=(validation.X, validation.y))
        _, val_y, val_scores = aggregate_by_dimm(
            validation, model.predict_proba(validation.X)
        )
        if val_y.sum() > 0:
            point = select_threshold(val_y, val_scores, objective="f1")
            threshold, f1 = point.threshold, point.f1
        else:
            threshold, f1 = float(np.quantile(val_scores, 0.95)), 0.0

        version = self.registry.register(
            platform=platform,
            algorithm=self.policy.algorithm,
            model=model,
            threshold=threshold,
            metrics={"f1": f1},
            tags={"trigger": "drift", "at_hour": f"{now_hours:.0f}"},
        )
        decision = self.cicd.submit(version)
        self._last_retrain_hour[platform] = now_hours
        return RetrainingReport(
            triggered=True,
            reason="drift",
            decision=decision,
            candidate_version=version.version,
        )
