"""Online prediction service and cloud alarm system (paper Figure 6, right).

The serving path replays the telemetry stream: each incoming CE updates the
DIMM's in-memory history, re-scores it through the feature store's stream
transform and the production model, and raises an alarm when the score
crosses the deployed threshold.  Alarms feed the mitigation/migration layer
(:mod:`repro.mlops.migration`).

Each DIMM's state is an :class:`AppendableDimmHistory` — every record is
appended once (amortised O(1)) instead of rebuilding the whole array view
from raw records on every scored CE, which made long replays quadratic per
DIMM.

With ``incremental=True`` the service additionally maintains a
:class:`~repro.streaming.incremental.IncrementalWindowState` per DIMM and
serves feature vectors from its delta-updated windowed aggregates —
bit-for-bit identical to the ``transform_one`` path, but without re-scanning
the windows per scored CE.  For whole-campaign bulk replays, prefer
:class:`repro.streaming.replay.ReplayEngine`, which also merges the fleet
stream straight off the columnar store and micro-batches model scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.windows import AppendableDimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.telemetry.records import CERecord, MemEventRecord, UERecord

#: Production serving cadences — the single source for every path that
#: mirrors the serving layer (the lifecycle's replay-engine drive, the
#: streaming scenario's default rescore interval).
MIN_CES_BEFORE_SCORING = 2
RESCORE_INTERVAL_HOURS = 1.0 / 12.0  # 5 minutes


@dataclass(frozen=True)
class Alarm:
    """One failure-prediction alarm."""

    timestamp_hours: float
    platform: str
    server_id: str
    dimm_id: str
    score: float
    model_version: int


@dataclass
class _OnlineDimmState:
    history: AppendableDimmHistory
    alarmed: bool = False
    #: Incremental fast-path cache: the last served feature vector, the
    #: config it was computed against, and its sampling bucket.
    last_features: np.ndarray | None = field(default=None, repr=False)
    last_config: object = None
    last_bucket: int = -1
    #: Delta-updated windowed aggregates (``incremental=True`` services).
    incremental: object = field(default=None, repr=False)
    #: Degraded-serving cache: the last successfully served score and when
    #: it was computed (the staleness-budget fallback).
    last_score: float | None = None
    last_score_hour: float = 0.0


@dataclass
class PreparedRequest:
    """One gated, feature-transformed scoring request awaiting a score.

    The two halves of the serving path split here so a batching front
    end (:class:`repro.distributed.service.AsyncScoringService`) can run
    many ``predict_proba`` rows per model call: :meth:`ingest` produces
    this, any scorer turns it into a float, :meth:`complete` applies the
    threshold and accounting.  ``features is None`` means feature
    extraction already degraded — ``fallback_score`` is the answer and
    the model must not be consulted.
    """

    ce: CERecord
    state: "_OnlineDimmState"
    production: object
    features: np.ndarray | None = None
    fallback_score: float | None = None


class AlarmSystem:
    """Deduplicating alarm sink with simple acknowledgement."""

    def __init__(self) -> None:
        self.alarms: list[Alarm] = []
        self._active: set[str] = set()

    def raise_alarm(self, alarm: Alarm) -> bool:
        """Record an alarm; returns False if the DIMM is already alarmed."""
        if alarm.dimm_id in self._active:
            return False
        self._active.add(alarm.dimm_id)
        self.alarms.append(alarm)
        return True

    def acknowledge(self, dimm_id: str) -> None:
        self._active.discard(dimm_id)

    @property
    def active_count(self) -> int:
        return len(self._active)


class OnlinePredictionService:
    """Streaming scorer: CE in, (maybe) alarm out."""

    def __init__(
        self,
        feature_store: FeatureStore,
        registry: ModelRegistry,
        alarm_system: AlarmSystem,
        platform: str,
        min_ces_before_scoring: int = MIN_CES_BEFORE_SCORING,
        rescore_interval_hours: float = RESCORE_INTERVAL_HOURS,
        feature_cache_bucket_hours: float = 1.0,
        incremental: bool = False,
        staleness_budget_hours: float = 24.0,
    ):
        self.feature_store = feature_store
        self.registry = registry
        self.alarm_system = alarm_system
        self.platform = platform
        self.min_ces_before_scoring = min_ces_before_scoring
        self.rescore_interval_hours = rescore_interval_hours
        # Incremental fast path: when a new CE lands inside the same
        # sampling bucket as the DIMM's last scored CE (and the config is
        # unchanged), only the window-dependent feature blocks are
        # recomputed — the static block is reused from the cached vector.
        # 0 disables the cache (every CE pays a full transform_one).
        self.feature_cache_bucket_hours = feature_cache_bucket_hours
        # incremental=True serves windowed features from per-DIMM delta
        # state (repro.streaming) instead of transform_one window re-scans;
        # the vectors are bit-for-bit identical.
        self.incremental = incremental
        # Degraded serving: when feature extraction raises, the service
        # serves the DIMM's last-known score while it is younger than this
        # budget, and falls through to the model-free risky-CE heuristic
        # beyond it.  <= 0 disables the stale tier (heuristic immediately).
        self.staleness_budget_hours = float(staleness_budget_hours)
        self._extractor = None  # built lazily (pipeline must be fitted)
        self._n_static = len(feature_store.pipeline.static.names())
        self._states: dict[str, _OnlineDimmState] = {}
        self._configs: dict[str, object] = {}
        self._last_scored: dict[str, float] = {}
        self.scored = 0
        self.skipped_no_model = 0
        self.fast_path_hits = 0
        self.incremental_served = 0
        self.extract_errors = 0
        self.fallback_stale = 0
        self.fallback_heuristic = 0

    def register_config(self, dimm_id: str, config) -> None:
        self._configs[dimm_id] = config

    def observe(self, record) -> Alarm | None:
        """Feed one telemetry record; returns the alarm if one fired."""
        if isinstance(record, CERecord):
            return self._observe_ce(record)
        if isinstance(record, MemEventRecord):
            state = self._state_for(record.dimm_id)
            state.history.append_event(record)
            if state.incremental is not None:
                state.incremental.add_event_record(record)
            return None
        if isinstance(record, UERecord):
            # Failure happened: clear alarm state (DIMM gets replaced).
            # The rescore throttle goes too, so a replacement DIMM reusing
            # the id scores from its own first CEs.
            self.alarm_system.acknowledge(record.dimm_id)
            self._states.pop(record.dimm_id, None)
            self._last_scored.pop(record.dimm_id, None)
            return None
        raise TypeError(f"unsupported record {type(record)!r}")

    def _state_for(self, dimm_id: str) -> _OnlineDimmState:
        state = self._states.get(dimm_id)
        if state is None:
            state = _OnlineDimmState(AppendableDimmHistory(dimm_id))
            if self.incremental:
                state.incremental = self._incremental_extractor().state_for(
                    dimm_id
                )
            self._states[dimm_id] = state
        return state

    def _incremental_extractor(self):
        if self._extractor is None:
            from repro.streaming.incremental import IncrementalFeatureExtractor

            self._extractor = IncrementalFeatureExtractor(
                self.feature_store.pipeline
            )
        return self._extractor

    def _transform(self, state: _OnlineDimmState, config, t: float) -> np.ndarray:
        """Serve features, reusing the cached static block when possible.

        The fast path is exact: the static block depends only on the
        config, so reusing it while recomputing every window-dependent
        block yields the same vector as a full ``transform_one``.  The
        sampling-bucket check bounds cache lifetime — a CE landing in a
        new bucket refreshes the whole vector.  (The windowed extractors
        dominate per-CE cost, so this trims constant overhead rather than
        transforming throughput; incremental *windowed* feature values are
        a ROADMAP item.)
        """
        if state.incremental is not None:
            self.incremental_served += 1
            self.feature_store.stream_requests += 1
            features = self._incremental_extractor().serve(
                state.incremental, config, t
            )
            state.last_features = features
            state.last_config = config
            return features
        bucket_hours = self.feature_cache_bucket_hours
        bucket = int(t / bucket_hours) if bucket_hours > 0 else -1
        if (
            bucket_hours > 0
            and state.last_features is not None
            and state.last_config is config
            and state.last_bucket == bucket
        ):
            self.fast_path_hits += 1
            features = self.feature_store.serve_online(
                state.history, config, t,
                static_block=state.last_features[-self._n_static :],
            )
        else:
            features = self.feature_store.serve_online(state.history, config, t)
        state.last_features = features
        state.last_config = config
        state.last_bucket = bucket
        return features

    def _observe_ce(self, ce: CERecord) -> Alarm | None:
        prepared = self.ingest(ce)
        if prepared is None:
            return None
        return self.complete(prepared, self.score_prepared(prepared))

    def ingest(self, ce: CERecord) -> PreparedRequest | None:
        """First half of the serving path: state, gating, features.

        Appends the CE to the DIMM's history, applies the serving gates
        (alarmed / min-CE / rescore throttle / model / config) and
        transforms features.  Returns ``None`` when the CE is gated out,
        otherwise a :class:`PreparedRequest` for any scorer.  A feature
        extraction failure degrades here — the request carries its
        fallback score and skips the model.
        """
        state = self._state_for(ce.dimm_id)
        state.history.append_ce(ce)
        if state.incremental is not None:
            state.incremental.add_ce_record(ce)
        if state.alarmed or len(state.history) < self.min_ces_before_scoring:
            return None
        last = self._last_scored.get(ce.dimm_id)
        if last is not None and ce.timestamp_hours - last < self.rescore_interval_hours:
            return None

        production = self.registry.production_model(self.platform)
        if production is None:
            self.skipped_no_model += 1
            return None
        config = self._configs.get(ce.dimm_id)
        if config is None:
            return None

        try:
            features = self._transform(state, config, ce.timestamp_hours)
        except Exception:
            # Degradation ladder: last-known score while fresh enough,
            # else the model-free risky-CE heuristic.  The service keeps
            # serving — a poisoned record must not take scoring down.
            self.extract_errors += 1
            return PreparedRequest(
                ce=ce,
                state=state,
                production=production,
                fallback_score=self._degraded_score(
                    state, ce.timestamp_hours
                ),
            )
        return PreparedRequest(
            ce=ce, state=state, production=production, features=features
        )

    def _degraded_score(self, state: _OnlineDimmState, t: float) -> float:
        """The staleness ladder's answer when the model path is down."""
        age = (
            t - state.last_score_hour
            if state.last_score is not None
            else float("inf")
        )
        if age <= self.staleness_budget_hours:
            self.fallback_stale += 1
            return state.last_score
        from repro.baselines.risky_ce import heuristic_risk_score

        self.fallback_heuristic += 1
        return heuristic_risk_score(state.history.view())

    def score_prepared(self, prepared: PreparedRequest) -> float:
        """Synchronous one-row scorer (the :meth:`observe` path)."""
        if prepared.features is None:
            return prepared.fallback_score
        try:
            return float(
                prepared.production.model.predict_proba(
                    prepared.features.reshape(1, -1)
                )[0]
            )
        except Exception:
            self.extract_errors += 1
            prepared.fallback_score = self._degraded_score(
                prepared.state, prepared.ce.timestamp_hours
            )
            return prepared.fallback_score

    def complete(self, prepared: PreparedRequest, score: float) -> Alarm | None:
        """Second half: accounting, threshold, alarm."""
        ce = prepared.ce
        state = prepared.state
        if prepared.fallback_score is None:
            state.last_score = score
            state.last_score_hour = ce.timestamp_hours
        self._last_scored[ce.dimm_id] = ce.timestamp_hours
        self.scored += 1

        production = prepared.production
        if score >= production.threshold:
            alarm = Alarm(
                timestamp_hours=ce.timestamp_hours,
                platform=self.platform,
                server_id=ce.server_id,
                dimm_id=ce.dimm_id,
                score=score,
                model_version=production.version,
            )
            if self.alarm_system.raise_alarm(alarm):
                state.alarmed = True
                return alarm
        return None
