"""Online prediction service and cloud alarm system (paper Figure 6, right).

The serving path replays the telemetry stream: each incoming CE updates the
DIMM's in-memory history, re-scores it through the feature store's stream
transform and the production model, and raises an alarm when the score
crosses the deployed threshold.  Alarms feed the mitigation/migration layer
(:mod:`repro.mlops.migration`).

Each DIMM's state is an :class:`AppendableDimmHistory` — every record is
appended once (amortised O(1)) instead of rebuilding the whole array view
from raw records on every scored CE, which made long replays quadratic per
DIMM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.windows import AppendableDimmHistory
from repro.mlops.feature_store import FeatureStore
from repro.mlops.model_registry import ModelRegistry
from repro.telemetry.records import CERecord, MemEventRecord, UERecord


@dataclass(frozen=True)
class Alarm:
    """One failure-prediction alarm."""

    timestamp_hours: float
    platform: str
    server_id: str
    dimm_id: str
    score: float
    model_version: int


@dataclass
class _OnlineDimmState:
    history: AppendableDimmHistory
    alarmed: bool = False


class AlarmSystem:
    """Deduplicating alarm sink with simple acknowledgement."""

    def __init__(self) -> None:
        self.alarms: list[Alarm] = []
        self._active: set[str] = set()

    def raise_alarm(self, alarm: Alarm) -> bool:
        """Record an alarm; returns False if the DIMM is already alarmed."""
        if alarm.dimm_id in self._active:
            return False
        self._active.add(alarm.dimm_id)
        self.alarms.append(alarm)
        return True

    def acknowledge(self, dimm_id: str) -> None:
        self._active.discard(dimm_id)

    @property
    def active_count(self) -> int:
        return len(self._active)


class OnlinePredictionService:
    """Streaming scorer: CE in, (maybe) alarm out."""

    def __init__(
        self,
        feature_store: FeatureStore,
        registry: ModelRegistry,
        alarm_system: AlarmSystem,
        platform: str,
        min_ces_before_scoring: int = 2,
        rescore_interval_hours: float = 1.0 / 12.0,  # 5 minutes
    ):
        self.feature_store = feature_store
        self.registry = registry
        self.alarm_system = alarm_system
        self.platform = platform
        self.min_ces_before_scoring = min_ces_before_scoring
        self.rescore_interval_hours = rescore_interval_hours
        self._states: dict[str, _OnlineDimmState] = {}
        self._configs: dict[str, object] = {}
        self._last_scored: dict[str, float] = {}
        self.scored = 0
        self.skipped_no_model = 0

    def register_config(self, dimm_id: str, config) -> None:
        self._configs[dimm_id] = config

    def observe(self, record) -> Alarm | None:
        """Feed one telemetry record; returns the alarm if one fired."""
        if isinstance(record, CERecord):
            return self._observe_ce(record)
        if isinstance(record, MemEventRecord):
            self._state_for(record.dimm_id).history.append_event(record)
            return None
        if isinstance(record, UERecord):
            # Failure happened: clear alarm state (DIMM gets replaced).
            self.alarm_system.acknowledge(record.dimm_id)
            self._states.pop(record.dimm_id, None)
            return None
        raise TypeError(f"unsupported record {type(record)!r}")

    def _state_for(self, dimm_id: str) -> _OnlineDimmState:
        state = self._states.get(dimm_id)
        if state is None:
            state = _OnlineDimmState(AppendableDimmHistory(dimm_id))
            self._states[dimm_id] = state
        return state

    def _observe_ce(self, ce: CERecord) -> Alarm | None:
        state = self._state_for(ce.dimm_id)
        state.history.append_ce(ce)
        if state.alarmed or len(state.history) < self.min_ces_before_scoring:
            return None
        last = self._last_scored.get(ce.dimm_id)
        if last is not None and ce.timestamp_hours - last < self.rescore_interval_hours:
            return None

        production = self.registry.production_model(self.platform)
        if production is None:
            self.skipped_no_model += 1
            return None
        config = self._configs.get(ce.dimm_id)
        if config is None:
            return None

        features = self.feature_store.serve_online(
            state.history, config, ce.timestamp_hours
        )
        score = float(production.model.predict_proba(features.reshape(1, -1))[0])
        self._last_scored[ce.dimm_id] = ce.timestamp_hours
        self.scored += 1

        if score >= production.threshold:
            alarm = Alarm(
                timestamp_hours=ce.timestamp_hours,
                platform=self.platform,
                server_id=ce.server_id,
                dimm_id=ce.dimm_id,
                score=score,
                model_version=production.version,
            )
            if self.alarm_system.raise_alarm(alarm):
                state.alarmed = True
                return alarm
        return None
