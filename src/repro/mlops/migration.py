"""VM migration accounting under failure prediction (paper Figure 2).

Consumes alarms and ground-truth UEs, resolves each alarmed server through
the RAS mitigation orchestrator (live migration -> memory mitigation ->
cold migration) and tallies VM interruptions with and without prediction —
the exact V / V' bookkeeping behind the VIRR metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.metrics import ConfusionCounts
from repro.ml.virr import VirrBreakdown, virr_from_counts
from repro.mlops.serving import Alarm
from repro.ras.mitigation import MitigationOrchestrator, MitigationPath


@dataclass
class MigrationLedger:
    """Outcome bookkeeping for one campaign replay."""

    vms_per_server: float = 10.0
    alarmed_dimms: dict[str, float] = field(default_factory=dict)  # dimm -> hour
    failed_dimms: dict[str, float] = field(default_factory=dict)
    cold_migrations: int = 0
    live_migrations: int = 0
    memory_mitigations: int = 0

    def record_path(self, path: MitigationPath) -> None:
        if path is MitigationPath.COLD_MIGRATION:
            self.cold_migrations += 1
        elif path is MitigationPath.LIVE_MIGRATION:
            self.live_migrations += 1
        else:
            self.memory_mitigations += 1

    def confusion(self, lead_hours: float = 0.0) -> ConfusionCounts:
        """TP/FP/FN over DIMMs; an alarm counts only if it led the UE."""
        tp = fn = 0
        for dimm_id, ue_hour in self.failed_dimms.items():
            alarm_hour = self.alarmed_dimms.get(dimm_id)
            if alarm_hour is not None and alarm_hour + lead_hours <= ue_hour:
                tp += 1
            else:
                fn += 1
        fp = sum(1 for d in self.alarmed_dimms if d not in self.failed_dimms)
        return ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=0)

    def virr(self, y_c: float | None = None) -> VirrBreakdown:
        """VIRR from the ledger; defaults to the *observed* cold fraction."""
        counts = self.confusion()
        if y_c is None:
            alarmed = max(1, len(self.alarmed_dimms))
            y_c = self.cold_migrations / alarmed
        return virr_from_counts(counts, y_c=y_c, vms_per_server=self.vms_per_server)


class MigrationSimulator:
    """Resolves alarms through mitigation and tracks interruptions."""

    def __init__(
        self,
        orchestrator: MitigationOrchestrator | None = None,
        vms_per_server: float = 10.0,
        rng: np.random.Generator | None = None,
    ):
        self.orchestrator = orchestrator or MitigationOrchestrator(
            rng=rng or np.random.default_rng(11)
        )
        self.ledger = MigrationLedger(vms_per_server=vms_per_server)

    def on_alarm(self, alarm: Alarm) -> MitigationPath:
        """Proactive action for one alarmed DIMM/server."""
        self.ledger.alarmed_dimms.setdefault(alarm.dimm_id, alarm.timestamp_hours)
        path = self.orchestrator.mitigate()
        self.ledger.record_path(path)
        return path

    def on_ue(self, dimm_id: str, timestamp_hours: float) -> None:
        self.ledger.failed_dimms.setdefault(dimm_id, timestamp_hours)
