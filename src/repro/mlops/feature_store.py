"""Feature store (paper Figure 6, centre).

Implements the three responsibilities the paper assigns to the feature
store:

* **Transformation** — batch (training) and stream (online) paths that run
  the *same* registered transform, guaranteeing train/serve consistency;
* **Storage** — materialised feature matrices, versioned by transform
  version and keyed by (dimm, timestamp);
* **Serving** — on-demand feature selection so different models (e.g. one
  per CPU architecture) consume different feature subsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.pipeline import FeaturePipeline
from repro.features.sampling import SampleSet


@dataclass(frozen=True)
class FeatureDefinition:
    """Registry entry: one named feature with its group and description."""

    name: str
    group: str
    description: str = ""
    version: int = 1


class FeatureRegistry:
    """Catalogue of feature definitions shared across teams' models."""

    def __init__(self) -> None:
        self._definitions: dict[str, FeatureDefinition] = {}

    def register(self, definition: FeatureDefinition) -> None:
        existing = self._definitions.get(definition.name)
        if existing is not None and existing.version >= definition.version:
            raise ValueError(
                f"feature {definition.name!r} already registered at "
                f"version {existing.version}"
            )
        self._definitions[definition.name] = definition

    def register_pipeline(self, pipeline: FeaturePipeline) -> int:
        """Register every feature a pipeline produces; returns the count."""
        groups = pipeline.feature_groups()
        name_to_group = {}
        for group, indices in groups.items():
            for index in indices:
                name_to_group[pipeline.feature_names()[index]] = group
        count = 0
        for name in pipeline.feature_names():
            if name not in self._definitions:
                self.register(
                    FeatureDefinition(name=name, group=name_to_group.get(name, ""))
                )
                count += 1
        return count

    def get(self, name: str) -> FeatureDefinition:
        return self._definitions[name]

    def names(self) -> list[str]:
        return sorted(self._definitions)

    def by_group(self, group: str) -> list[str]:
        return sorted(
            name
            for name, definition in self._definitions.items()
            if definition.group == group
        )

    def __len__(self) -> int:
        return len(self._definitions)


@dataclass
class MaterializedFeatures:
    """One stored batch of features (a training snapshot)."""

    snapshot_id: str
    samples: SampleSet
    transform_version: int


class FeatureStore:
    """Batch + stream transformation, storage and serving."""

    def __init__(self, pipeline: FeaturePipeline, transform_version: int = 1):
        self.pipeline = pipeline
        self.transform_version = transform_version
        self.registry = FeatureRegistry()
        self.registry.register_pipeline(pipeline)
        self._snapshots: dict[str, MaterializedFeatures] = {}
        self.stream_requests = 0

    # -- batch path (training) ----------------------------------------------

    def materialize(
        self,
        snapshot_id: str,
        store,
        platform: str,
        campaign_end_hour: float | None = None,
    ) -> MaterializedFeatures:
        """Run the batch transformation and store the snapshot."""
        if snapshot_id in self._snapshots:
            raise ValueError(f"snapshot {snapshot_id!r} already exists")
        samples = self.pipeline.build_samples(
            store, platform=platform, campaign_end_hour=campaign_end_hour
        )
        snapshot = MaterializedFeatures(
            snapshot_id=snapshot_id,
            samples=samples,
            transform_version=self.transform_version,
        )
        self._snapshots[snapshot_id] = snapshot
        return snapshot

    def snapshot(self, snapshot_id: str) -> MaterializedFeatures:
        return self._snapshots[snapshot_id]

    def snapshot_ids(self) -> list[str]:
        return sorted(self._snapshots)

    # -- stream path (online prediction) ---------------------------------------

    def serve_online(
        self,
        history,
        config,
        t: float,
        static_block: np.ndarray | None = None,
    ) -> np.ndarray:
        """Transform one DIMM state for online prediction.

        ``history`` is a :class:`~repro.features.windows.DimmHistory` or an
        :class:`~repro.features.windows.AppendableDimmHistory` (the
        streaming service's incrementally grown state).  Uses the identical
        transform as :meth:`materialize`, which is the train/serve-
        consistency guarantee the paper calls out.  ``static_block``
        optionally reuses the caller's cached static features (they depend
        only on the config): the incremental serving fast path recomputes
        just the window-dependent blocks.
        """
        self.stream_requests += 1
        return self.pipeline.transform_one(
            history, config, t, static_block=static_block
        )

    # -- serving with on-demand selection ----------------------------------------

    def select_features(
        self, samples: SampleSet, names: list[str]
    ) -> tuple[np.ndarray, list[str]]:
        """Column subset by feature name (per-model feature selection)."""
        index = {name: i for i, name in enumerate(samples.feature_names)}
        missing = [name for name in names if name not in index]
        if missing:
            raise KeyError(f"unknown features: {missing}")
        columns = [index[name] for name in names]
        return samples.X[:, columns], names
