"""The run loop: ``RunSpec`` -> cached artifacts -> scenario -> ``RunResult``.

:class:`RunContext` is the only object scenarios see.  It resolves names
through the registries and hands out artifacts through the
:class:`~repro.experiments.cache.ArtifactCache`, memoising the derived
per-platform :class:`~repro.evaluation.experiment.PlatformExperiment`
objects for the duration of one run so that e.g. the transfer matrix
builds each platform's simulation and SampleSet exactly once for all of
its row *and* column cells.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.cache import ArtifactCache, SampleSetKey, SimulationKey
from repro.experiments.registry import PLATFORMS, SCENARIOS
from repro.experiments.results import RunResult
from repro.experiments.spec import RunSpec
from repro.obs import Observability


def _ensure_builtins() -> None:
    """Import the modules whose decorators populate the registries."""
    import repro.chaos.scenario  # noqa: F401  (chaos_replay)
    import repro.distributed.scenario  # noqa: F401  (distributed_replay)
    import repro.evaluation.experiment  # noqa: F401  (models)
    import repro.experiments.scenarios  # noqa: F401  (scenarios)
    import repro.fleetops.scenario  # noqa: F401  (fleet_ops)
    import repro.simulator.platforms  # noqa: F401  (platforms)
    import repro.streaming.scenario  # noqa: F401  (streaming_replay)


class RunContext:
    """Artifact access for one scenario run."""

    def __init__(
        self,
        spec: RunSpec,
        protocol=None,
        cache: ArtifactCache | None = None,
        obs=None,
    ):
        _ensure_builtins()
        spec.validate()
        self.spec = spec
        self.protocol = protocol if protocol is not None else spec.protocol()
        root = Path(spec.cache_dir) if spec.cache_dir else None
        self.cache = cache if cache is not None else ArtifactCache(root)
        self._experiments: dict[str, object] = {}
        #: One :class:`~repro.obs.Observability` bundle per run when the
        #: ``observability`` param is set; scenarios thread it into the
        #: engines and ``run_spec`` attaches its snapshot to
        #: ``extras["observability"]``.  ``None`` keeps every hot path on
        #: the zero-cost no-op default.  A caller-supplied ``obs`` (the
        #: CLI's ``--serve-metrics`` path, which scrapes it live) takes
        #: precedence over the param-driven private bundle.
        params = spec.params or {}
        if obs is not None:
            self.obs = obs
        else:
            self.obs = Observability() if params.get("observability") else None
        if self.obs is not None:
            self.cache.attach_obs(self.obs)

    # -- artifact accessors ------------------------------------------------

    def simulation_key(self, platform: str) -> SimulationKey:
        # Per-platform scale/hours overrides flow into the content key, so
        # heterogeneous fleets cache their campaigns independently.
        return SimulationKey(
            platform=platform,
            scale=self.spec.effective_scale(platform),
            seed=self.spec.seed,
            hours=self.spec.effective_hours(platform),
        )

    def effective_hours(self, platform: str) -> float:
        """The platform's campaign length (override-aware)."""
        return self.spec.effective_hours(platform)

    def samples_key(self, platform: str) -> SampleSetKey:
        return SampleSetKey(
            simulation=self.simulation_key(platform),
            protocol_fingerprint=self.protocol.features_fingerprint(),
        )

    def simulation(self, platform: str):
        """The platform's campaign, built at most once per content key."""
        return self.cache.simulation(
            self.simulation_key(platform), lambda: self._simulate(platform)
        )

    def samples(self, platform: str):
        """The platform's labeled SampleSet, built at most once per key."""
        return self.cache.samples(
            self.samples_key(platform), lambda: self._extract(platform)
        )

    def experiment(self, platform: str):
        """The platform's split experiment (memoised per run)."""
        cached = self._experiments.get(platform)
        if cached is None:
            from repro.evaluation.experiment import PlatformExperiment

            cached = PlatformExperiment.from_samples(
                self.samples(platform),
                self.protocol,
                self.spec.effective_hours(platform),
            )
            self._experiments[platform] = cached
        return cached

    # -- builders ----------------------------------------------------------

    def _simulate(self, platform: str):
        from repro.simulator.fleet import FleetConfig, simulate_fleet

        factory = PLATFORMS.resolve(platform)
        return simulate_fleet(
            FleetConfig(
                platform=factory(self.spec.effective_scale(platform)),
                duration_hours=self.spec.effective_hours(platform),
                seed=self.spec.seed,
            )
        )

    def _extract(self, platform: str):
        from repro.features.pipeline import FeaturePipeline, FeaturePipelineConfig

        simulation = self.simulation(platform)
        pipeline = FeaturePipeline(
            FeaturePipelineConfig(
                labeling=self.protocol.labeling, sampling=self.protocol.sampling
            )
        )
        params = self.spec.params or {}
        return pipeline.build_samples(
            simulation.store,
            platform=platform,
            campaign_end_hour=simulation.duration_hours,
            engine=self.spec.engine,
            workers=self.spec.workers,
            tracer=self.obs.tracer if self.obs is not None else None,
            obs=self.obs,
            heartbeat_every=int(params.get("heartbeat_every", 0) or 0),
        )


def run_spec(
    spec: RunSpec,
    protocol=None,
    cache: ArtifactCache | None = None,
    obs=None,
) -> RunResult:
    """Run one declarative spec end to end.

    ``protocol`` overrides the spec-derived
    :class:`~repro.evaluation.protocol.ExperimentProtocol` (used by the
    legacy ``run_table2`` shim, which carries a full protocol object);
    ``cache`` shares one :class:`ArtifactCache` across several runs in the
    same process; ``obs`` injects a caller-owned observability bundle
    (the CLI passes the one its telemetry server is already scraping).
    """
    context = RunContext(spec, protocol=protocol, cache=cache, obs=obs)
    scenario = SCENARIOS.resolve(spec.scenario)
    outcome = scenario(context)
    # Scenarios usually return the cell grid; ones with payloads beyond the
    # grid (e.g. streaming_replay's throughput reports) return
    # ``(cells, extras)``.  The extras dict is the discriminator, so a
    # scenario returning its cells as a plain tuple still parses as a grid.
    if (
        isinstance(outcome, tuple)
        and len(outcome) == 2
        and isinstance(outcome[1], dict)
    ):
        cells, extras = outcome
    else:
        cells, extras = outcome, {}
    if context.obs is not None:
        extras = dict(extras)
        extras.setdefault("observability", context.obs.payload())
    return RunResult(
        scenario=spec.scenario,
        spec=spec.to_dict(),
        cells=list(cells),
        cache_stats=context.cache.stats(),
        extras=extras,
    )
