"""Built-in scenarios: the paper's experiments as ~30-line registrations.

Every scenario is a function ``(ctx: RunContext) -> list[Cell]`` registered
under a string name.  The context hands out cached artifacts
(``ctx.experiment(platform)`` is a split
:class:`~repro.evaluation.experiment.PlatformExperiment` built from the
artifact cache), so scenarios only describe *which* (train, test, model)
cells to evaluate — never how to simulate or extract.

* ``single_platform`` — train and test on each platform separately; the
  diagonal baseline and the exact computation behind Table II.
* ``transfer_matrix`` — the paper's headline question (train on CPU
  architecture A, predict on B) for every ordered platform pair.  The
  diagonal is bit-identical to ``single_platform``.
* ``pooled_training`` — one model trained on the union of every
  platform's training fleet, evaluated per platform.
* ``mixed_fleet`` — the pooled model evaluated on one combined
  heterogeneous test fleet (a multi-architecture datacenter).
"""

from __future__ import annotations

from repro.evaluation.experiment import (
    MODEL_BUILDERS,
    ModelResult,
    PlatformExperiment,
)
from repro.experiments.registry import register_scenario
from repro.experiments.results import MIXED_FLEET, POOLED, Cell
from repro.features.sampling import concat_sample_sets


@register_scenario("single_platform")
def single_platform(ctx) -> list[Cell]:
    """Per-platform train/test: the Table II computation, cell by cell."""
    cells = []
    for platform in ctx.spec.platforms:
        experiment = ctx.experiment(platform)
        for model_name in ctx.spec.models:
            cells.append(
                Cell(platform, platform, model_name,
                     experiment.run_model(model_name))
            )
    return cells


@register_scenario("transfer_matrix")
def transfer_matrix(ctx) -> list[Cell]:
    """Train on platform A, test on platform B, for every ordered pair.

    Each (train platform, model) pair is **fit once** and evaluated across
    the whole matrix row; only the operating point is re-derived per test
    platform.  Fits are deterministic at fixed seed, so the diagonal stays
    bit-identical to ``single_platform``'s fresh fit.
    """
    cells = []
    for train_platform in ctx.spec.platforms:
        source = ctx.experiment(train_platform)
        for model_name in ctx.spec.models:
            cells.extend(_matrix_row(ctx, source, model_name))
    return cells


def _pooled_splits(ctx):
    """(per-platform experiments, pooled train, pooled validation)."""
    sources = [ctx.experiment(p) for p in ctx.spec.platforms]
    train = concat_sample_sets([s.train for s in sources], platform=POOLED)
    validation = concat_sample_sets(
        [s.validation for s in sources], platform=POOLED
    )
    return sources, train, validation


@register_scenario("pooled_training")
def pooled_training(ctx) -> list[Cell]:
    """Union-fleet training, per-platform evaluation.

    Each model is **fit once** on the pooled training split (and its alarm
    budget tuned once — both depend only on the pooled fleet, which is
    identical for every target); per test platform only the operating
    point is re-derived, exactly as in the transfer matrix's shared-fit
    rows.  Metrics equal the former fit-per-target behaviour bit for bit
    (fits are deterministic at fixed seed), at a third of the training
    cost.
    """
    sources, train, validation = _pooled_splits(ctx)
    cells = []
    for model_name in ctx.spec.models:
        builder = MODEL_BUILDERS[model_name]
        model = builder(train.feature_names, ctx.protocol.seed)
        supports = getattr(model, "supports", None)
        targets = []
        for target in sources:
            pooled = PlatformExperiment(
                platform=target.platform,
                samples=train,
                train=train,
                validation=validation,
                test=target.test,
                protocol=ctx.protocol,
            )
            supported = supports is None or supports(target.platform)
            targets.append((pooled, supported))
        cells.extend(_shared_fit_cells(POOLED, model_name, model, targets))
    return cells


@register_scenario("mixed_fleet")
def mixed_fleet(ctx) -> list[Cell]:
    """Union-fleet training AND one combined heterogeneous test fleet."""
    sources, train, validation = _pooled_splits(ctx)
    test = concat_sample_sets([s.test for s in sources], platform=MIXED_FLEET)
    experiment = PlatformExperiment(
        platform=MIXED_FLEET,
        samples=train,
        train=train,
        validation=validation,
        test=test,
        protocol=ctx.protocol,
    )
    return [
        Cell(POOLED, MIXED_FLEET, model_name,
             experiment.run_model(model_name))
        for model_name in ctx.spec.models
    ]


def _matrix_row(
    ctx, source: PlatformExperiment, model_name: str
) -> list[Cell]:
    """One transfer-matrix row: train on ``source``, test everywhere.

    Every experiment handed to :func:`_shared_fit_cells` carries the
    *source* train/validation splits and one target's test split, so the
    model is fit once and the alarm budget tuned once for the whole row.
    Rule-based baselines must support both architectures.
    """
    builder = MODEL_BUILDERS[model_name]
    model = builder(source.samples.feature_names, ctx.protocol.seed)
    supports = getattr(model, "supports", None)
    targets = []
    for test_platform in ctx.spec.platforms:
        target = ctx.experiment(test_platform)
        crossed = PlatformExperiment(
            platform=target.platform,
            samples=source.samples,
            train=source.train,
            validation=source.validation,
            test=target.test,
            protocol=ctx.protocol,
        )
        supported = supports is None or (
            supports(source.platform) and supports(target.platform)
        )
        targets.append((crossed, supported))
    return _shared_fit_cells(source.platform, model_name, model, targets)


def _shared_fit_cells(
    train_label: str,
    model_name: str,
    model,
    targets: list[tuple[PlatformExperiment, bool]],
) -> list[Cell]:
    """Fit ``model`` once, evaluate it against every target experiment.

    All targets must share one train/validation pair (a transfer-matrix
    row's source splits, or the pooled union splits): the fit and the
    alarm-budget flag rate depend only on those, so they are derived on
    the first supported target and shared — per target only the operating
    point is re-derived, as a quantile of that target's score distribution
    (no target labels are ever used).
    """
    fitted = False
    flag_rate = None
    cells = []
    for experiment, supported in targets:
        if not supported:
            cells.append(
                Cell(train_label, experiment.platform, model_name,
                     ModelResult(platform=experiment.platform,
                                 model_name=model_name, supported=False))
            )
            continue
        if not fitted and min(
            len(experiment.train), len(experiment.validation)
        ) > 0:
            model.fit(
                experiment.train.X,
                experiment.train.y,
                eval_set=(experiment.validation.X, experiment.validation.y),
            )
            fitted = True
            if not getattr(model, "fixed_operating_point", False):
                flag_rate = experiment._alarm_budget_flag_rate(model)
        # refit only if the guard above could not fit (empty shared split:
        # run_model then raises its canonical empty-split error).
        cells.append(
            Cell(train_label, experiment.platform, model_name,
                 experiment.run_model(model_name, model=model,
                                      refit=not fitted, flag_rate=flag_rate))
        )
    return cells
