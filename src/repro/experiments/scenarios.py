"""Built-in scenarios: the paper's experiments as ~30-line registrations.

Every scenario is a function ``(ctx: RunContext) -> list[Cell]`` registered
under a string name.  The context hands out cached artifacts
(``ctx.experiment(platform)`` is a split
:class:`~repro.evaluation.experiment.PlatformExperiment` built from the
artifact cache), so scenarios only describe *which* (train, test, model)
cells to evaluate — never how to simulate or extract.

* ``single_platform`` — train and test on each platform separately; the
  diagonal baseline and the exact computation behind Table II.
* ``transfer_matrix`` — the paper's headline question (train on CPU
  architecture A, predict on B) for every ordered platform pair.  The
  diagonal is bit-identical to ``single_platform``.
* ``pooled_training`` — one model trained on the union of every
  platform's training fleet, evaluated per platform.
* ``mixed_fleet`` — the pooled model evaluated on one combined
  heterogeneous test fleet (a multi-architecture datacenter).
"""

from __future__ import annotations

from repro.evaluation.experiment import (
    MODEL_BUILDERS,
    ModelResult,
    PlatformExperiment,
)
from repro.experiments.registry import register_scenario
from repro.experiments.results import MIXED_FLEET, POOLED, Cell
from repro.features.sampling import concat_sample_sets


@register_scenario("single_platform")
def single_platform(ctx) -> list[Cell]:
    """Per-platform train/test: the Table II computation, cell by cell."""
    cells = []
    for platform in ctx.spec.platforms:
        experiment = ctx.experiment(platform)
        for model_name in ctx.spec.models:
            cells.append(
                Cell(platform, platform, model_name,
                     experiment.run_model(model_name))
            )
    return cells


@register_scenario("transfer_matrix")
def transfer_matrix(ctx) -> list[Cell]:
    """Train on platform A, test on platform B, for every ordered pair.

    Each (train platform, model) pair is **fit once** and evaluated across
    the whole matrix row; only the operating point is re-derived per test
    platform.  Fits are deterministic at fixed seed, so the diagonal stays
    bit-identical to ``single_platform``'s fresh fit.
    """
    cells = []
    for train_platform in ctx.spec.platforms:
        source = ctx.experiment(train_platform)
        for model_name in ctx.spec.models:
            cells.extend(_matrix_row(ctx, source, model_name))
    return cells


@register_scenario("pooled_training")
def pooled_training(ctx) -> list[Cell]:
    """Union-fleet training, per-platform evaluation."""
    sources = [ctx.experiment(p) for p in ctx.spec.platforms]
    train = concat_sample_sets([s.train for s in sources], platform=POOLED)
    validation = concat_sample_sets(
        [s.validation for s in sources], platform=POOLED
    )
    cells = []
    for target in sources:
        pooled = PlatformExperiment(
            platform=target.platform,
            samples=train,
            train=train,
            validation=validation,
            test=target.test,
            protocol=ctx.protocol,
        )
        for model_name in ctx.spec.models:
            cells.append(
                Cell(POOLED, target.platform, model_name,
                     pooled.run_model(model_name))
            )
    return cells


@register_scenario("mixed_fleet")
def mixed_fleet(ctx) -> list[Cell]:
    """Union-fleet training AND one combined heterogeneous test fleet."""
    sources = [ctx.experiment(p) for p in ctx.spec.platforms]
    train = concat_sample_sets([s.train for s in sources], platform=POOLED)
    validation = concat_sample_sets(
        [s.validation for s in sources], platform=POOLED
    )
    test = concat_sample_sets([s.test for s in sources], platform=MIXED_FLEET)
    experiment = PlatformExperiment(
        platform=MIXED_FLEET,
        samples=train,
        train=train,
        validation=validation,
        test=test,
        protocol=ctx.protocol,
    )
    return [
        Cell(POOLED, MIXED_FLEET, model_name,
             experiment.run_model(model_name))
        for model_name in ctx.spec.models
    ]


def _matrix_row(
    ctx, source: PlatformExperiment, model_name: str
) -> list[Cell]:
    """One transfer-matrix row: train on ``source``, test everywhere.

    The model is fit once and the alarm budget tuned once — both depend
    only on the source fleet.  Per test platform only the operating point
    is re-derived: the tuned flag rate applied to that target's score
    distribution as a quantile (no target labels are ever used).
    Rule-based baselines must support both architectures.
    """
    protocol = ctx.protocol
    builder = MODEL_BUILDERS[model_name]
    model = builder(source.samples.feature_names, protocol.seed)
    supports = getattr(model, "supports", None)
    fitted = False
    flag_rate = None
    row = []
    for test_platform in ctx.spec.platforms:
        target = ctx.experiment(test_platform)
        if supports is not None and not (
            supports(source.platform) and supports(target.platform)
        ):
            row.append(
                Cell(source.platform, test_platform, model_name,
                     ModelResult(platform=test_platform,
                                 model_name=model_name, supported=False))
            )
            continue
        if not fitted and min(len(source.train), len(source.validation)) > 0:
            model.fit(
                source.train.X,
                source.train.y,
                eval_set=(source.validation.X, source.validation.y),
            )
            fitted = True
            if not getattr(model, "fixed_operating_point", False):
                flag_rate = source._alarm_budget_flag_rate(model)
        crossed = PlatformExperiment(
            platform=target.platform,
            samples=source.samples,
            train=source.train,
            validation=source.validation,
            test=target.test,
            protocol=protocol,
        )
        # refit only if the guard above could not fit (empty source split:
        # run_model then raises its canonical empty-split error).
        row.append(
            Cell(source.platform, test_platform, model_name,
                 crossed.run_model(model_name, model=model,
                                   refit=not fitted, flag_rate=flag_rate))
        )
    return row
