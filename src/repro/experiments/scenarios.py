"""Built-in scenarios: the paper's experiments as ~30-line registrations.

Every scenario is a function ``(ctx: RunContext) -> list[Cell]`` registered
under a string name.  The context hands out cached artifacts
(``ctx.experiment(platform)`` is a split
:class:`~repro.evaluation.experiment.PlatformExperiment` built from the
artifact cache), so scenarios only describe *which* (train, test, model)
cells to evaluate — never how to simulate or extract.

* ``single_platform`` — train and test on each platform separately; the
  diagonal baseline and the exact computation behind Table II.
* ``transfer_matrix`` — the paper's headline question (train on CPU
  architecture A, predict on B) for every ordered platform pair.  The
  diagonal is bit-identical to ``single_platform``.
* ``pooled_training`` — one model trained on the union of every
  platform's training fleet, evaluated per platform.
* ``mixed_fleet`` — the pooled model evaluated on one combined
  heterogeneous test fleet (a multi-architecture datacenter).
* ``lead_time`` — the single-platform evaluation plus the *achieved*
  lead-time distribution of every catch (paper Section IV's Δtl
  requirement), via :mod:`repro.evaluation.leadtime`.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiment import (
    MODEL_BUILDERS,
    ModelResult,
    PlatformExperiment,
)
from repro.evaluation.leadtime import achieved_lead_times
from repro.experiments.registry import register_scenario
from repro.experiments.results import MIXED_FLEET, POOLED, Cell
from repro.features.sampling import aggregate_by_dimm, concat_sample_sets


@register_scenario("single_platform")
def single_platform(ctx) -> list[Cell]:
    """Per-platform train/test: the Table II computation, cell by cell."""
    cells = []
    for platform in ctx.spec.platforms:
        experiment = ctx.experiment(platform)
        for model_name in ctx.spec.models:
            cells.append(
                Cell(platform, platform, model_name,
                     experiment.run_model(model_name))
            )
    return cells


@register_scenario("transfer_matrix")
def transfer_matrix(ctx) -> list[Cell]:
    """Train on platform A, test on platform B, for every ordered pair.

    Each (train platform, model) pair is **fit once** and evaluated across
    the whole matrix row; only the operating point is re-derived per test
    platform.  Fits are deterministic at fixed seed, so the diagonal stays
    bit-identical to ``single_platform``'s fresh fit.
    """
    cells = []
    for train_platform in ctx.spec.platforms:
        source = ctx.experiment(train_platform)
        for model_name in ctx.spec.models:
            cells.extend(_matrix_row(ctx, source, model_name))
    return cells


def _pooled_splits(ctx):
    """(per-platform experiments, pooled train, pooled validation)."""
    sources = [ctx.experiment(p) for p in ctx.spec.platforms]
    train = concat_sample_sets([s.train for s in sources], platform=POOLED)
    validation = concat_sample_sets(
        [s.validation for s in sources], platform=POOLED
    )
    return sources, train, validation


@register_scenario("pooled_training")
def pooled_training(ctx) -> list[Cell]:
    """Union-fleet training, per-platform evaluation.

    Each model is **fit once** on the pooled training split (and its alarm
    budget tuned once — both depend only on the pooled fleet, which is
    identical for every target); per test platform only the operating
    point is re-derived, exactly as in the transfer matrix's shared-fit
    rows.  Metrics equal the former fit-per-target behaviour bit for bit
    (fits are deterministic at fixed seed), at a third of the training
    cost.
    """
    sources, train, validation = _pooled_splits(ctx)
    cells = []
    for model_name in ctx.spec.models:
        builder = MODEL_BUILDERS[model_name]
        model = builder(train.feature_names, ctx.protocol.seed)
        supports = getattr(model, "supports", None)
        targets = []
        for target in sources:
            pooled = PlatformExperiment(
                platform=target.platform,
                samples=train,
                train=train,
                validation=validation,
                test=target.test,
                protocol=ctx.protocol,
            )
            supported = supports is None or supports(target.platform)
            targets.append((pooled, supported))
        cells.extend(_shared_fit_cells(POOLED, model_name, model, targets))
    return cells


@register_scenario("mixed_fleet")
def mixed_fleet(ctx) -> list[Cell]:
    """Union-fleet training AND one combined heterogeneous test fleet."""
    sources, train, validation = _pooled_splits(ctx)
    test = concat_sample_sets([s.test for s in sources], platform=MIXED_FLEET)
    experiment = PlatformExperiment(
        platform=MIXED_FLEET,
        samples=train,
        train=train,
        validation=validation,
        test=test,
        protocol=ctx.protocol,
    )
    return [
        Cell(POOLED, MIXED_FLEET, model_name,
             experiment.run_model(model_name))
        for model_name in ctx.spec.models
    ]


@register_scenario("lead_time")
def lead_time(ctx):
    """How far ahead of each UE does the flagged sample land?

    Runs the single-platform evaluation per (platform, model), then feeds
    the *same* fitted model's test-sample scores and the cell's tuned
    operating point into
    :func:`repro.evaluation.leadtime.achieved_lead_times`.  The cell's
    decision is DIMM-level (scores pooled by ``aggregate_by_dimm``), so
    lead times are measured only over DIMMs that decision actually flags
    — the catch population is exactly the cell's true positives, and each
    catch's alarm hour is its first sample at or above the threshold.
    Extras report the catch count, median/min lead hours, and the share
    of catches with at least the labeling lead budget (the paper's
    Δtl = 3h bar).
    """
    cells: list[Cell] = []
    extras: dict = {"lead_time": {}}
    lead_budget = ctx.protocol.labeling.lead_hours
    for platform in ctx.spec.platforms:
        experiment = ctx.experiment(platform)
        simulation = ctx.simulation(platform)
        ue_hours: dict[str, float] = {}
        for ue in simulation.store.ues:
            current = ue_hours.get(ue.dimm_id)
            if current is None or ue.timestamp_hours < current:
                ue_hours[ue.dimm_id] = ue.timestamp_hours
        platform_extras = extras["lead_time"].setdefault(platform, {})
        for model_name in ctx.spec.models:
            builder = MODEL_BUILDERS[model_name]
            model = builder(experiment.samples.feature_names, ctx.protocol.seed)
            result = experiment.run_model(model_name, model=model)
            cells.append(Cell(platform, platform, model_name, result))
            if not result.supported:
                continue
            scores = model.predict_proba(experiment.test.X)
            dimm_ids, _, dimm_scores = aggregate_by_dimm(
                experiment.test, scores
            )
            flagged = {
                dimm_id
                for dimm_id, score in zip(dimm_ids, dimm_scores)
                if score >= result.threshold
            }
            # Mask out samples of unflagged DIMMs: a lone sample spike on
            # a DIMM the pooled decision rejects is not a catch.  (Every
            # flagged DIMM has a sample >= threshold: the pooled score is
            # a top-k mean, bounded by the max sample.)
            masked = np.where(
                [dimm_id in flagged for dimm_id in experiment.test.dimm_ids],
                scores,
                -np.inf,
            )
            stats = achieved_lead_times(
                experiment.test,
                masked,
                result.threshold,
                ue_hours,
            )
            platform_extras[model_name] = {
                "caught_dimms": stats.count,
                "median_hours": stats.median_hours,
                "min_hours": stats.min_hours,
                "lead_budget_hours": lead_budget,
                "fraction_at_least_budget": stats.fraction_at_least(lead_budget),
                "fraction_at_least_24h": stats.fraction_at_least(24.0),
            }
    return cells, extras


def render_lead_time_extras(extras: dict) -> str:
    """Human-readable summary of the ``lead_time`` extras payload."""
    lines = ["LEAD TIME (achieved warning before each caught UE)"]
    for platform, models in extras.get("lead_time", {}).items():
        for model_name, stats in models.items():
            lines.append(
                f"  {platform}/{model_name}: {stats['caught_dimms']} catches, "
                f"median {stats['median_hours']:.1f}h, min "
                f"{stats['min_hours']:.1f}h, "
                f">={stats['lead_budget_hours']:.0f}h lead for "
                f"{stats['fraction_at_least_budget']:.0%} "
                f"(>=24h for {stats['fraction_at_least_24h']:.0%})"
            )
    return "\n".join(lines)


def _matrix_row(
    ctx, source: PlatformExperiment, model_name: str
) -> list[Cell]:
    """One transfer-matrix row: train on ``source``, test everywhere.

    Every experiment handed to :func:`_shared_fit_cells` carries the
    *source* train/validation splits and one target's test split, so the
    model is fit once and the alarm budget tuned once for the whole row.
    Rule-based baselines must support both architectures.
    """
    builder = MODEL_BUILDERS[model_name]
    model = builder(source.samples.feature_names, ctx.protocol.seed)
    supports = getattr(model, "supports", None)
    targets = []
    for test_platform in ctx.spec.platforms:
        target = ctx.experiment(test_platform)
        crossed = PlatformExperiment(
            platform=target.platform,
            samples=source.samples,
            train=source.train,
            validation=source.validation,
            test=target.test,
            protocol=ctx.protocol,
        )
        supported = supports is None or (
            supports(source.platform) and supports(target.platform)
        )
        targets.append((crossed, supported))
    return _shared_fit_cells(source.platform, model_name, model, targets)


def _shared_fit_cells(
    train_label: str,
    model_name: str,
    model,
    targets: list[tuple[PlatformExperiment, bool]],
) -> list[Cell]:
    """Fit ``model`` once, evaluate it against every target experiment.

    All targets must share one train/validation pair (a transfer-matrix
    row's source splits, or the pooled union splits): the fit and the
    alarm-budget flag rate depend only on those, so they are derived on
    the first supported target and shared — per target only the operating
    point is re-derived, as a quantile of that target's score distribution
    (no target labels are ever used).
    """
    fitted = False
    flag_rate = None
    cells = []
    for experiment, supported in targets:
        if not supported:
            cells.append(
                Cell(train_label, experiment.platform, model_name,
                     ModelResult(platform=experiment.platform,
                                 model_name=model_name, supported=False))
            )
            continue
        if not fitted and min(
            len(experiment.train), len(experiment.validation)
        ) > 0:
            model.fit(
                experiment.train.X,
                experiment.train.y,
                eval_set=(experiment.validation.X, experiment.validation.y),
            )
            fitted = True
            if not getattr(model, "fixed_operating_point", False):
                flag_rate = experiment._alarm_budget_flag_rate(model)
        # refit only if the guard above could not fit (empty shared split:
        # run_model then raises its canonical empty-split error).
        cells.append(
            Cell(train_label, experiment.platform, model_name,
                 experiment.run_model(model_name, model=model,
                                      refit=not fitted, flag_rate=flag_rate))
        )
    return cells
