"""Scenario-first experiment API.

Declarative pipeline: a :class:`RunSpec` names a scenario plus its knobs,
:func:`run_spec` resolves every name through the string-keyed registries,
serves simulations and SampleSets from the content-addressed
:class:`ArtifactCache`, and returns a :class:`RunResult` cell grid::

    from repro.experiments import RunSpec, run_spec

    result = run_spec(RunSpec(scenario="transfer_matrix", scale=0.1))
    print(result.render())

Attribute access is lazy (PEP 562) so that low-level modules can import
``repro.experiments.registry`` for their ``@register_*`` decorators
without dragging the evaluation stack into their import graph.
"""

from __future__ import annotations

_EXPORTS = {
    "Registry": ("repro.experiments.registry", "Registry"),
    "UnknownNameError": ("repro.experiments.registry", "UnknownNameError"),
    "DuplicateNameError": ("repro.experiments.registry", "DuplicateNameError"),
    "MODELS": ("repro.experiments.registry", "MODELS"),
    "PLATFORMS": ("repro.experiments.registry", "PLATFORMS"),
    "SCENARIOS": ("repro.experiments.registry", "SCENARIOS"),
    "register_model": ("repro.experiments.registry", "register_model"),
    "register_platform": ("repro.experiments.registry", "register_platform"),
    "register_scenario": ("repro.experiments.registry", "register_scenario"),
    "RunSpec": ("repro.experiments.spec", "RunSpec"),
    "ArtifactCache": ("repro.experiments.cache", "ArtifactCache"),
    "SimulationKey": ("repro.experiments.cache", "SimulationKey"),
    "SampleSetKey": ("repro.experiments.cache", "SampleSetKey"),
    "Cell": ("repro.experiments.results", "Cell"),
    "RunResult": ("repro.experiments.results", "RunResult"),
    "POOLED": ("repro.experiments.results", "POOLED"),
    "MIXED_FLEET": ("repro.experiments.results", "MIXED_FLEET"),
    "RunContext": ("repro.experiments.runner", "RunContext"),
    "run_spec": ("repro.experiments.runner", "run_spec"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
