"""Run results: the scenario-agnostic (train, test, model) cell grid.

Every scenario returns a list of :class:`Cell` — a train platform (or
``"pooled"``), a test platform (or ``"mixed_fleet"``), a model name, and
the :class:`~repro.evaluation.experiment.ModelResult` of that cell.  A
:class:`RunResult` wraps the grid with the spec and the cache accounting,
renders it as per-model matrices, serialises to JSON for the CI diagonal
gate, and converts single-platform grids back into the legacy
:class:`~repro.evaluation.table2.Table2Results` shape.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.evaluation.experiment import ModelResult

#: Pseudo train-platform of union-fleet training scenarios.
POOLED = "pooled"
#: Pseudo test-platform of the combined heterogeneous test fleet.
MIXED_FLEET = "mixed_fleet"

_METRIC_FIELDS = (
    "precision",
    "recall",
    "f1",
    "virr",
    "threshold",
    "sample_auc",
    "sample_ap",
)


@dataclass(frozen=True)
class Cell:
    """One (train platform, test platform, model) evaluation."""

    train_platform: str
    test_platform: str
    model: str
    result: "ModelResult"

    @property
    def is_diagonal(self) -> bool:
        return self.train_platform == self.test_platform

    def to_dict(self) -> dict:
        payload = {
            "train_platform": self.train_platform,
            "test_platform": self.test_platform,
            "model": self.model,
            "supported": self.result.supported,
            "test_dimms": self.result.test_dimms,
            "test_positive_dimms": self.result.test_positive_dimms,
        }
        for name in _METRIC_FIELDS:
            payload[name] = float(getattr(self.result, name))
        return payload


@dataclass
class RunResult:
    """Everything one :func:`repro.experiments.run_spec` call produced."""

    scenario: str
    spec: dict
    cells: list[Cell] = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)
    #: Scenario-specific payload beyond the cell grid (JSON-serialisable);
    #: e.g. the streaming-replay scenario's throughput/alarm reports.
    extras: dict = field(default_factory=dict)

    # -- lookup ------------------------------------------------------------

    def cell(self, train_platform: str, test_platform: str, model: str) -> Cell:
        for cell in self.cells:
            if (
                cell.train_platform == train_platform
                and cell.test_platform == test_platform
                and cell.model == model
            ):
                return cell
        raise KeyError(
            f"no cell ({train_platform!r}, {test_platform!r}, {model!r})"
        )

    def models(self) -> tuple[str, ...]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.model not in seen:
                seen.append(cell.model)
        return tuple(seen)

    def train_platforms(self) -> tuple[str, ...]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.train_platform not in seen:
                seen.append(cell.train_platform)
        return tuple(seen)

    def test_platforms(self) -> tuple[str, ...]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.test_platform not in seen:
                seen.append(cell.test_platform)
        return tuple(seen)

    # -- conversions -------------------------------------------------------

    def to_table2(self, protocol=None):
        """Diagonal cells as a legacy :class:`Table2Results` (shim path)."""
        from repro.evaluation.table2 import Table2Results

        results = Table2Results(protocol=protocol)
        for cell in self.cells:
            if not cell.is_diagonal:
                continue
            results.cells.setdefault(cell.model, {})[cell.test_platform] = (
                cell.result
            )
        return results

    def to_dict(self) -> dict:
        payload = {
            "scenario": self.scenario,
            "spec": self.spec,
            "cells": [cell.to_dict() for cell in self.cells],
            "cache_stats": self.cache_stats,
        }
        if self.extras:
            payload["extras"] = self.extras
        return payload

    def to_json_file(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # -- rendering ---------------------------------------------------------

    def render_cache_stats(self) -> str:
        from repro.experiments.cache import render_cache_stats

        return render_cache_stats(self.cache_stats)

    def render(self) -> str:
        """One F1 (precision/recall) matrix per model."""
        lines = [f"SCENARIO {self.scenario}"]
        spec = self.spec
        lines.append(
            f"  scale={spec.get('scale')} hours={spec.get('hours')} "
            f"seed={spec.get('seed')} engine={spec.get('engine')}"
        )
        trains = self.train_platforms()
        tests = self.test_platforms()
        corner = "train\\test"
        width = max(
            [len(corner)]
            + [len(name) for name in trains]
            + [len(name) for name in tests]
        )
        cell_width = max(width, 18)
        for model in self.models():
            lines.append(f"  model={model} — F1 (precision/recall)")
            header = f"    {corner:<{cell_width}}" + "".join(
                f"{name:>{cell_width}}" for name in tests
            )
            lines.append(header)
            for train in trains:
                row = f"    {train:<{cell_width}}"
                for test in tests:
                    try:
                        cell = self.cell(train, test, model)
                    except KeyError:
                        row += f"{'-':>{cell_width}}"
                        continue
                    row += f"{_format_cell(cell):>{cell_width}}"
                lines.append(row)
        return "\n".join(lines)

    def any_nonfinite(self) -> list[Cell]:
        """Supported cells whose headline metrics are not finite."""
        bad = []
        for cell in self.cells:
            if not cell.result.supported:
                continue
            values = (cell.result.precision, cell.result.recall, cell.result.f1)
            if not all(math.isfinite(v) for v in values):
                bad.append(cell)
        return bad


def _format_cell(cell: Cell) -> str:
    if not cell.result.supported:
        return "X"
    r = cell.result
    return f"{r.f1:.2f} ({r.precision:.2f}/{r.recall:.2f})"
