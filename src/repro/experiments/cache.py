"""Content-addressed artifact cache for simulations and SampleSets.

Every scenario cell needs (platform simulation -> extracted SampleSet ->
split) inputs; the cache guarantees each is **built once** per content key
and shared — across the cells of one run (memory tier) and across
processes/invocations (optional disk tier under ``root``):

* **simulations** are keyed on ``(platform, scale, seed, hours)`` and
  persisted through the columnar log store's JSONL round-trip
  (:meth:`LogStore.dump_jsonl` / :meth:`LogStore.load_jsonl`) plus a tiny
  meta sidecar; rehydrated campaigns rebuild their
  :class:`~repro.simulator.platforms.PlatformSpec` from the platform
  registry.
* **SampleSets** add the feature protocol fingerprint (labeling + sampling
  parameters) to the simulation key and are persisted as ``.npz`` — the
  float64 matrices round-trip bit-for-bit, so cached and freshly extracted
  samples are indistinguishable downstream.

Hit/miss accounting is explicit (:attr:`ArtifactCache.counters`) so
callers — and the CI transfer-matrix gate — can assert "second run, zero
re-simulation".
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

#: Bump when on-disk layouts change; part of every digest, so old artifacts
#: simply miss instead of deserialising wrongly.
FORMAT_VERSION = 1


def stable_digest(payload: dict) -> str:
    """Deterministic hex digest of a JSON-serialisable payload."""
    body = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SimulationKey:
    """Identity of one platform campaign."""

    platform: str
    scale: float
    seed: int
    hours: float

    def payload(self) -> dict:
        return {
            "kind": "simulation",
            "format": FORMAT_VERSION,
            **dataclasses.asdict(self),
        }

    def digest(self) -> str:
        return stable_digest(self.payload())


@dataclass(frozen=True)
class ShardSetKey:
    """Identity of one DIMM-sharded fleet: member campaigns + layout.

    The payload embeds :data:`repro.distributed.shards.SHARD_FORMAT_VERSION`
    alongside the cache's own ``FORMAT_VERSION``, so bumping the on-disk
    shard layout changes every digest and stale sets simply miss — and a
    set whose ``manifest.json`` carries the wrong version (e.g. written
    by an older tree into the same root) is rejected at load time and
    rebuilt in place.
    """

    simulations: tuple[SimulationKey, ...]
    n_shards: int

    def payload(self) -> dict:
        from repro.distributed.shards import SHARD_FORMAT_VERSION

        return {
            "kind": "shards",
            "format": FORMAT_VERSION,
            "shard_format": SHARD_FORMAT_VERSION,
            "n_shards": int(self.n_shards),
            "simulations": [key.payload() for key in self.simulations],
        }

    def digest(self) -> str:
        return stable_digest(self.payload())


@dataclass(frozen=True)
class SampleSetKey:
    """Identity of one extracted SampleSet: simulation + feature protocol.

    ``protocol_fingerprint`` comes from
    :meth:`ExperimentProtocol.features_fingerprint` — labeling and sampling
    parameters only.  The extraction engine is deliberately absent: all
    engines produce bit-identical matrices (fleet-parity suite), so their
    artifacts are interchangeable.
    """

    simulation: SimulationKey
    protocol_fingerprint: str

    def payload(self) -> dict:
        return {
            "kind": "samples",
            "format": FORMAT_VERSION,
            "simulation": self.simulation.payload(),
            "protocol": self.protocol_fingerprint,
        }

    def digest(self) -> str:
        return stable_digest(self.payload())


@dataclass
class CacheCounters:
    """Per-artifact-kind accounting."""

    memory_hits: int = 0
    disk_hits: int = 0
    builds: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
        }


@dataclass
class CachedSimulation:
    """A campaign rehydrated from the disk tier.

    Quacks like :class:`~repro.simulator.fleet.SimulationResult` for every
    consumer in the experiment and lifecycle paths (``.store``,
    ``.platform``, ``.duration_hours``); ground truth is not persisted, so
    ``truth`` is ``None`` — evaluation never reads it (labels come from the
    logged UEs), only calibration studies do, and those re-simulate.
    """

    platform: object  # PlatformSpec
    store: object  # LogStore
    duration_hours: float
    truth: None = None


class ArtifactCache:
    """Two-tier (memory, optional disk) get-or-build store."""

    def __init__(self, root: str | Path | None = None, obs=None):
        self.root = Path(root) if root is not None else None
        self._simulations: dict[str, object] = {}
        self._samplesets: dict[str, object] = {}
        self._shard_sets: dict[str, tuple] = {}
        self.counters = {
            "simulation": CacheCounters(),
            "samples": CacheCounters(),
            "shards": CacheCounters(),
        }
        #: Optional :class:`repro.obs.Observability` bundle: every lookup
        #: also lands in ``repro_cache_requests_total{kind,tier}`` and as
        #: a ``cache.<kind>`` span.  ``CacheCounters`` stays the primary
        #: (always-on) ledger.
        self._obs = obs
        if self.root is not None:
            (self.root / "simulations").mkdir(parents=True, exist_ok=True)
            (self.root / "samples").mkdir(parents=True, exist_ok=True)
            (self.root / "shards").mkdir(parents=True, exist_ok=True)

    def attach_obs(self, obs) -> None:
        """Wire an observability bundle after construction (scenarios
        attach at run start, so instruments cover exactly one run)."""
        self._obs = obs

    def _note(self, kind: str, tier: str, t0: float) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_cache_requests_total",
            "ArtifactCache lookups by artifact kind and serving tier.",
            labels=("kind", "tier"),
        ).labels(kind=kind, tier=tier).inc()
        self._obs.tracer.record(
            "cache." + kind,
            wall_seconds=time.perf_counter() - t0,
            tier=tier,
        )

    # -- pre-population ----------------------------------------------------

    def put_simulation(self, key: SimulationKey, simulation) -> None:
        """Seed the memory tier with an already-built campaign.

        Lets callers run scenarios over campaigns they simulated (or
        loaded) themselves; no counters move and nothing is written to
        disk — subsequent :meth:`simulation` calls for ``key`` are memory
        hits.
        """
        self._simulations[key.digest()] = simulation

    def put_samples(self, key: SampleSetKey, samples) -> None:
        """Seed the memory tier with an already-extracted SampleSet."""
        self._samplesets[key.digest()] = samples

    # -- simulations -------------------------------------------------------

    def simulation(self, key: SimulationKey, build: Callable[[], object]):
        """The campaign for ``key``: memory, then disk, then ``build()``."""
        counters = self.counters["simulation"]
        t0 = time.perf_counter()
        digest = key.digest()
        cached = self._simulations.get(digest)
        if cached is not None:
            counters.memory_hits += 1
            self._note("simulation", "memory", t0)
            return cached
        loaded = self._load_simulation(key, digest)
        if loaded is not None:
            counters.disk_hits += 1
            self._simulations[digest] = loaded
            self._note("simulation", "disk", t0)
            return loaded
        built = build()
        counters.builds += 1
        self._simulations[digest] = built
        self._store_simulation(key, digest, built)
        self._note("simulation", "build", t0)
        return built

    def _simulation_paths(self, digest: str) -> tuple[Path, Path]:
        base = self.root / "simulations" / digest
        return base.with_suffix(".jsonl"), base.with_suffix(".json")

    def _load_simulation(self, key: SimulationKey, digest: str):
        if self.root is None:
            return None
        logs_path, meta_path = self._simulation_paths(digest)
        if not (logs_path.exists() and meta_path.exists()):
            return None
        from repro.experiments.registry import PLATFORMS
        from repro.telemetry.log_store import LogStore

        import repro.simulator.platforms  # noqa: F401  (registers platforms)

        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            store = LogStore.load_jsonl(logs_path)
        except (OSError, ValueError, json.JSONDecodeError):
            return None  # corrupt artifact: fall through to a rebuild
        if store.skipped_lines:
            # The tolerant loader dropped lines: a cached artifact must be
            # byte-perfect, so a torn file falls through to a rebuild.
            return None
        if meta.get("key") != key.payload():
            return None  # digest collision or stale format
        platform = PLATFORMS.resolve(key.platform)(key.scale)
        return CachedSimulation(
            platform=platform, store=store, duration_hours=key.hours
        )

    def _store_simulation(self, key: SimulationKey, digest: str, simulation) -> None:
        if self.root is None:
            return
        logs_path, meta_path = self._simulation_paths(digest)
        # Per-writer tmp name: two processes missing on the same digest
        # must not clobber each other's half-written artifact before the
        # atomic rename publishes it.
        tmp = logs_path.with_suffix(f".jsonl.{os.getpid()}.tmp")
        records = simulation.store.dump_jsonl(tmp)
        tmp.replace(logs_path)
        meta_tmp = meta_path.with_suffix(f".json.{os.getpid()}.tmp")
        meta_tmp.write_text(
            json.dumps({"key": key.payload(), "records": records}, indent=2),
            encoding="utf-8",
        )
        meta_tmp.replace(meta_path)

    # -- sample sets -------------------------------------------------------

    def samples(self, key: SampleSetKey, build: Callable[[], object]):
        """The SampleSet for ``key``: memory, then disk, then ``build()``."""
        counters = self.counters["samples"]
        t0 = time.perf_counter()
        digest = key.digest()
        cached = self._samplesets.get(digest)
        if cached is not None:
            counters.memory_hits += 1
            self._note("samples", "memory", t0)
            return cached
        loaded = self._load_samples(key, digest)
        if loaded is not None:
            counters.disk_hits += 1
            self._samplesets[digest] = loaded
            self._note("samples", "disk", t0)
            return loaded
        built = build()
        counters.builds += 1
        self._samplesets[digest] = built
        self._store_samples(key, digest, built)
        self._note("samples", "build", t0)
        return built

    def _samples_path(self, digest: str) -> Path:
        return self.root / "samples" / f"{digest}.npz"

    def _load_samples(self, key: SampleSetKey, digest: str):
        if self.root is None:
            return None
        path = self._samples_path(digest)
        if not path.exists():
            return None
        from repro.features.sampling import SampleSet

        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"]))
                if meta.get("key") != key.payload():
                    return None
                return SampleSet(
                    X=archive["X"],
                    y=archive["y"].astype(int),
                    times=archive["times"],
                    dimm_ids=archive["dimm_ids"].astype(object),
                    feature_names=list(meta["feature_names"]),
                    feature_groups={
                        name: list(map(int, idx))
                        for name, idx in meta["feature_groups"].items()
                    },
                    platform=meta["platform"],
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None  # corrupt artifact: fall through to a rebuild

    def _store_samples(self, key: SampleSetKey, digest: str, samples) -> None:
        if self.root is None:
            return
        path = self._samples_path(digest)
        meta = json.dumps(
            {
                "key": key.payload(),
                "feature_names": list(samples.feature_names),
                "feature_groups": {
                    name: list(map(int, idx))
                    for name, idx in samples.feature_groups.items()
                },
                "platform": samples.platform,
            }
        )
        tmp = path.with_suffix(f".npz.{os.getpid()}.tmp")
        with tmp.open("wb") as handle:
            np.savez_compressed(
                handle,
                X=samples.X,
                y=samples.y.astype(np.int64),
                times=samples.times,
                dimm_ids=np.asarray(
                    [str(dimm) for dimm in samples.dimm_ids], dtype=str
                ),
                meta=np.asarray(meta),
            )
        tmp.replace(path)

    # -- shard sets --------------------------------------------------------

    def shard_set(self, key: ShardSetKey, build_stores: Callable[[], dict]):
        """The shard-set ``(dir, manifest)`` for ``key``; build on miss.

        ``build_stores()`` returns the ``{platform: TelemetryColumns}``
        fleet to shard — only called when no valid set exists on disk.
        Shard sets are files by nature, so this tier needs a disk root.
        A set whose manifest carries a stale ``SHARD_FORMAT_VERSION`` or
        whose key sidecar mismatches is rebuilt in place.
        """
        if self.root is None:
            raise ValueError(
                "the shard tier needs a disk cache root: ArtifactCache(root)"
            )
        counters = self.counters["shards"]
        t0 = time.perf_counter()
        digest = key.digest()
        cached = self._shard_sets.get(digest)
        if cached is not None:
            counters.memory_hits += 1
            self._note("shards", "memory", t0)
            return cached
        shard_dir = self.root / "shards" / digest
        loaded = self._load_shard_set(key, shard_dir)
        if loaded is not None:
            counters.disk_hits += 1
            self._shard_sets[digest] = loaded
            self._note("shards", "disk", t0)
            return loaded
        from repro.distributed.shards import write_fleet_shards

        manifest = write_fleet_shards(
            build_stores(), key.n_shards, shard_dir
        )
        key_tmp = shard_dir / f"key.json.{os.getpid()}.tmp"
        key_tmp.write_text(
            json.dumps({"key": key.payload()}, indent=2), encoding="utf-8"
        )
        key_tmp.replace(shard_dir / "key.json")
        counters.builds += 1
        built = (shard_dir, manifest)
        self._shard_sets[digest] = built
        self._note("shards", "build", t0)
        return built

    def _load_shard_set(self, key: ShardSetKey, shard_dir: Path):
        from repro.distributed.shards import (
            ShardManifest,
            StaleShardFormatError,
        )

        key_path = shard_dir / "key.json"
        if not key_path.exists():
            return None
        try:
            meta = json.loads(key_path.read_text(encoding="utf-8"))
            manifest = ShardManifest.load(shard_dir)
        except StaleShardFormatError:
            return None  # format bump: rebuild in place
        except (OSError, ValueError, json.JSONDecodeError, KeyError):
            return None  # corrupt artifact: fall through to a rebuild
        if meta.get("key") != key.payload():
            return None  # digest collision or stale key schema
        for entry in manifest.shards:
            if not (shard_dir / entry["path"]).exists():
                return None  # torn set: a shard file is missing
        return shard_dir, manifest

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        return {kind: c.as_dict() for kind, c in self.counters.items()}

    def render_stats(self) -> str:
        return render_cache_stats(self.stats())


#: Display labels for the artifact kinds (shared by every stats renderer).
_KIND_LABELS = {
    "simulation": "simulations",
    "samples": "sample sets",
    "shards": "shard sets",
}


def render_cache_stats(stats: dict[str, dict[str, int]]) -> str:
    """The one human-readable form of :meth:`ArtifactCache.stats` output."""
    return "artifact cache: " + "; ".join(
        f"{_KIND_LABELS.get(kind, kind)} built={c['builds']} "
        f"memory_hits={c['memory_hits']} disk_hits={c['disk_hits']}"
        for kind, c in stats.items()
    )
