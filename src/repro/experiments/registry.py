"""String-keyed registries for models, platforms and scenarios.

The experiment API resolves every name in a :class:`RunSpec` through one of
three registries.  Registration happens where the object is defined — the
model builders in :mod:`repro.evaluation.experiment` carry
``@register_model``, the platform factories in
:mod:`repro.simulator.platforms` carry ``@register_platform``, and the
built-in scenarios in :mod:`repro.experiments.scenarios` carry
``@register_scenario`` — so adding a new model/platform/scenario is one
decorated function, not another hand-rolled CLI entry point.

This module is a leaf: it imports nothing from ``repro`` so that any layer
(simulator, evaluation, mlops) can register itself without import cycles.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping


class UnknownNameError(KeyError):
    """Lookup of a name that was never registered; lists the valid names."""

    def __init__(self, kind: str, name: str, choices: tuple[str, ...]):
        listing = ", ".join(choices) if choices else "<none registered>"
        super().__init__(f"unknown {kind} {name!r}; registered: {listing}")
        self.kind = kind
        self.name = name
        self.choices = choices


class DuplicateNameError(ValueError):
    """Registration under a name that is already taken."""


class Registry(Mapping):
    """A named mapping of string keys to factories/callables.

    Implements the read-only ``Mapping`` protocol so existing dict-shaped
    consumers (``MODEL_BUILDERS[name]``, ``name in MODEL_BUILDERS``,
    iteration) keep working when pointed at a registry instance.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Callable] = {}

    # -- registration ------------------------------------------------------

    def register(
        self, name: str, obj: Callable | None = None, *, overwrite: bool = False
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering the same object — or a reloaded incarnation of it
        (same module and qualname, as after ``importlib.reload``) — is a
        silent replace; registering a *different* object under a taken
        name raises :class:`DuplicateNameError` unless ``overwrite=True``.
        """

        def _register(target: Callable) -> Callable:
            existing = self._entries.get(name)
            if existing is not None and existing is not target and not overwrite:
                identity = _identity(existing)
                if identity is None or identity != _identity(target):
                    raise DuplicateNameError(
                        f"{self.kind} {name!r} is already registered"
                    )
            self._entries[name] = target
            return target

        if obj is not None:
            return _register(obj)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests)."""
        self._entries.pop(name, None)

    # -- lookup ------------------------------------------------------------

    def resolve(self, name: str) -> Callable:
        """Strict lookup: raises :class:`UnknownNameError` when missing."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    # -- Mapping protocol --------------------------------------------------

    def get(self, name: str, default=None):
        """``Mapping.get`` semantics: ``default`` (not a raise) on a miss."""
        return self._entries.get(name, default)

    def __getitem__(self, name: str) -> Callable:
        # UnknownNameError subclasses KeyError, so dict-shaped consumers'
        # try/except KeyError keeps working — with a better message.
        return self.resolve(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self.names())})"


def _identity(obj: Callable) -> tuple | None:
    """(module, qualname) of a def/class, or None when unavailable."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if module is None or qualname is None:
        return None
    return (module, qualname)


#: Model builders: ``(feature_names, seed) -> model``.
MODELS = Registry("model")
#: Platform factories: ``(scale) -> PlatformSpec``.
PLATFORMS = Registry("platform")
#: Scenarios: ``(RunContext) -> list[Cell]``.
SCENARIOS = Registry("scenario")

register_model = MODELS.register
register_platform = PLATFORMS.register
register_scenario = SCENARIOS.register
