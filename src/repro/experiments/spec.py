"""Declarative run specification: one JSON-serialisable object per study.

A :class:`RunSpec` names a scenario plus every knob the scenario needs —
platforms, models, population scale, campaign length, seed, extraction
engine — and nothing else.  The CLI builds one from ``repro run <scenario>
[--set key=value]`` or loads one from ``--spec spec.json``; programmatic
callers construct it directly and hand it to
:func:`repro.experiments.run_spec`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

#: Engines accepted by ``build_samples`` (mirrored here so the spec module
#: stays import-free; validated for real against the pipeline at run time).
ENGINE_CHOICES = ("fleet", "batch", "per_sample")

_DEFAULT_PLATFORMS = ("intel_purley", "intel_whitley", "k920")
_DEFAULT_MODELS = ("risky_ce_pattern", "random_forest", "lightgbm")


@dataclass(frozen=True)
class RunSpec:
    """Everything one scenario run depends on, in one declarative value.

    ``(platform, scale, seed, hours)`` identify a simulation artifact and
    ``max_samples_per_dimm`` (through the derived protocol) a SampleSet
    artifact in the :class:`~repro.experiments.cache.ArtifactCache`;
    ``engine``/``workers`` only pick *how* samples are built (all engines
    are bit-identical), so they are excluded from cache keys.
    """

    scenario: str = "single_platform"
    platforms: tuple[str, ...] = _DEFAULT_PLATFORMS
    models: tuple[str, ...] = _DEFAULT_MODELS
    scale: float = 0.25
    hours: float = 2880.0
    seed: int = 7
    max_samples_per_dimm: int = 16
    engine: str = "fleet"
    workers: int | None = None
    cache_dir: str | None = None
    #: Per-platform ``scale`` / ``hours`` overrides for heterogeneous
    #: fleets within one scenario, e.g. ``{"k920": {"scale": 0.5}}``.
    #: Overridden values flow into the per-platform simulation cache keys
    #: and temporal splits; platforms without an entry use the spec-wide
    #: ``scale`` / ``hours``.
    platform_overrides: dict = field(default_factory=dict)
    #: Free-form scenario parameters (forward compatibility for registered
    #: third-party scenarios); must be JSON-serialisable.
    params: dict = field(default_factory=dict)

    # -- derived configuration --------------------------------------------

    def protocol(self):
        """The :class:`ExperimentProtocol` this spec implies (lazy import)."""
        from repro.evaluation.protocol import ExperimentProtocol
        from repro.features.sampling import SamplingParams

        return ExperimentProtocol(
            scale=self.scale,
            duration_hours=self.hours,
            seed=self.seed,
            sampling=SamplingParams(max_samples_per_dimm=self.max_samples_per_dimm),
        )

    def effective_scale(self, platform: str) -> float:
        """The platform's fleet scale (override, else the spec-wide value)."""
        return float(self.platform_overrides.get(platform, {}).get(
            "scale", self.scale
        ))

    def effective_hours(self, platform: str) -> float:
        """The platform's campaign length (override, else spec-wide)."""
        return float(self.platform_overrides.get(platform, {}).get(
            "hours", self.hours
        ))

    def validate(self) -> "RunSpec":
        """Cheap structural checks (registry checks happen at run time)."""
        if not self.platforms:
            raise ValueError("spec.platforms must name at least one platform")
        if not self.models:
            raise ValueError("spec.models must name at least one model")
        if self.scale <= 0:
            raise ValueError("spec.scale must be positive")
        if self.hours <= 0:
            raise ValueError("spec.hours must be positive")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"spec.engine {self.engine!r} not in {ENGINE_CHOICES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("spec.workers must be >= 1 (or None)")
        if len(set(self.platforms)) != len(self.platforms):
            raise ValueError("spec.platforms contains duplicates")
        unknown_platforms = set(self.platform_overrides) - set(self.platforms)
        if unknown_platforms:
            raise ValueError(
                f"platform_overrides for platforms not in spec.platforms: "
                f"{sorted(unknown_platforms)}"
            )
        for platform, overrides in self.platform_overrides.items():
            if not isinstance(overrides, dict):
                raise ValueError(
                    f"platform_overrides[{platform!r}] must be a dict"
                )
            unknown = set(overrides) - {"scale", "hours"}
            if unknown:
                raise ValueError(
                    f"platform_overrides[{platform!r}] has unknown keys "
                    f"{sorted(unknown)}; valid: ['hours', 'scale']"
                )
            for key, value in overrides.items():
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"platform_overrides[{platform!r}][{key!r}] must be "
                        f"a positive number"
                    )
        return self

    # -- overrides ---------------------------------------------------------

    def with_overrides(self, assignments: list[str] | tuple[str, ...]) -> "RunSpec":
        """Apply ``key=value`` strings (the CLI's ``--set``) with coercion.

        ``platform=`` is accepted as a singular alias for ``platforms=``
        (``repro run streaming_replay --set platform=k920``).
        """
        updates = {}
        for assignment in assignments:
            key, _, raw = assignment.partition("=")
            if not _:
                raise ValueError(
                    f"bad --set {assignment!r}: expected key=value"
                )
            key = key.strip()
            canonical = "platforms" if key == "platform" else key
            updates[canonical] = _coerce(key, raw.strip())
        return dataclasses.replace(self, **updates)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["platforms"] = list(self.platforms)
        payload["models"] = list(self.models)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec keys {sorted(unknown)}; valid: {sorted(known)}"
            )
        data = dict(payload)
        for key in ("platforms", "models"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str | Path) -> "RunSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_json_file(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )


_FIELD_KINDS = {
    "scenario": "str",
    "engine": "str",
    "cache_dir": "optional_str",
    "platform": "tuple",  # singular alias for platforms
    "platforms": "tuple",
    "models": "tuple",
    "scale": "float",
    "hours": "float",
    "seed": "int",
    "max_samples_per_dimm": "int",
    "workers": "optional_int",
    "platform_overrides": "platform_overrides",
    "params": "json",
}


def _coerce(key: str, raw: str):
    """Parse one ``--set`` value according to the spec field's type."""
    kind = _FIELD_KINDS.get(key)
    if kind is None:
        raise ValueError(
            f"unknown RunSpec key {key!r}; valid: {sorted(_FIELD_KINDS)}"
        )
    if kind == "tuple":
        return tuple(part.strip() for part in raw.split(",") if part.strip())
    if kind == "float":
        return float(raw)
    if kind == "int":
        return int(raw)
    if kind == "optional_int":
        return None if raw.lower() in ("", "none") else int(raw)
    if kind == "optional_str":
        return None if raw.lower() in ("", "none") else raw
    if kind == "platform_overrides":
        return _parse_platform_overrides(raw)
    if kind == "json":
        return json.loads(raw) if raw else {}
    return raw


def _parse_platform_overrides(raw: str) -> dict:
    """``k920:scale=0.5,k920:hours=1440`` -> ``{"k920": {...}}``.

    A JSON object is accepted as well (the round-trip form).
    """
    raw = raw.strip()
    if not raw:
        return {}
    if raw.startswith("{"):
        return json.loads(raw)
    overrides: dict[str, dict] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        target, sep, assignment = entry.partition(":")
        key, sep2, value = assignment.partition("=")
        if not sep or not sep2:
            raise ValueError(
                f"bad platform override {entry!r}: expected "
                f"platform:key=value"
            )
        overrides.setdefault(target.strip(), {})[key.strip()] = float(value)
    return overrides
