"""Declarative run specification: one JSON-serialisable object per study.

A :class:`RunSpec` names a scenario plus every knob the scenario needs —
platforms, models, population scale, campaign length, seed, extraction
engine — and nothing else.  The CLI builds one from ``repro run <scenario>
[--set key=value]`` or loads one from ``--spec spec.json``; programmatic
callers construct it directly and hand it to
:func:`repro.experiments.run_spec`.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

#: Engines accepted by ``build_samples`` (mirrored here so the spec module
#: stays import-free; validated for real against the pipeline at run time).
ENGINE_CHOICES = ("fleet", "batch", "per_sample")

_DEFAULT_PLATFORMS = ("intel_purley", "intel_whitley", "k920")
_DEFAULT_MODELS = ("risky_ce_pattern", "random_forest", "lightgbm")


@dataclass(frozen=True)
class RunSpec:
    """Everything one scenario run depends on, in one declarative value.

    ``(platform, scale, seed, hours)`` identify a simulation artifact and
    ``max_samples_per_dimm`` (through the derived protocol) a SampleSet
    artifact in the :class:`~repro.experiments.cache.ArtifactCache`;
    ``engine``/``workers`` only pick *how* samples are built (all engines
    are bit-identical), so they are excluded from cache keys.
    """

    scenario: str = "single_platform"
    platforms: tuple[str, ...] = _DEFAULT_PLATFORMS
    models: tuple[str, ...] = _DEFAULT_MODELS
    scale: float = 0.25
    hours: float = 2880.0
    seed: int = 7
    max_samples_per_dimm: int = 16
    engine: str = "fleet"
    workers: int | None = None
    cache_dir: str | None = None
    #: Per-platform ``scale`` / ``hours`` overrides for heterogeneous
    #: fleets within one scenario, e.g. ``{"k920": {"scale": 0.5}}``.
    #: Overridden values flow into the per-platform simulation cache keys
    #: and temporal splits; platforms without an entry use the spec-wide
    #: ``scale`` / ``hours``.
    platform_overrides: dict = field(default_factory=dict)
    #: Free-form scenario parameters (forward compatibility for registered
    #: third-party scenarios); must be JSON-serialisable.
    params: dict = field(default_factory=dict)

    # -- derived configuration --------------------------------------------

    def protocol(self):
        """The :class:`ExperimentProtocol` this spec implies (lazy import)."""
        from repro.evaluation.protocol import ExperimentProtocol
        from repro.features.sampling import SamplingParams

        return ExperimentProtocol(
            scale=self.scale,
            duration_hours=self.hours,
            seed=self.seed,
            sampling=SamplingParams(max_samples_per_dimm=self.max_samples_per_dimm),
        )

    def effective_scale(self, platform: str) -> float:
        """The platform's fleet scale (override, else the spec-wide value)."""
        return float(self.platform_overrides.get(platform, {}).get(
            "scale", self.scale
        ))

    def effective_hours(self, platform: str) -> float:
        """The platform's campaign length (override, else spec-wide)."""
        return float(self.platform_overrides.get(platform, {}).get(
            "hours", self.hours
        ))

    def validate(self) -> "RunSpec":
        """Cheap structural checks (registry checks happen at run time)."""
        if not isinstance(self.params, dict):
            raise ValueError(
                f"spec.params must be a dict, got {type(self.params).__name__}"
            )
        try:
            json.dumps(self.params)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"spec.params must be JSON-serialisable (it is part of the "
                f"spec's JSON round-trip): {error}"
            ) from None
        if not self.platforms:
            raise ValueError("spec.platforms must name at least one platform")
        if not self.models:
            raise ValueError("spec.models must name at least one model")
        if self.scale <= 0:
            raise ValueError("spec.scale must be positive")
        if self.hours <= 0:
            raise ValueError("spec.hours must be positive")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"spec.engine {self.engine!r} not in {ENGINE_CHOICES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("spec.workers must be >= 1 (or None)")
        if len(set(self.platforms)) != len(self.platforms):
            raise ValueError("spec.platforms contains duplicates")
        unknown_platforms = set(self.platform_overrides) - set(self.platforms)
        if unknown_platforms:
            raise ValueError(
                f"platform_overrides for platforms not in spec.platforms: "
                f"{sorted(unknown_platforms)}"
            )
        for platform, overrides in self.platform_overrides.items():
            if not isinstance(overrides, dict):
                raise ValueError(
                    f"platform_overrides[{platform!r}] must be a dict"
                )
            unknown = set(overrides) - {"scale", "hours"}
            if unknown:
                raise ValueError(
                    f"platform_overrides[{platform!r}] has unknown keys "
                    f"{sorted(unknown)}; valid: ['hours', 'scale']"
                )
            for key, value in overrides.items():
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"platform_overrides[{platform!r}][{key!r}] must be "
                        f"a positive number"
                    )
        return self

    # -- overrides ---------------------------------------------------------

    def with_overrides(self, assignments: list[str] | tuple[str, ...]) -> "RunSpec":
        """Apply ``key=value`` strings (the CLI's ``--set``) with coercion.

        ``platform=`` is accepted as a singular alias for ``platforms=``
        (``repro run streaming_replay --set platform=k920``).

        Scenario parameters support **dotted paths with JSON values** that
        merge instead of clobbering, so nested payloads (per-platform model
        assignments, policy budgets) build up across repeated ``--set``::

            --set 'params.assignments={"k920": {"train_platform": "intel_purley"}}'
            --set params.budget.vm_migrate=2

        Values are parsed as JSON; a bare word falls back to a string, but
        anything that *starts* like JSON must parse — with the offending
        assignment named in the error.  Everything coerced here survives
        the spec's JSON round-trip (``to_json_file`` / ``from_json_file``)
        unchanged.
        """
        updates: dict = {}
        for assignment in assignments:
            key, sep, raw = assignment.partition("=")
            if not sep:
                raise ValueError(
                    f"bad --set {assignment!r}: expected key=value"
                )
            key = key.strip()
            raw = raw.strip()
            if key == "params" or key.startswith("params."):
                params = updates.get("params")
                if params is None:
                    params = copy.deepcopy(self.params)
                if key == "params":
                    params = _parse_params_object(raw, assignment)
                else:
                    path = key.split(".")[1:]
                    if not all(path):
                        raise ValueError(
                            f"bad --set {assignment!r}: empty segment in "
                            f"dotted params path"
                        )
                    _deep_set(
                        params, path, _coerce_json_value(raw, assignment),
                        assignment,
                    )
                updates["params"] = params
                continue
            canonical = "platforms" if key == "platform" else key
            updates[canonical] = _coerce(key, raw)
        return dataclasses.replace(self, **updates)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["platforms"] = list(self.platforms)
        payload["models"] = list(self.models)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec keys {sorted(unknown)}; valid: {sorted(known)}"
            )
        data = dict(payload)
        for key in ("platforms", "models"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str | Path) -> "RunSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_json_file(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )


_FIELD_KINDS = {
    "scenario": "str",
    "engine": "str",
    "cache_dir": "optional_str",
    "platform": "tuple",  # singular alias for platforms
    "platforms": "tuple",
    "models": "tuple",
    "scale": "float",
    "hours": "float",
    "seed": "int",
    "max_samples_per_dimm": "int",
    "workers": "optional_int",
    "platform_overrides": "platform_overrides",
    "params": "json",
}


def _coerce(key: str, raw: str):
    """Parse one ``--set`` value according to the spec field's type."""
    kind = _FIELD_KINDS.get(key)
    if kind is None:
        raise ValueError(
            f"unknown RunSpec key {key!r}; valid: {sorted(_FIELD_KINDS)}"
        )
    if kind == "tuple":
        return tuple(part.strip() for part in raw.split(",") if part.strip())
    if kind == "float":
        return float(raw)
    if kind == "int":
        return int(raw)
    if kind == "optional_int":
        return None if raw.lower() in ("", "none") else int(raw)
    if kind == "optional_str":
        return None if raw.lower() in ("", "none") else raw
    if kind == "platform_overrides":
        return _parse_platform_overrides(raw)
    if kind == "json":  # reached via programmatic _coerce("params", ...)
        return _parse_params_object(raw, f"params={raw}")
    return raw


def _parse_params_object(raw: str, assignment: str) -> dict:
    """A whole ``params=`` assignment: must be a JSON object."""
    if not raw:
        return {}
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"bad --set {assignment!r}: params must be a JSON object "
            f"({error})"
        ) from None
    if not isinstance(value, dict):
        raise ValueError(
            f"bad --set {assignment!r}: params must be a JSON object, got "
            f"{type(value).__name__}"
        )
    return value


def _coerce_json_value(raw: str, assignment: str):
    """One dotted-path params value: JSON, with a bare-string fallback.

    ``0.5`` -> float, ``true`` -> bool, ``{"a": 1}`` -> dict,
    ``lightgbm`` -> the string itself.  Anything that *starts* like JSON
    (brace, bracket, quote, digit, sign) but fails to parse raises — a
    truncated object must not silently become a string.
    """
    if not raw:
        return ""
    try:
        return json.loads(raw)
    except json.JSONDecodeError as error:
        if raw[0] in "{[\"-+." or raw[0].isdigit():
            raise ValueError(
                f"bad --set {assignment!r}: value is not valid JSON "
                f"({error}); quote strings as \"...\""
            ) from None
        return raw


def _deep_set(params: dict, path: list[str], value, assignment: str) -> None:
    """Set ``params[path[0]][path[1]]... = value``, creating dicts."""
    node = params
    for segment in path[:-1]:
        child = node.get(segment)
        if child is None:
            child = {}
            node[segment] = child
        elif not isinstance(child, dict):
            raise ValueError(
                f"bad --set {assignment!r}: params.{segment} is "
                f"{type(child).__name__}, cannot descend into it"
            )
        node = child
    node[path[-1]] = value


def _parse_platform_overrides(raw: str) -> dict:
    """``k920:scale=0.5,k920:hours=1440`` -> ``{"k920": {...}}``.

    A JSON object is accepted as well (the round-trip form).
    """
    raw = raw.strip()
    if not raw:
        return {}
    if raw.startswith("{"):
        return json.loads(raw)
    overrides: dict[str, dict] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        target, sep, assignment = entry.partition(":")
        key, sep2, value = assignment.partition("=")
        if not sep or not sep2:
            raise ValueError(
                f"bad platform override {entry!r}: expected "
                f"platform:key=value"
            )
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"bad platform override {entry!r}: {key.strip()!r} must be "
                f"numeric, got {value!r}"
            ) from None
        overrides.setdefault(target.strip(), {})[key.strip()] = number
    return overrides
