"""Mitigation orchestration after a failure prediction.

Figure 2 of the paper: once a DIMM is predicted to fail, the cloud service
tries, in order, (1) live VM migration, (2) memory mitigation (sparing /
page offlining), and falls back to (3) cold migration — the path that
actually interrupts VMs.  The fraction of predicted-positive servers that
end up cold-migrated is the ``y_c`` of the VIRR cost model
(:mod:`repro.ml.virr`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class MitigationPath(enum.Enum):
    """Terminal path taken for one predicted-positive server."""

    LIVE_MIGRATION = "live_migration"
    MEMORY_MITIGATION = "memory_mitigation"
    COLD_MIGRATION = "cold_migration"


@dataclass(frozen=True)
class MitigationPolicy:
    """Success probabilities of the non-interrupting paths.

    Defaults are chosen so the overall cold-migration fraction is about the
    paper's conservative y_c = 0.1: live migration succeeds ~80% of the
    time, memory mitigation rescues half of the remainder.
    """

    live_migration_success: float = 0.80
    memory_mitigation_success: float = 0.50

    def __post_init__(self) -> None:
        for name in ("live_migration_success", "memory_mitigation_success"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def expected_cold_fraction(self) -> float:
        """Expected y_c under this policy."""
        return (1.0 - self.live_migration_success) * (
            1.0 - self.memory_mitigation_success
        )


class MitigationOrchestrator:
    """Draws the mitigation path for each predicted failure."""

    def __init__(
        self,
        policy: MitigationPolicy | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.policy = policy or MitigationPolicy()
        self.rng = rng or np.random.default_rng(0)
        self.path_counts: dict[MitigationPath, int] = {
            path: 0 for path in MitigationPath
        }

    def mitigate(self) -> MitigationPath:
        """Resolve one predicted-positive server to its terminal path."""
        if self.rng.random() < self.policy.live_migration_success:
            path = MitigationPath.LIVE_MIGRATION
        elif self.rng.random() < self.policy.memory_mitigation_success:
            path = MitigationPath.MEMORY_MITIGATION
        else:
            path = MitigationPath.COLD_MIGRATION
        self.path_counts[path] += 1
        return path

    @property
    def observed_cold_fraction(self) -> float:
        """Empirical y_c over every mitigation resolved so far."""
        total = sum(self.path_counts.values())
        if total == 0:
            return 0.0
        return self.path_counts[MitigationPath.COLD_MIGRATION] / total
