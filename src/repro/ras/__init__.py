"""Memory RAS techniques: storms, sparing, page offlining, mitigation."""

from repro.ras.ce_storm import CeStormDetector, StormAction, StormConfig
from repro.ras.mitigation import (
    MitigationOrchestrator,
    MitigationPath,
    MitigationPolicy,
)
from repro.ras.page_offlining import (
    OffliningResult,
    PageOffliningController,
    PageOffliningPolicy,
)
from repro.ras.sparing import (
    SparingBudget,
    SparingController,
    SparingKind,
    SparingPolicy,
    SparingResult,
)

__all__ = [
    "CeStormDetector",
    "MitigationOrchestrator",
    "MitigationPath",
    "MitigationPolicy",
    "OffliningResult",
    "PageOffliningController",
    "PageOffliningPolicy",
    "SparingBudget",
    "SparingController",
    "SparingKind",
    "SparingPolicy",
    "SparingResult",
    "StormAction",
    "StormConfig",
]
