"""CE-storm detection and suppression.

A CE storm is a high frequency of CE interruptions in a brief timeframe
(paper, footnote 3: "CE interruptions repeatedly occur multiple times, e.g.,
10 times").  Platforms suppress CE reporting during a storm to prevent
service degradation (Section II-C), which also shapes what the failure
predictor gets to see: during suppression only the storm event itself is
logged, not the individual CEs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class StormAction(enum.Enum):
    """What the collector should do with one incoming CE."""

    LOG = "log"  # normal operation: log the CE
    STORM_START = "storm_start"  # log the CE and emit a storm event
    SUPPRESS = "suppress"  # storm ongoing: drop the CE


@dataclass
class StormConfig:
    """Detector thresholds.

    A storm starts when ``threshold`` CEs arrive within ``window_hours``;
    suppression lasts until the DIMM stays quiet for ``cooldown_hours``.
    """

    threshold: int = 10
    window_hours: float = 1.0 / 60.0  # one minute
    cooldown_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.threshold < 2:
            raise ValueError("threshold must be >= 2")
        if self.window_hours <= 0 or self.cooldown_hours <= 0:
            raise ValueError("windows must be positive")


@dataclass
class _DimmStormState:
    recent: deque = field(default_factory=deque)
    in_storm: bool = False
    last_ce_hour: float = float("-inf")
    storm_count: int = 0


class CeStormDetector:
    """Per-DIMM sliding-window storm detector with hysteresis."""

    def __init__(self, config: StormConfig | None = None):
        self.config = config or StormConfig()
        self._states: dict[str, _DimmStormState] = {}

    def observe(self, dimm_id: str, timestamp_hours: float) -> StormAction:
        """Feed one CE arrival; returns the action for this CE.

        Arrivals must be fed in non-decreasing timestamp order per DIMM.
        """
        state = self._states.setdefault(dimm_id, _DimmStormState())
        config = self.config

        if state.in_storm:
            if timestamp_hours - state.last_ce_hour >= config.cooldown_hours:
                state.in_storm = False
                state.recent.clear()
            else:
                state.last_ce_hour = timestamp_hours
                return StormAction.SUPPRESS

        state.last_ce_hour = timestamp_hours
        state.recent.append(timestamp_hours)
        horizon = timestamp_hours - config.window_hours
        while state.recent and state.recent[0] < horizon:
            state.recent.popleft()

        if len(state.recent) >= config.threshold:
            state.in_storm = True
            state.storm_count += 1
            state.recent.clear()
            return StormAction.STORM_START
        return StormAction.LOG

    def storm_count(self, dimm_id: str) -> int:
        """Number of storms this DIMM has triggered so far."""
        state = self._states.get(dimm_id)
        return state.storm_count if state else 0

    def in_storm(self, dimm_id: str) -> bool:
        state = self._states.get(dimm_id)
        return state.in_storm if state else False
