"""Software page offlining (Section II-C).

The OS can retire physical pages whose backing rows keep producing CEs
[Tang et al., DSN'06; Du & Li, MEMSYS'19].  Offlining is cheap but capped:
retiring too many pages wastes memory, so a budget per server applies.
Like hardware sparing, offlining attenuates the CE rate of cell/row-local
faults but does nothing for bank-wide or multi-device faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.faults import Fault, FaultMode


@dataclass(frozen=True)
class PageOffliningPolicy:
    """When to retire a page and what that does to the fault's CE rate."""

    ce_threshold: int = 8  # CEs from the same row before retiring
    max_pages_per_server: int = 64
    residual_rate_cell: float = 0.02
    residual_rate_row: float = 0.35  # a row spans many pages; one page helps less


@dataclass
class _ServerOffliningState:
    pages_offlined: int = 0
    ce_counts: dict[tuple[str, int, int, int, int], int] = field(
        default_factory=dict
    )  # (dimm, rank, device, bank, row) -> CE count
    retired_rows: set[tuple[str, int, int, int, int]] = field(default_factory=set)


@dataclass(frozen=True)
class OffliningResult:
    offlined: bool
    attenuation: float


class PageOffliningController:
    """Per-server page-retirement state machine."""

    def __init__(self, policy: PageOffliningPolicy | None = None) -> None:
        self.policy = policy or PageOffliningPolicy()
        self._states: dict[str, _ServerOffliningState] = {}

    def observe_ce(
        self, server_id: str, dimm_id: str, fault: Fault, row: int
    ) -> OffliningResult:
        """Count one CE against its row; retire the page at the threshold."""
        if fault.mode not in (FaultMode.CELL, FaultMode.ROW):
            return OffliningResult(offlined=False, attenuation=1.0)

        state = self._states.setdefault(server_id, _ServerOffliningState())
        key = (dimm_id, fault.rank, fault.devices[0], fault.bank, row)
        if key in state.retired_rows:
            return OffliningResult(offlined=False, attenuation=1.0)

        count = state.ce_counts.get(key, 0) + 1
        state.ce_counts[key] = count
        if count < self.policy.ce_threshold:
            return OffliningResult(offlined=False, attenuation=1.0)
        if state.pages_offlined >= self.policy.max_pages_per_server:
            return OffliningResult(offlined=False, attenuation=1.0)

        state.pages_offlined += 1
        state.retired_rows.add(key)
        if fault.mode is FaultMode.CELL:
            attenuation = self.policy.residual_rate_cell
        else:
            attenuation = self.policy.residual_rate_row
        return OffliningResult(offlined=True, attenuation=attenuation)

    def pages_offlined(self, server_id: str) -> int:
        state = self._states.get(server_id)
        return state.pages_offlined if state else 0
