"""Hardware sparing techniques (Section II-C).

Server-grade RAS avoids faulty regions with sparing resources:

* **PCLS** (Partial Cache Line Sparing): a small on-controller store that
  remaps individual faulty cache-line segments (cell-level).
* **Row sparing / PPR** (Post Package Repair): spare rows inside each bank
  that can replace a faulty row.
* **Bank/chip sparing (ADDDC-class)**: maps a failing device region out by
  running the rank in a degraded "virtual lockstep" mode.

The controller tracks per-DIMM budgets and answers with an *attenuation
factor* — how much of the fault's CE rate survives the repair — which the
fleet simulator multiplies into subsequent activations.  Sparing reduces,
but does not eliminate, escalation risk (the paper notes these techniques
"may increase redundancy and overhead ... limiting their universal
applicability").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.faults import Fault, FaultMode


class SparingKind(enum.Enum):
    PCLS = "pcls"
    ROW = "row"
    BANK = "bank"


@dataclass(frozen=True)
class SparingBudget:
    """Spare resources available on one DIMM."""

    pcls_entries: int = 16
    spare_rows_per_bank: int = 2
    bank_spares_per_rank: int = 1


@dataclass(frozen=True)
class SparingPolicy:
    """Which repair to attempt per fault mode and its residual CE fraction."""

    #: Fraction of the original CE rate that remains after each repair kind.
    residual_rate: dict[SparingKind, float] = field(
        default_factory=lambda: {
            SparingKind.PCLS: 0.05,
            SparingKind.ROW: 0.30,
            SparingKind.BANK: 0.25,
        }
    )

    def repair_for(self, mode: FaultMode) -> SparingKind | None:
        if mode is FaultMode.CELL:
            return SparingKind.PCLS
        if mode in (FaultMode.ROW, FaultMode.COLUMN):
            return SparingKind.ROW
        if mode is FaultMode.BANK:
            return SparingKind.BANK
        return None


@dataclass
class _DimmSparingState:
    pcls_used: int = 0
    rows_used: dict[tuple[int, int, int], int] = field(default_factory=dict)
    banks_used: dict[int, int] = field(default_factory=dict)
    repaired_faults: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class SparingResult:
    applied: bool
    kind: SparingKind | None
    attenuation: float  # multiply the fault's CE rate by this


class SparingController:
    """Tracks sparing budgets across a fleet and applies repairs."""

    def __init__(
        self,
        budget: SparingBudget | None = None,
        policy: SparingPolicy | None = None,
    ) -> None:
        self.budget = budget or SparingBudget()
        self.policy = policy or SparingPolicy()
        self._states: dict[str, _DimmSparingState] = {}

    def try_repair(self, dimm_id: str, fault: Fault) -> SparingResult:
        """Attempt the policy-selected repair for ``fault`` on ``dimm_id``."""
        state = self._states.setdefault(dimm_id, _DimmSparingState())
        if fault.fault_id in state.repaired_faults:
            return SparingResult(applied=False, kind=None, attenuation=1.0)

        kind = self.policy.repair_for(fault.mode)
        if kind is None:
            return SparingResult(applied=False, kind=None, attenuation=1.0)

        if not self._consume_budget(state, kind, fault):
            return SparingResult(applied=False, kind=kind, attenuation=1.0)

        state.repaired_faults.add(fault.fault_id)
        return SparingResult(
            applied=True,
            kind=kind,
            attenuation=self.policy.residual_rate[kind],
        )

    def _consume_budget(
        self, state: _DimmSparingState, kind: SparingKind, fault: Fault
    ) -> bool:
        if kind is SparingKind.PCLS:
            if state.pcls_used >= self.budget.pcls_entries:
                return False
            state.pcls_used += 1
            return True
        if kind is SparingKind.ROW:
            key = (fault.rank, fault.devices[0], fault.bank)
            used = state.rows_used.get(key, 0)
            if used >= self.budget.spare_rows_per_bank:
                return False
            state.rows_used[key] = used + 1
            return True
        used = state.banks_used.get(fault.rank, 0)
        if used >= self.budget.bank_spares_per_rank:
            return False
        state.banks_used[fault.rank] = used + 1
        return True

    def repairs_applied(self, dimm_id: str) -> int:
        state = self._states.get(dimm_id)
        return len(state.repaired_faults) if state else 0
