"""Dataset description statistics (paper Table I).

Computed from observable log records only: DIMMs with CEs, DIMMs with UEs,
and the split of UE DIMMs into predictable (CEs seen before the first UE)
vs sudden (no prior CEs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.log_store import LogStore


@dataclass(frozen=True)
class DatasetStats:
    """One platform's row of Table I, from our logs."""

    platform: str
    dimms_with_ces: int
    dimms_with_ues: int
    predictable_ue_dimms: int
    sudden_ue_dimms: int

    @property
    def predictable_share(self) -> float:
        if self.dimms_with_ues == 0:
            return 0.0
        return self.predictable_ue_dimms / self.dimms_with_ues

    @property
    def sudden_share(self) -> float:
        if self.dimms_with_ues == 0:
            return 0.0
        return self.sudden_ue_dimms / self.dimms_with_ues

    @property
    def ue_rate_among_ce_dimms(self) -> float:
        """UE incidence among DIMMs that logged CEs (predictable UEs only)."""
        if self.dimms_with_ces == 0:
            return 0.0
        return self.predictable_ue_dimms / self.dimms_with_ces


def dataset_stats(platform: str, store: LogStore) -> DatasetStats:
    """Compute Table-I statistics for one platform's log store."""
    dimms_with_ces = set(store.dimm_ids_with_ces())
    ue_dimms: set[str] = set()
    sudden_dimms: set[str] = set()
    for ue in store.ues:
        ue_dimms.add(ue.dimm_id)
        first_ce = store.first_ce_hour(ue.dimm_id)
        if first_ce is None or first_ce >= ue.timestamp_hours:
            sudden_dimms.add(ue.dimm_id)
    sudden_dimms &= ue_dimms
    predictable = len(ue_dimms) - len(sudden_dimms)
    return DatasetStats(
        platform=platform,
        dimms_with_ces=len(dimms_with_ces),
        dimms_with_ues=len(ue_dimms),
        predictable_ue_dimms=predictable,
        sudden_ue_dimms=len(sudden_dimms),
    )


def table1_series(stores: dict[str, LogStore]) -> dict[str, DatasetStats]:
    """Table I across platforms."""
    return {
        platform: dataset_stats(platform, store)
        for platform, store in stores.items()
    }
