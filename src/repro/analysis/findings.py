"""Programmatic checks of the paper's four findings.

Each check consumes only the artifacts our pipelines produce (Table I
statistics, Figure 4/5 analyses, Table II results) and returns a
:class:`FindingCheck` with a pass flag and a human-readable explanation.
The integration tests and the findings benchmark assert these on freshly
simulated fleets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bit_patterns import (
    BitPatternStat,
    interval_effect_size,
    peak_value,
)
from repro.analysis.dataset_stats import DatasetStats
from repro.analysis.ue_rates import UERateStat

Fig4 = dict[str, dict[str, UERateStat]]
Fig5 = dict[str, dict[str, dict[int, BitPatternStat]]]


@dataclass(frozen=True)
class FindingCheck:
    finding: int
    description: str
    passed: bool
    details: str


def check_finding1(stats: dict[str, DatasetStats]) -> FindingCheck:
    """Finding 1: UE and sudden-UE rates vary between X86 and ARM systems."""
    purley = stats["intel_purley"]
    whitley = stats["intel_whitley"]
    k920 = stats["k920"]
    conditions = {
        "purley predictable majority": purley.predictable_share > 0.5,
        "whitley sudden majority": whitley.sudden_share > 0.5,
        "k920 predictable dominant": k920.predictable_share
        > purley.predictable_share,
    }
    details = "; ".join(
        f"{name}: {'ok' if ok else 'FAIL'}" for name, ok in conditions.items()
    )
    details += (
        f" (predictable shares: purley={purley.predictable_share:.2f},"
        f" whitley={whitley.predictable_share:.2f},"
        f" k920={k920.predictable_share:.2f})"
    )
    return FindingCheck(
        finding=1,
        description="UE / sudden-UE mix differs across CPU architectures",
        passed=all(conditions.values()),
        details=details,
    )


def check_finding2(fig4: Fig4) -> FindingCheck:
    """Finding 2: single-device faults dominate on Purley only."""
    def rate(platform: str, category: str) -> float:
        return fig4[platform][category].rate

    conditions = {
        "purley single >= multi": rate("intel_purley", "single_device")
        >= rate("intel_purley", "multi_device"),
        "whitley multi > single": rate("intel_whitley", "multi_device")
        > rate("intel_whitley", "single_device"),
        "k920 multi > single": rate("k920", "multi_device")
        > rate("k920", "single_device"),
    }
    # "most UEs are attributed to faults in higher-level components":
    for platform in fig4:
        higher = max(rate(platform, "row"), rate(platform, "bank"))
        lower = max(rate(platform, "cell"), rate(platform, "column"))
        conditions[f"{platform} row/bank >= cell/column"] = higher >= lower
    details = "; ".join(
        f"{name}: {'ok' if ok else 'FAIL'}" for name, ok in conditions.items()
    )
    return FindingCheck(
        finding=2,
        description="fault-mode attribution of UEs differs per platform",
        passed=all(conditions.values()),
        details=details,
    )


def check_finding3(fig5: Fig5) -> FindingCheck:
    """Finding 3: bit-level DQ/beat failure patterns are platform-specific."""
    purley = fig5["intel_purley"]
    whitley = fig5["intel_whitley"]
    conditions = {
        "purley dq peak at 2": peak_value(purley["dq_count"]) == 2,
        "whitley dq peak at 4": peak_value(whitley["dq_count"]) == 4,
        "whitley beat peak at 5": peak_value(whitley["beat_count"]) == 5,
        "purley beat-interval peak at 4": peak_value(purley["beat_interval"]) == 4,
        "intervals matter more on purley": interval_effect_size(purley)
        > interval_effect_size(whitley),
    }
    details = "; ".join(
        f"{name}: {'ok' if ok else 'FAIL'}" for name, ok in conditions.items()
    )
    return FindingCheck(
        finding=3,
        description="risky DQ/beat patterns differ between Intel platforms",
        passed=all(conditions.values()),
        details=details,
    )


def check_finding4(f1_by_platform: dict[str, float]) -> FindingCheck:
    """Finding 4: Whitley is the hardest platform to predict on."""
    purley = f1_by_platform["intel_purley"]
    whitley = f1_by_platform["intel_whitley"]
    k920 = f1_by_platform["k920"]
    passed = whitley < purley and whitley < k920
    details = (
        f"best F1: purley={purley:.3f}, whitley={whitley:.3f}, k920={k920:.3f}"
    )
    return FindingCheck(
        finding=4,
        description="prediction efficacy varies across platforms",
        passed=passed,
        details=details,
    )
