"""Bit-level error-pattern analysis (paper Figure 5).

For each DIMM we summarise the DQ/beat structure of its CE history — the
*modal* (most frequent) erroneous-DQ count, beat count, DQ interval and beat
interval across its CE records — then report the relative UE rate of DIMMs
grouped by each value.  This reproduces the four panels per platform of
Figure 5 (x4 devices: DQ count 1-4, beat count 1-8, DQ interval 0-3, beat
interval 0-7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dram.geometry import BURST_LENGTH, X4_DEVICE_WIDTH
from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord

#: Figure-5 panels: attribute name on CERecord -> axis values.
FIG5_DIMENSIONS: dict[str, tuple[int, ...]] = {
    "dq_count": tuple(range(1, X4_DEVICE_WIDTH + 1)),
    "beat_count": tuple(range(1, BURST_LENGTH + 1)),
    "dq_interval": tuple(range(0, X4_DEVICE_WIDTH)),
    "beat_interval": tuple(range(0, BURST_LENGTH)),
}


@dataclass(frozen=True)
class BitPatternStat:
    """Relative UE rate of DIMMs whose modal value of one dimension is x."""

    dimension: str
    value: int
    dimms: int
    dimms_with_ue: int

    @property
    def rate(self) -> float:
        if self.dimms == 0:
            return 0.0
        return self.dimms_with_ue / self.dimms


def modal_value(ces: list[CERecord], dimension: str) -> int | None:
    """The most frequent value of ``dimension`` over a DIMM's CE records.

    Ties break toward the larger value (the riskier interpretation).
    """
    if dimension not in FIG5_DIMENSIONS:
        raise KeyError(f"unknown dimension {dimension!r}")
    if not ces:
        return None
    counts = Counter(getattr(ce, dimension) for ce in ces)
    best = max(counts.items(), key=lambda item: (item[1], item[0]))
    return best[0]


def bit_pattern_rates(
    store: LogStore,
    dimension: str,
) -> dict[int, BitPatternStat]:
    """One Figure-5 panel: relative UE rate vs modal ``dimension`` value."""
    values = FIG5_DIMENSIONS[dimension]
    totals = {value: 0 for value in values}
    with_ue = {value: 0 for value in values}
    for dimm_id in store.dimm_ids_with_ces():
        value = modal_value(store.ces_for_dimm(dimm_id), dimension)
        if value is None or value not in totals:
            continue
        totals[value] += 1
        if store.ues_for_dimm(dimm_id):
            with_ue[value] += 1
    return {
        value: BitPatternStat(
            dimension=dimension,
            value=value,
            dimms=totals[value],
            dimms_with_ue=with_ue[value],
        )
        for value in values
    }


def fig5_panels(store: LogStore) -> dict[str, dict[int, BitPatternStat]]:
    """All four Figure-5 panels for one platform."""
    return {
        dimension: bit_pattern_rates(store, dimension)
        for dimension in FIG5_DIMENSIONS
    }


def peak_value(panel: dict[int, BitPatternStat], min_dimms: int = 5) -> int | None:
    """Axis value with the highest UE rate, ignoring tiny groups."""
    eligible = [stat for stat in panel.values() if stat.dimms >= min_dimms]
    if not eligible:
        return None
    best = max(eligible, key=lambda stat: (stat.rate, stat.value))
    return best.value if best.rate > 0 else None


def interval_effect_size(panels: dict[str, dict[int, BitPatternStat]]) -> float:
    """How much the *interval* panels vary relative to the *count* panels.

    Returns the ratio of (max-min UE rate over interval values) to
    (max-min UE rate over count values); Finding 3 expects this to be
    large on Purley and small on Whitley.
    """
    def spread(dimension: str) -> float:
        rates = [
            stat.rate for stat in panels[dimension].values() if stat.dimms >= 5
        ]
        if len(rates) < 2:
            return 0.0
        return max(rates) - min(rates)

    count_spread = max(spread("dq_count"), spread("beat_count"))
    interval_spread = max(spread("dq_interval"), spread("beat_interval"))
    if count_spread == 0:
        return 0.0
    return interval_spread / count_spread
