"""Fault-mode classification from observed CE logs (paper Section V).

The paper classifies each DIMM's CE history into DRAM-hierarchy fault modes
using thresholds (following [Beigi et al., HPCA'23; Yu et al., DSN'23 and
ICCAD'23]):

* **cell fault** — CEs at one cell exceed a threshold;
* **row fault** — CEs on one row across multiple columns exceed a threshold;
* **column fault** — CEs on one column across multiple rows exceed one;
* **bank fault** — both a row fault and a column fault inside one bank;
* **single-device / multi-device fault** — whether the DIMM's CEs are
  confined to one DRAM device or span several.

Classification reads only observable log records (never ground truth), so
it works identically on simulated and ingested logs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.telemetry.log_store import LogStore
from repro.telemetry.records import CERecord

#: Category keys in the order of the paper's Figure 4 x-axis.
FIG4_CATEGORIES = (
    "cell",
    "column",
    "row",
    "bank",
    "single_device",
    "multi_device",
)


@dataclass(frozen=True)
class FaultThresholds:
    """Detection thresholds, defaults in line with prior studies."""

    cell_ces: int = 2  # repeats at the exact same cell
    row_ces: int = 3  # CEs on one row ...
    row_min_columns: int = 2  # ... spread over at least this many columns
    column_ces: int = 3
    column_min_rows: int = 2

    def __post_init__(self) -> None:
        if min(
            self.cell_ces,
            self.row_ces,
            self.row_min_columns,
            self.column_ces,
            self.column_min_rows,
        ) < 1:
            raise ValueError("all thresholds must be >= 1")


@dataclass(frozen=True)
class DimmFaultModes:
    """Observed fault modes of one DIMM."""

    dimm_id: str
    has_cell: bool
    has_column: bool
    has_row: bool
    has_bank: bool
    is_multi_device: bool
    device_count: int
    ce_count: int

    @property
    def categories(self) -> tuple[str, ...]:
        """Figure-4 categories this DIMM belongs to (non-exclusive)."""
        members = []
        if self.has_cell:
            members.append("cell")
        if self.has_column:
            members.append("column")
        if self.has_row:
            members.append("row")
        if self.has_bank:
            members.append("bank")
        members.append("multi_device" if self.is_multi_device else "single_device")
        return tuple(members)

    @property
    def highest_mode(self) -> str | None:
        """The largest faulty region observed (bank > row > column > cell)."""
        for name, flag in (
            ("bank", self.has_bank),
            ("row", self.has_row),
            ("column", self.has_column),
            ("cell", self.has_cell),
        ):
            if flag:
                return name
        return None


def classify_ces(
    dimm_id: str,
    ces: Sequence[CERecord],
    thresholds: FaultThresholds | None = None,
) -> DimmFaultModes:
    """Classify one DIMM's CE records into fault modes."""
    thresholds = thresholds or FaultThresholds()

    cell_counts: Counter = Counter()
    row_hits: dict[tuple, Counter] = {}  # (rank, dev, bank, row) -> col counter
    column_hits: dict[tuple, Counter] = {}  # (rank, dev, bank, col) -> row counter
    devices: set[int] = set()
    multi_device_bursts = 0

    for ce in ces:
        devices.update(ce.devices)
        if len(ce.devices) >= 2:
            multi_device_bursts += 1
        primary_device = ce.devices[0] if ce.devices else 0
        cell_counts[(ce.rank, primary_device, ce.bank, ce.row, ce.column)] += 1
        row_key = (ce.rank, primary_device, ce.bank, ce.row)
        row_hits.setdefault(row_key, Counter())[ce.column] += 1
        col_key = (ce.rank, primary_device, ce.bank, ce.column)
        column_hits.setdefault(col_key, Counter())[ce.row] += 1

    has_cell = any(count >= thresholds.cell_ces for count in cell_counts.values())

    faulty_row_banks: set[tuple] = set()
    has_row = False
    for (rank, device, bank, _row), columns in row_hits.items():
        total = sum(columns.values())
        if total >= thresholds.row_ces and len(columns) >= thresholds.row_min_columns:
            has_row = True
            faulty_row_banks.add((rank, device, bank))

    faulty_column_banks: set[tuple] = set()
    has_column = False
    for (rank, device, bank, _column), rows in column_hits.items():
        total = sum(rows.values())
        if total >= thresholds.column_ces and len(rows) >= thresholds.column_min_rows:
            has_column = True
            faulty_column_banks.add((rank, device, bank))

    has_bank = bool(faulty_row_banks & faulty_column_banks)

    # Multi-device means errors from several devices within the *same*
    # burst — the condition that defeats Chipkill-class ECC.  Two unrelated
    # single-device faults on different chips stay "single-device".
    return DimmFaultModes(
        dimm_id=dimm_id,
        has_cell=has_cell,
        has_column=has_column,
        has_row=has_row,
        has_bank=has_bank,
        is_multi_device=multi_device_bursts > 0,
        device_count=len(devices),
        ce_count=len(ces),
    )


def classify_store(
    store: LogStore,
    thresholds: FaultThresholds | None = None,
    dimm_ids: Iterable[str] | None = None,
) -> dict[str, DimmFaultModes]:
    """Classify every DIMM with CEs in the store."""
    ids = list(dimm_ids) if dimm_ids is not None else store.dimm_ids_with_ces()
    return {
        dimm_id: classify_ces(dimm_id, store.ces_for_dimm(dimm_id), thresholds)
        for dimm_id in ids
    }
