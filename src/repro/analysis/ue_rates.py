"""Relative UE rates per fault category (paper Figure 4).

Following the paper's methodology (itself after [Meza'15; Sridharan'15;
Cheng'22]): group DIMMs by the fault categories their CE history exhibits,
then report, per category, the fraction of member DIMMs that went on to an
uncorrectable error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fault_modes import (
    FIG4_CATEGORIES,
    DimmFaultModes,
    FaultThresholds,
    classify_store,
)
from repro.telemetry.log_store import LogStore


@dataclass(frozen=True)
class UERateStat:
    """Relative UE rate of one DIMM category."""

    category: str
    dimms: int
    dimms_with_ue: int

    @property
    def rate(self) -> float:
        if self.dimms == 0:
            return 0.0
        return self.dimms_with_ue / self.dimms


def relative_ue_rates(
    store: LogStore,
    thresholds: FaultThresholds | None = None,
    classifications: dict[str, DimmFaultModes] | None = None,
) -> dict[str, UERateStat]:
    """Figure-4 statistics for one platform's log store."""
    classifications = classifications or classify_store(store, thresholds)
    totals = {category: 0 for category in FIG4_CATEGORIES}
    with_ue = {category: 0 for category in FIG4_CATEGORIES}
    for dimm_id, modes in classifications.items():
        had_ue = bool(store.ues_for_dimm(dimm_id))
        for category in modes.categories:
            totals[category] += 1
            if had_ue:
                with_ue[category] += 1
    return {
        category: UERateStat(
            category=category,
            dimms=totals[category],
            dimms_with_ue=with_ue[category],
        )
        for category in FIG4_CATEGORIES
    }


def fig4_series(
    stores: dict[str, LogStore],
    thresholds: FaultThresholds | None = None,
) -> dict[str, dict[str, UERateStat]]:
    """Figure 4 across platforms: platform -> category -> stat."""
    return {
        platform: relative_ue_rates(store, thresholds)
        for platform, store in stores.items()
    }
