"""Per-manufacturer / per-part-number breakdowns.

The paper (after Li et al., SC'22) stresses that failure indicators vary by
manufacturer and part number; this module provides the grouped UE-rate view
used to sanity-check that our baseline's per-group rule mining has material
groups to work with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.log_store import LogStore


@dataclass(frozen=True)
class GroupUeStat:
    group: str
    dimms: int
    dimms_with_ue: int

    @property
    def rate(self) -> float:
        return self.dimms_with_ue / self.dimms if self.dimms else 0.0


def _grouped_rates(store: LogStore, key) -> dict[str, GroupUeStat]:
    totals: dict[str, int] = {}
    with_ue: dict[str, int] = {}
    for dimm_id in store.dimm_ids_with_ces():
        group = key(store.config_for(dimm_id))
        totals[group] = totals.get(group, 0) + 1
        if store.ues_for_dimm(dimm_id):
            with_ue[group] = with_ue.get(group, 0) + 1
    return {
        group: GroupUeStat(
            group=group, dimms=count, dimms_with_ue=with_ue.get(group, 0)
        )
        for group, count in sorted(totals.items())
    }


def ue_rate_by_manufacturer(store: LogStore) -> dict[str, GroupUeStat]:
    """Relative UE rate of CE DIMMs grouped by (anonymised) manufacturer."""
    return _grouped_rates(store, lambda config: config.manufacturer)


def ue_rate_by_part_number(store: LogStore) -> dict[str, GroupUeStat]:
    """Relative UE rate of CE DIMMs grouped by part number."""
    return _grouped_rates(store, lambda config: config.part_number)
