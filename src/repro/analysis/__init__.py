"""Fault analysis: fault modes, UE rates, bit patterns, dataset statistics."""

from repro.analysis.bit_patterns import (
    FIG5_DIMENSIONS,
    BitPatternStat,
    bit_pattern_rates,
    fig5_panels,
    interval_effect_size,
    modal_value,
    peak_value,
)
from repro.analysis.dataset_stats import DatasetStats, dataset_stats, table1_series
from repro.analysis.fault_modes import (
    FIG4_CATEGORIES,
    DimmFaultModes,
    FaultThresholds,
    classify_ces,
    classify_store,
)
from repro.analysis.manufacturers import (
    GroupUeStat,
    ue_rate_by_manufacturer,
    ue_rate_by_part_number,
)
from repro.analysis.findings import (
    FindingCheck,
    check_finding1,
    check_finding2,
    check_finding3,
    check_finding4,
)
from repro.analysis.ue_rates import UERateStat, fig4_series, relative_ue_rates

__all__ = [
    "FIG4_CATEGORIES",
    "GroupUeStat",
    "ue_rate_by_manufacturer",
    "ue_rate_by_part_number",
    "FIG5_DIMENSIONS",
    "BitPatternStat",
    "DatasetStats",
    "DimmFaultModes",
    "FaultThresholds",
    "FindingCheck",
    "UERateStat",
    "bit_pattern_rates",
    "check_finding1",
    "check_finding2",
    "check_finding3",
    "check_finding4",
    "classify_ces",
    "classify_store",
    "dataset_stats",
    "fig4_series",
    "fig5_panels",
    "interval_effect_size",
    "modal_value",
    "peak_value",
    "relative_ue_rates",
    "table1_series",
]
