"""Platform specifications and fault archetypes.

A :class:`FaultArchetype` bundles where a fault lives in the DRAM hierarchy
with the error-bit signature it stamps on the bus and how often it fires.
A :class:`PlatformSpec` mixes archetypes with platform-calibrated weights
and attaches the platform's behavioural ECC model, reproducing the paper's
three fleets:

* **Intel Purley** — weakened SDDC; a meaningful share of row faults emit
  the risky 2-DQ / 4-beat-interval signature that escapes correction
  (Findings 2-3).
* **Intel Whitley** — strong single-device correction; multi-device faults
  and whole-chip-wide patterns carry the UE risk; the fleet is smaller and
  sudden UEs dominate (Table I).
* **Huawei K920** — K920-SDDC corrects nearly everything single-device;
  predictable UEs dominate and come from multi-device faults.

Hazard calibration note: per-activation UE probabilities are chosen so that
over a ~120-day campaign, risky-fault DIMMs escalate with probability
~0.2-0.4 while benign-fault DIMMs stay below ~0.01 — matching the paper's
overall "few % of CE DIMMs develop UEs" regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dram.faults import BitPatternProfile, FaultMode
from repro.dram.spec import ChipProcess, Manufacturer
from repro.ecc.models import (
    EccModelParams,
    K920EccModel,
    K920Envelope,
    PlatformEccModel,
    PurleyEccModel,
    PurleyEnvelope,
    WhitleyEccModel,
    WhitleyEnvelope,
)
from repro.experiments.registry import register_platform

ProfileFactory = Callable[[np.random.Generator], BitPatternProfile]


@dataclass(frozen=True)
class FaultArchetype:
    """A family of faults with a common locus, signature and rate model."""

    name: str
    mode: FaultMode
    rate_range_per_hour: tuple[float, float]  # log-uniform bounds
    make_profile: ProfileFactory
    device_span: tuple[int, int] = (1, 1)  # min/max devices touched
    multi_device_joint_prob: float = 0.0
    burst_prob: float = 0.02  # chance one activation spawns a CE burst
    burst_size: tuple[int, int] = (3, 8)

    @property
    def is_multi_device(self) -> bool:
        return self.device_span[1] > 1

    def sample_rate(self, rng: np.random.Generator) -> float:
        lo, hi = self.rate_range_per_hour
        return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


# -- bit-pattern signatures -------------------------------------------------


def _cell_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Single stuck/weak cell: one DQ, usually one beat."""
    lane = int(rng.integers(0, 4))
    return BitPatternProfile(
        dq_lanes=(lane,),
        dq_count_weights=(1.0,),
        beat_count_weights=(0.85, 0.15),
        contiguous_beats=True,
    )


def _column_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Column fault: fixed DQ (column maps to a lane), 1-2 beats."""
    lane = int(rng.integers(0, 4))
    return BitPatternProfile(
        dq_lanes=(lane,),
        dq_count_weights=(1.0,),
        beat_count_weights=(0.7, 0.3),
        contiguous_beats=True,
    )


def _row_narrow_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Row fault with a narrow signature: 1-2 adjacent DQs, short beats."""
    start = int(rng.integers(0, 3))
    return BitPatternProfile(
        dq_lanes=(start, start + 1),
        dq_count_weights=(0.8, 0.2),
        beat_count_weights=(0.5, 0.3, 0.15, 0.05),
        contiguous_beats=True,
    )


def _row_risky_profile(rng: np.random.Generator) -> BitPatternProfile:
    """The Purley-risky signature: 2 adjacent DQs, beats 4 apart."""
    start = int(rng.integers(0, 3))
    return BitPatternProfile(
        dq_lanes=(start, start + 1),
        dq_count_weights=(0.12, 0.88),
        beat_count_weights=(0.15, 0.85),
        beat_stride=4,
    )


def _bank_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Bank-level fault: wider DQ spread, several contiguous beats."""
    lanes = (0, 1, 2, 3) if rng.random() < 0.6 else (0, 1, 2)
    weights = (0.15, 0.35, 0.35, 0.15)[: len(lanes)]
    return BitPatternProfile(
        dq_lanes=lanes,
        dq_count_weights=weights,
        beat_count_weights=(0.10, 0.20, 0.25, 0.20, 0.15, 0.10),
        contiguous_beats=True,
    )


def _chip_wide_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Whole-chip degradation: all 4 DQs, beat count peaking at 5."""
    return BitPatternProfile(
        dq_lanes=(0, 1, 2, 3),
        dq_count_weights=(0.04, 0.06, 0.15, 0.75),
        beat_count_weights=(0.02, 0.03, 0.05, 0.10, 0.40, 0.20, 0.12, 0.08),
        contiguous_beats=True,
    )


def _multi_narrow_profile(rng: np.random.Generator) -> BitPatternProfile:
    """Per-device signature of a multi-device fault: narrow on each chip."""
    lane = int(rng.integers(0, 4))
    return BitPatternProfile(
        dq_lanes=(lane,),
        dq_count_weights=(1.0,),
        beat_count_weights=(0.6, 0.3, 0.1),
        contiguous_beats=True,
    )


#: The shared archetype catalogue; platforms differ by their weights.
ARCHETYPES: dict[str, FaultArchetype] = {
    archetype.name: archetype
    for archetype in (
        FaultArchetype(
            name="cell",
            mode=FaultMode.CELL,
            rate_range_per_hour=(0.004, 0.05),
            make_profile=_cell_profile,
            burst_prob=0.01,
            burst_size=(3, 8),
        ),
        FaultArchetype(
            name="column",
            mode=FaultMode.COLUMN,
            rate_range_per_hour=(0.008, 0.08),
            make_profile=_column_profile,
            burst_prob=0.02,
            burst_size=(3, 10),
        ),
        FaultArchetype(
            name="row_narrow",
            mode=FaultMode.ROW,
            rate_range_per_hour=(0.02, 0.15),
            make_profile=_row_narrow_profile,
            burst_prob=0.05,
            burst_size=(5, 15),
        ),
        FaultArchetype(
            name="row_risky",
            mode=FaultMode.ROW,
            rate_range_per_hour=(0.02, 0.15),
            make_profile=_row_risky_profile,
            burst_prob=0.06,
            burst_size=(5, 15),
        ),
        FaultArchetype(
            name="bank",
            mode=FaultMode.BANK,
            rate_range_per_hour=(0.03, 0.25),
            make_profile=_bank_profile,
            burst_prob=0.10,
            burst_size=(8, 30),
        ),
        FaultArchetype(
            name="chip_wide",
            mode=FaultMode.BANK,
            rate_range_per_hour=(0.03, 0.25),
            make_profile=_chip_wide_profile,
            burst_prob=0.10,
            burst_size=(8, 30),
        ),
        FaultArchetype(
            name="multi_device",
            mode=FaultMode.BANK,
            rate_range_per_hour=(0.03, 0.22),
            make_profile=_multi_narrow_profile,
            device_span=(2, 3),
            multi_device_joint_prob=0.30,
            burst_prob=0.08,
            burst_size=(6, 20),
        ),
    )
}


@dataclass(frozen=True)
class PlatformSpec:
    """One platform's population, fault mixture and ECC behaviour."""

    name: str
    display_name: str
    cpu_arch: str  # "x86" or "arm"
    ecc_model: PlatformEccModel
    archetype_weights: dict[str, float]
    sudden_ue_share: float  # sudden UE DIMMs / all UE DIMMs
    dimms_with_ce: int
    population: int
    manufacturer_weights: dict[Manufacturer, float] = field(default_factory=dict)
    process_weights: dict[ChipProcess, float] = field(default_factory=dict)
    frequency_weights: dict[int, float] = field(default_factory=dict)
    dimms_per_server: int = 4
    second_fault_prob: float = 0.10
    #: Override of the multi-device archetype's joint-manifestation
    #: probability: how often a multi-device fault's activation hits >= 2
    #: chips in the same burst.  Lower values leave fewer multi-device CE
    #: markers in the log before the UE, making prediction harder.
    multi_joint_prob: float | None = None

    def __post_init__(self) -> None:
        unknown = set(self.archetype_weights) - set(ARCHETYPES)
        if unknown:
            raise ValueError(f"unknown archetypes: {sorted(unknown)}")
        if abs(sum(self.archetype_weights.values()) - 1.0) > 1e-6:
            raise ValueError("archetype weights must sum to 1")
        if not 0.0 <= self.sudden_ue_share < 1.0:
            raise ValueError("sudden_ue_share must be in [0, 1)")
        if self.dimms_with_ce < 1 or self.population < self.dimms_with_ce:
            raise ValueError("population must be >= dimms_with_ce >= 1")


@register_platform("intel_purley")
def purley_platform(scale: float = 1.0) -> PlatformSpec:
    """Intel Purley (Skylake / Cascade Lake)."""
    dimms = max(12, int(round(1200 * scale)))
    return PlatformSpec(
        name="intel_purley",
        display_name="Intel Purley",
        cpu_arch="x86",
        ecc_model=PurleyEccModel(
            params=EccModelParams(
                benign_ue_prob=5e-6,
                multi_device_same_window_ue_prob=2.2e-4,
                multi_device_cross_window_ue_prob=4e-5,
            ),
            envelope=PurleyEnvelope(
                risky_two_dq_stride4_prob=9e-3,
                two_dq_prob=1.4e-4,
                wide_dq_prob=7e-5,
                single_dq_multi_beat_prob=2e-5,
            ),
        ),
        archetype_weights={
            "cell": 0.45,
            "column": 0.10,
            "row_narrow": 0.12,
            "row_risky": 0.10,
            "bank": 0.08,
            "chip_wide": 0.05,
            "multi_device": 0.10,
        },
        sudden_ue_share=0.27,
        dimms_with_ce=dimms,
        population=dimms * 5,
        manufacturer_weights={
            Manufacturer.VENDOR_A: 0.35,
            Manufacturer.VENDOR_B: 0.30,
            Manufacturer.VENDOR_C: 0.20,
            Manufacturer.VENDOR_D: 0.15,
        },
        process_weights={
            ChipProcess.NM_1X: 0.5,
            ChipProcess.NM_1Y: 0.4,
            ChipProcess.NM_1Z: 0.1,
        },
        frequency_weights={2400: 0.3, 2666: 0.6, 2933: 0.1},
    )


@register_platform("intel_whitley")
def whitley_platform(scale: float = 1.0) -> PlatformSpec:
    """Intel Whitley (Ice Lake)."""
    dimms = max(12, int(round(500 * scale)))
    return PlatformSpec(
        name="intel_whitley",
        display_name="Intel Whitley",
        cpu_arch="x86",
        ecc_model=WhitleyEccModel(
            params=EccModelParams(
                benign_ue_prob=5e-6,
                multi_device_same_window_ue_prob=5.5e-3,
                multi_device_cross_window_ue_prob=3.3e-4,
            ),
            envelope=WhitleyEnvelope(
                whole_chip_prob=1.1e-3,
                four_dq_prob=2e-4,
                three_dq_prob=1e-4,
                narrow_prob=1.3e-4,
            ),
        ),
        archetype_weights={
            "cell": 0.45,
            "column": 0.10,
            "row_narrow": 0.15,
            "row_risky": 0.02,
            "bank": 0.08,
            "chip_wide": 0.05,
            "multi_device": 0.15,
        },
        sudden_ue_share=0.58,
        dimms_with_ce=dimms,
        population=dimms * 5,
        multi_joint_prob=0.08,
        manufacturer_weights={
            Manufacturer.VENDOR_A: 0.25,
            Manufacturer.VENDOR_B: 0.25,
            Manufacturer.VENDOR_C: 0.30,
            Manufacturer.VENDOR_E: 0.20,
        },
        process_weights={ChipProcess.NM_1Y: 0.3, ChipProcess.NM_1Z: 0.7},
        frequency_weights={2933: 0.4, 3200: 0.6},
    )


@register_platform("k920")
def k920_platform(scale: float = 1.0) -> PlatformSpec:
    """Huawei ARM K920."""
    dimms = max(12, int(round(800 * scale)))
    return PlatformSpec(
        name="k920",
        display_name="K920",
        cpu_arch="arm",
        ecc_model=K920EccModel(
            params=EccModelParams(
                benign_ue_prob=3e-6,
                multi_device_same_window_ue_prob=7e-3,
                multi_device_cross_window_ue_prob=3.3e-4,
            ),
            envelope=K920Envelope(wide_prob=6e-5, narrow_prob=8e-6),
        ),
        archetype_weights={
            "cell": 0.50,
            "column": 0.10,
            "row_narrow": 0.15,
            "row_risky": 0.03,
            "bank": 0.08,
            "chip_wide": 0.04,
            "multi_device": 0.10,
        },
        sudden_ue_share=0.18,
        dimms_with_ce=dimms,
        population=dimms * 5,
        multi_joint_prob=0.22,
        manufacturer_weights={
            Manufacturer.VENDOR_A: 0.30,
            Manufacturer.VENDOR_B: 0.20,
            Manufacturer.VENDOR_C: 0.25,
            Manufacturer.VENDOR_D: 0.25,
        },
        process_weights={ChipProcess.NM_1Y: 0.5, ChipProcess.NM_1Z: 0.5},
        frequency_weights={2666: 0.4, 2933: 0.6},
    )


#: Paper platform order, used by every table/figure harness.
PLATFORM_ORDER = ("intel_purley", "intel_whitley", "k920")


def standard_platforms(scale: float = 1.0) -> dict[str, PlatformSpec]:
    """The paper's three fleets at a given population scale."""
    return {
        "intel_purley": purley_platform(scale),
        "intel_whitley": whitley_platform(scale),
        "k920": k920_platform(scale),
    }
