"""Fault sampling and activation-time generation.

Faults arrive on DIMMs according to the platform's archetype mixture; each
fault then *activates* (produces an erroneous access) as an inhomogeneous
Poisson process shaped by three effects:

* the server's workload (diurnal cycle + utilisation level),
* fault degradation — rates drift upward after onset, a known UE precursor,
* CE bursts — occasional clusters of errors within a minute, the mechanism
  behind CE storms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.faults import Fault
from repro.dram.geometry import DimmGeometry
from repro.simulator.platforms import ARCHETYPES, FaultArchetype, PlatformSpec
from repro.simulator.rng import poisson_arrivals
from repro.simulator.workload import WorkloadModel

#: Safety cap: one fault never contributes more than this many activations.
MAX_ACTIVATIONS_PER_FAULT = 4000

#: CE bursts land within one minute of the triggering activation.
BURST_SPREAD_HOURS = 1.0 / 60.0


@dataclass(frozen=True)
class InjectedFault:
    """A sampled fault plus the archetype that produced it."""

    fault: Fault
    archetype: FaultArchetype
    growth: float  # rate multiplier reached by end-of-campaign (>= 0)


class FaultSampler:
    """Draws faults for one platform's DIMMs."""

    def __init__(self, platform: PlatformSpec, geometry: DimmGeometry):
        self.platform = platform
        self.geometry = geometry
        names = sorted(platform.archetype_weights)
        self._names = names
        weights = np.array([platform.archetype_weights[n] for n in names])
        self._probs = weights / weights.sum()

    def sample_archetype(self, rng: np.random.Generator) -> FaultArchetype:
        name = self._names[int(rng.choice(len(self._names), p=self._probs))]
        return ARCHETYPES[name]

    def sample_fault(
        self,
        rng: np.random.Generator,
        archetype: FaultArchetype,
        duration_hours: float,
    ) -> InjectedFault:
        geometry = self.geometry
        rank = int(rng.integers(0, geometry.ranks))
        span_lo, span_hi = archetype.device_span
        span = int(rng.integers(span_lo, span_hi + 1))
        devices = tuple(
            int(d)
            for d in rng.choice(geometry.devices_per_rank, size=span, replace=False)
        )
        joint_prob = archetype.multi_device_joint_prob
        if archetype.is_multi_device and self.platform.multi_joint_prob is not None:
            joint_prob = self.platform.multi_joint_prob
        fault = Fault(
            mode=archetype.mode,
            rank=rank,
            devices=devices,
            bank=int(rng.integers(0, geometry.banks)),
            row=int(rng.integers(0, geometry.rows)),
            column=int(rng.integers(0, geometry.columns)),
            pattern_profile=archetype.make_profile(rng),
            ce_rate_per_hour=archetype.sample_rate(rng),
            onset_hour=float(rng.uniform(0.0, 0.7 * duration_hours)),
            multi_device_joint_prob=joint_prob,
        )
        growth = float(rng.uniform(0.0, 1.5))
        return InjectedFault(fault=fault, archetype=archetype, growth=growth)

    def sample_dimm_faults(
        self, rng: np.random.Generator, duration_hours: float
    ) -> list[InjectedFault]:
        """One fault per faulty DIMM, plus occasionally a second one."""
        faults = [self.sample_fault(rng, self.sample_archetype(rng), duration_hours)]
        if rng.random() < self.platform.second_fault_prob:
            faults.append(
                self.sample_fault(rng, self.sample_archetype(rng), duration_hours)
            )
        return faults


def activation_times(
    rng: np.random.Generator,
    injected: InjectedFault,
    workload: WorkloadModel,
    duration_hours: float,
) -> np.ndarray:
    """Sample the (sorted) activation timestamps of one fault.

    The generator draws at the peak rate (base rate x end-of-campaign growth
    x workload peak) and thins by the true relative intensity, which is the
    standard exact construction for inhomogeneous Poisson processes.
    """
    fault = injected.fault
    onset = fault.onset_hour
    if onset >= duration_hours:
        return np.empty(0)

    span = duration_hours - onset
    peak_rate = (
        fault.ce_rate_per_hour * (1.0 + injected.growth) * workload.peak_intensity
    )
    times = poisson_arrivals(rng, peak_rate, onset, duration_hours)
    if times.size == 0:
        return times

    # Thin by degradation ramp x workload, both relative to their peaks.
    ramp = (1.0 + injected.growth * (times - onset) / span) / (1.0 + injected.growth)
    workload_factor = np.asarray(workload.intensity(times)) / workload.peak_intensity
    keep = rng.random(times.size) < ramp * workload_factor
    times = times[keep]

    # CE bursts: each surviving activation may spawn a near-simultaneous
    # cluster (the raw material of CE storms).
    archetype = injected.archetype
    if archetype.burst_prob > 0 and times.size:
        burst_mask = rng.random(times.size) < archetype.burst_prob
        extras = []
        for anchor in times[burst_mask]:
            size = int(rng.integers(archetype.burst_size[0], archetype.burst_size[1] + 1))
            extras.append(anchor + rng.uniform(0.0, BURST_SPREAD_HOURS, size=size))
        if extras:
            times = np.concatenate([times] + extras)
            times = times[times < duration_hours]
            times.sort()

    if times.size > MAX_ACTIVATIONS_PER_FAULT:
        times = times[:MAX_ACTIVATIONS_PER_FAULT]
    return times
