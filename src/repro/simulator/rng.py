"""Deterministic RNG streams.

Every stochastic component of the simulator gets its own child generator
derived from a root seed plus a string key path, so that (a) runs are fully
reproducible and (b) changing the number of draws in one component does not
perturb any other component's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def child_rng(seed: int, *keys: str | int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a key path."""
    digest = hashlib.sha256(
        ("/".join(str(key) for key in keys)).encode("utf-8")
    ).digest()
    entropy = int.from_bytes(digest[:8], "little")
    sequence = np.random.SeedSequence([seed & 0xFFFFFFFF, entropy])
    return np.random.default_rng(sequence)


def poisson_arrivals(
    rng: np.random.Generator,
    rate_per_hour: float,
    start_hour: float,
    end_hour: float,
) -> np.ndarray:
    """Sample homogeneous Poisson arrival times on ``[start, end)``.

    Uses the count-then-order construction, which is exact and vectorised.
    """
    if end_hour <= start_hour or rate_per_hour <= 0:
        return np.empty(0)
    duration = end_hour - start_hour
    count = rng.poisson(rate_per_hour * duration)
    if count == 0:
        return np.empty(0)
    times = rng.uniform(start_hour, end_hour, size=count)
    times.sort()
    return times
