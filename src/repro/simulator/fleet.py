"""Fleet simulation: faults -> errors -> BMC logs.

This is the stand-in for the paper's production dataset (Section III).  For
each platform we simulate the DIMMs that experience CEs: faults are drawn
from the platform's archetype mixture, activations stream through the
platform's behavioural ECC model, corrected errors flow through the BMC
collection path (with CE-storm suppression), RAS reactions (page offlining,
sparing) attenuate fault rates, and uncorrectable outcomes terminate the
DIMM.  Sudden UEs — UEs with no CE history — are then injected to match the
platform's Table I share.

Everything downstream (fault analysis, feature pipeline, ML) consumes only
the resulting :class:`~repro.telemetry.log_store.LogStore`; ground truth is
kept separately in :class:`FleetTruth` for evaluation and calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dram.geometry import DimmGeometry
from repro.dram.spec import DimmSpec, make_part_number
from repro.ras.ce_storm import StormConfig
from repro.ras.page_offlining import PageOffliningController
from repro.ras.sparing import SparingController, SparingKind
from repro.simulator.fault_injection import (
    FaultSampler,
    InjectedFault,
    activation_times,
)
from repro.simulator.platforms import PlatformSpec, standard_platforms
from repro.simulator.rng import child_rng
from repro.simulator.workload import WorkloadModel, sample_workload
from repro.telemetry.bmc import BmcCollector
from repro.telemetry.log_store import LogStore
from repro.telemetry.mce import McaSignal, encode_mce
from repro.telemetry.records import DimmConfigRecord, MemEventKind, MemEventRecord

_SPARING_EVENT_KIND = {
    SparingKind.PCLS: MemEventKind.PCLS_APPLIED,
    SparingKind.ROW: MemEventKind.ROW_SPARED,
    SparingKind.BANK: MemEventKind.BANK_SPARED,
}


@dataclass
class FleetConfig:
    """Knobs of one platform's simulation campaign."""

    platform: PlatformSpec
    duration_hours: float = 2880.0  # ~120 days
    seed: int = 7
    enable_sparing: bool = True
    enable_page_offlining: bool = True
    sparing_trigger_ces: int = 30  # logged CEs from one fault before repair
    storm_config: StormConfig | None = None
    #: Wear-out escalation: the per-activation UE hazard is multiplied by
    #: ``min((age / wear_tau_hours) ** wear_gamma, wear_cap)`` where age is
    #: the time since the fault's onset.  Degradation is progressive, not
    #: memoryless — faults fail *after* ageing under load, which is what
    #: makes UEs predictable from CE history at all.
    wear_tau_hours: float = 500.0
    wear_gamma: float = 2.0
    wear_cap: float = 16.0

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if self.wear_tau_hours <= 0 or self.wear_gamma < 0 or self.wear_cap < 1:
            raise ValueError("invalid wear-out parameters")


@dataclass
class DimmTruth:
    """Ground truth for one simulated DIMM."""

    dimm_id: str
    server_id: str
    spec: DimmSpec
    faults: list[InjectedFault] = field(default_factory=list)
    ue_hour: float | None = None
    sudden: bool = False

    @property
    def has_ue(self) -> bool:
        return self.ue_hour is not None

    @property
    def archetype_names(self) -> tuple[str, ...]:
        return tuple(injected.archetype.name for injected in self.faults)


@dataclass
class FleetTruth:
    """Ground truth for one platform campaign."""

    platform_name: str
    population: int
    dimms: dict[str, DimmTruth] = field(default_factory=dict)

    @property
    def dimms_with_ces(self) -> list[DimmTruth]:
        return [d for d in self.dimms.values() if d.faults and not d.sudden]

    @property
    def predictable_ue_dimms(self) -> list[DimmTruth]:
        return [d for d in self.dimms.values() if d.has_ue and not d.sudden]

    @property
    def sudden_ue_dimms(self) -> list[DimmTruth]:
        return [d for d in self.dimms.values() if d.has_ue and d.sudden]


@dataclass
class SimulationResult:
    """Everything one campaign produced."""

    config: FleetConfig
    platform: PlatformSpec
    store: LogStore
    truth: FleetTruth

    @property
    def duration_hours(self) -> float:
        return self.config.duration_hours


def _weighted_choice(rng: np.random.Generator, weights: dict) -> object:
    keys = sorted(weights, key=str)
    probs = np.array([weights[k] for k in keys], dtype=float)
    return keys[int(rng.choice(len(keys), p=probs / probs.sum()))]


def _sample_spec(
    rng: np.random.Generator, platform: PlatformSpec, dimm_id: str
) -> DimmSpec:
    manufacturer = _weighted_choice(rng, platform.manufacturer_weights)
    frequency = int(_weighted_choice(rng, platform.frequency_weights))
    process = _weighted_choice(rng, platform.process_weights)
    series = int(rng.integers(0, 3))
    return DimmSpec(
        dimm_id=dimm_id,
        manufacturer=manufacturer,
        part_number=make_part_number(manufacturer, 32, 4, frequency, series),
        capacity_gb=32,
        data_width=4,
        frequency_mts=frequency,
        chip_process=process,
    )


def _config_record(platform: PlatformSpec, truth: DimmTruth) -> DimmConfigRecord:
    spec = truth.spec
    return DimmConfigRecord(
        dimm_id=spec.dimm_id,
        server_id=truth.server_id,
        platform=platform.name,
        manufacturer=spec.manufacturer.value,
        part_number=spec.part_number,
        capacity_gb=spec.capacity_gb,
        data_width=spec.data_width,
        frequency_mts=spec.frequency_mts,
        chip_process=spec.chip_process.value,
    )


def simulate_fleet(config: FleetConfig) -> SimulationResult:
    """Run one platform campaign; see the module docstring for the flow."""
    platform = config.platform
    geometry = DimmGeometry()
    sampler = FaultSampler(platform, geometry)
    store = LogStore()
    bmc = BmcCollector(store, config.storm_config)
    sparing = SparingController()
    offlining = PageOffliningController()
    truth = FleetTruth(platform_name=platform.name, population=platform.population)

    workloads: dict[str, WorkloadModel] = {}

    for index in range(platform.dimms_with_ce):
        dimm_id = f"{platform.name}-dimm{index:06d}"
        server_id = f"{platform.name}-srv{index // platform.dimms_per_server:05d}"
        rng = child_rng(config.seed, platform.name, "dimm", index)
        if server_id not in workloads:
            workloads[server_id] = sample_workload(
                child_rng(config.seed, platform.name, "workload", server_id)
            )
        spec = _sample_spec(rng, platform, dimm_id)
        dimm_truth = DimmTruth(dimm_id=dimm_id, server_id=server_id, spec=spec)
        dimm_truth.faults = sampler.sample_dimm_faults(rng, config.duration_hours)
        truth.dimms[dimm_id] = dimm_truth
        store.add_config(_config_record(platform, dimm_truth))

        _simulate_dimm(
            config=config,
            geometry=geometry,
            bmc=bmc,
            sparing=sparing,
            offlining=offlining,
            workload=workloads[server_id],
            dimm_truth=dimm_truth,
            channel=index % 6,
            rng=rng,
        )

    _inject_sudden_ues(config, store, bmc, truth)
    return SimulationResult(config=config, platform=platform, store=store, truth=truth)


def _simulate_dimm(
    *,
    config: FleetConfig,
    geometry: DimmGeometry,
    bmc: BmcCollector,
    sparing: SparingController,
    offlining: PageOffliningController,
    workload: WorkloadModel,
    dimm_truth: DimmTruth,
    channel: int,
    rng: np.random.Generator,
) -> None:
    platform = config.platform
    ecc = platform.ecc_model

    # Merge activations of all faults into one time-ordered stream.
    stream: list[tuple[float, InjectedFault]] = []
    for injected in dimm_truth.faults:
        for t in activation_times(rng, injected, workload, config.duration_hours):
            stream.append((float(t), injected))
    stream.sort(key=lambda item: item[0])

    attenuation: dict[int, float] = {}
    logged_ces: dict[int, int] = {}

    for timestamp, injected in stream:
        fault = injected.fault
        factor = attenuation.get(fault.fault_id, 1.0)
        if factor < 1.0 and rng.random() > factor:
            continue  # the repaired region absorbed this access

        pattern = fault.sample_bus_pattern(rng)
        worst_device, worst_bitmap = max(
            pattern.device_bits, key=lambda item: item[1].error_bit_count
        )
        address = fault.sample_cell(rng, geometry, worst_device)

        age = timestamp - fault.onset_hour
        wear = min(
            (age / config.wear_tau_hours) ** config.wear_gamma, config.wear_cap
        )
        hazard = min(ecc.ue_probability(pattern) * wear, 0.5)
        is_ue = rng.random() < hazard

        signal = McaSignal(
            channel=channel,
            rank=address.rank,
            device=worst_device,
            bank=address.bank,
            row=address.row,
            column=address.column,
            corrected_count=1,
            uncorrected=is_ue,
            dq_count=worst_bitmap.dq_count,
            beat_count=worst_bitmap.beat_count,
            dq_interval=worst_bitmap.dq_interval,
            beat_interval=worst_bitmap.beat_interval,
            devices=pattern.devices,
            error_bit_count=pattern.error_bit_count,
        )
        status, addr, misc = encode_mce(signal)
        bmc.collect_raw(
            timestamp,
            dimm_truth.server_id,
            dimm_truth.dimm_id,
            status,
            addr,
            misc,
            fault_id=fault.fault_id,
        )

        if is_ue:
            dimm_truth.ue_hour = timestamp
            return  # DIMM is pulled after its first UE

        # RAS reactions to the logged CE stream.
        logged_ces[fault.fault_id] = logged_ces.get(fault.fault_id, 0) + 1
        if config.enable_page_offlining:
            result = offlining.observe_ce(
                dimm_truth.server_id, dimm_truth.dimm_id, fault, address.row
            )
            if result.offlined:
                attenuation[fault.fault_id] = (
                    attenuation.get(fault.fault_id, 1.0) * result.attenuation
                )
                bmc.store.add_event(
                    MemEventRecord(
                        timestamp_hours=timestamp,
                        server_id=dimm_truth.server_id,
                        dimm_id=dimm_truth.dimm_id,
                        kind=MemEventKind.PAGE_OFFLINE,
                        detail=f"row {address.row}",
                    )
                )
        if (
            config.enable_sparing
            and logged_ces[fault.fault_id] >= config.sparing_trigger_ces
        ):
            result = sparing.try_repair(dimm_truth.dimm_id, fault)
            if result.applied:
                attenuation[fault.fault_id] = (
                    attenuation.get(fault.fault_id, 1.0) * result.attenuation
                )
                bmc.store.add_event(
                    MemEventRecord(
                        timestamp_hours=timestamp,
                        server_id=dimm_truth.server_id,
                        dimm_id=dimm_truth.dimm_id,
                        kind=_SPARING_EVENT_KIND[result.kind],
                        detail=f"fault {fault.fault_id}",
                    )
                )


def _inject_sudden_ues(
    config: FleetConfig,
    store: LogStore,
    bmc: BmcCollector,
    truth: FleetTruth,
) -> None:
    """Add UEs with no CE history, matching the platform's Table I share."""
    platform = config.platform
    predictable = len(truth.predictable_ue_dimms)
    share = platform.sudden_ue_share
    count = int(round(predictable * share / (1.0 - share))) if predictable else 0
    if count == 0:
        return

    rng = child_rng(config.seed, platform.name, "sudden")
    geometry = DimmGeometry()
    base = platform.dimms_with_ce
    for offset in range(count):
        index = base + offset
        dimm_id = f"{platform.name}-dimm{index:06d}"
        server_id = f"{platform.name}-srv{index // platform.dimms_per_server:05d}"
        spec = _sample_spec(rng, platform, dimm_id)
        dimm_truth = DimmTruth(
            dimm_id=dimm_id,
            server_id=server_id,
            spec=spec,
            ue_hour=float(rng.uniform(0.05, 1.0) * config.duration_hours),
            sudden=True,
        )
        truth.dimms[dimm_id] = dimm_truth
        store.add_config(_config_record(platform, dimm_truth))

        signal = McaSignal(
            channel=index % 6,
            rank=int(rng.integers(0, geometry.ranks)),
            device=int(rng.integers(0, geometry.devices_per_rank)),
            bank=int(rng.integers(0, geometry.banks)),
            row=int(rng.integers(0, geometry.rows)),
            column=int(rng.integers(0, geometry.columns)),
            corrected_count=0,
            uncorrected=True,
            devices=(),
            error_bit_count=4,
        )
        status, addr, misc = encode_mce(signal)
        bmc.collect_raw(
            dimm_truth.ue_hour, server_id, dimm_id, status, addr, misc, fault_id=-1
        )


def simulate_study(
    scale: float = 1.0,
    seed: int = 7,
    duration_hours: float = 2880.0,
    platforms: dict[str, PlatformSpec] | None = None,
    **config_kwargs,
) -> dict[str, SimulationResult]:
    """Simulate all three paper platforms at the given population scale."""
    platforms = platforms or standard_platforms(scale)
    results = {}
    for name, platform in platforms.items():
        results[name] = simulate_fleet(
            FleetConfig(
                platform=platform,
                duration_hours=duration_hours,
                seed=seed,
                **config_kwargs,
            )
        )
    return results
