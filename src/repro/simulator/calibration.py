"""Calibration targets and scale presets.

The paper's statistics (Table I) are the calibration targets for the fleet
simulator.  Absolute counts are scaled down — the paper observed ~90k DDR4
DIMMs for ten months; we simulate thousands for ~four — but the per-platform
*ratios and orderings* are what the analysis and benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table1Row:
    """One platform's row of the paper's Table I."""

    dimms_with_ces: str  # as printed in the paper, e.g. "> 50,000"
    dimms_with_ues: str
    predictable_ue_share: float
    sudden_ue_share: float


#: Paper Table I, verbatim.
PAPER_TABLE1: dict[str, Table1Row] = {
    "intel_purley": Table1Row("> 50,000", "> 2,000", 0.73, 0.27),
    "intel_whitley": Table1Row("> 10,000", "> 400", 0.42, 0.58),
    "k920": Table1Row("> 30,000", "> 600", 0.82, 0.18),
}

#: Paper Table II, verbatim: algorithm -> platform -> (P, R, F1, VIRR).
#: ``None`` marks the paper's "X" (no prediction values).
PAPER_TABLE2: dict[str, dict[str, tuple | None]] = {
    "risky_ce_pattern": {
        "intel_purley": (0.53, 0.46, 0.49, 0.37),
        "intel_whitley": None,
        "k920": None,
    },
    "random_forest": {
        "intel_purley": (0.61, 0.62, 0.61, 0.52),
        "intel_whitley": (0.34, 0.46, 0.39, 0.32),
        "k920": (0.44, 0.51, 0.47, 0.39),
    },
    "lightgbm": {
        "intel_purley": (0.54, 0.80, 0.64, 0.65),
        "intel_whitley": (0.46, 0.54, 0.49, 0.45),
        "k920": (0.51, 0.57, 0.54, 0.46),
    },
    "ft_transformer": {
        "intel_purley": (0.49, 0.74, 0.59, 0.58),
        "intel_whitley": (0.53, 0.49, 0.50, 0.40),
        "k920": (0.40, 0.54, 0.46, 0.41),
    },
}

#: Figure 4 qualitative targets: per platform, whether single-device faults
#: out-attribute multi-device faults.
FIG4_SINGLE_OVER_MULTI: dict[str, bool] = {
    "intel_purley": True,
    "intel_whitley": False,
    "k920": False,
}

#: Figure 5 qualitative targets: (peak dq count, peak beat count) and
#: whether intervals matter.
FIG5_PEAKS: dict[str, dict[str, int | bool]] = {
    "intel_purley": {
        "dq_count_peak": 2,
        "beat_count_peak": 2,
        "beat_interval_peak": 4,
        "intervals_matter": True,
    },
    "intel_whitley": {
        "dq_count_peak": 4,
        "beat_count_peak": 5,
        "intervals_matter": False,
    },
}


@dataclass(frozen=True)
class ScalePreset:
    """A named fleet size for tests / default runs / benchmark runs."""

    name: str
    scale: float
    duration_hours: float


#: For unit/integration tests: seconds to simulate.
TINY = ScalePreset(name="tiny", scale=0.10, duration_hours=1440.0)

#: Default for examples and quick experiments.
SMALL = ScalePreset(name="small", scale=0.5, duration_hours=2160.0)

#: For the benchmark harnesses that regenerate the paper's artifacts.
PAPER_SHAPE = ScalePreset(name="paper_shape", scale=1.0, duration_hours=2880.0)

PRESETS = {preset.name: preset for preset in (TINY, SMALL, PAPER_SHAPE)}
