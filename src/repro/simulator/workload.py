"""Workload model.

Memory errors only manifest when the faulty region is accessed, so CE
arrival intensity tracks the server's memory traffic.  We model this with a
per-server utilisation level plus a shared diurnal cycle; the fleet
simulator thins each fault's Poisson activations accordingly (an exact
inhomogeneous-Poisson construction).

The paper (and [Wang et al., VTS'21]) found workload features play a minor
role next to CE-derived features; the model here exists to (a) make arrival
processes realistically non-stationary and (b) let the feature ablation
(benchmark A1) confirm that same conclusion on our data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WorkloadModel:
    """Multiplicative intensity model: ``base * (1 + amp * sin(...))``.

    ``base`` is the server's mean utilisation factor (dimensionless, ~1),
    ``diurnal_amplitude`` scales the 24-hour cycle, ``phase_hours`` shifts
    it per server.
    """

    base: float = 1.0
    diurnal_amplitude: float = 0.3
    phase_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def intensity(self, hours: np.ndarray | float) -> np.ndarray | float:
        """Relative access intensity at time ``hours``."""
        cycle = np.sin(2.0 * np.pi * (np.asarray(hours) + self.phase_hours) / 24.0)
        return self.base * (1.0 + self.diurnal_amplitude * cycle)

    @property
    def peak_intensity(self) -> float:
        return self.base * (1.0 + self.diurnal_amplitude)

    def thin_arrivals(
        self, rng: np.random.Generator, times: np.ndarray
    ) -> np.ndarray:
        """Keep each arrival with probability intensity(t) / peak.

        Feeding arrivals drawn at the *peak* rate yields an exact sample of
        the inhomogeneous process with intensity ``intensity(t)``.
        """
        if times.size == 0:
            return times
        keep = rng.random(times.size) < (
            np.asarray(self.intensity(times)) / self.peak_intensity
        )
        return times[keep]


def sample_workload(rng: np.random.Generator) -> WorkloadModel:
    """Draw a server's workload model (log-normal utilisation, random phase)."""
    base = float(np.exp(rng.normal(0.0, 0.35)))
    amplitude = float(rng.uniform(0.15, 0.45))
    phase = float(rng.uniform(0.0, 24.0))
    return WorkloadModel(base=base, diurnal_amplitude=amplitude, phase_hours=phase)
