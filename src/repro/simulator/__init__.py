"""Fleet simulator: the synthetic substitute for the paper's production logs."""

from repro.simulator.calibration import (
    FIG4_SINGLE_OVER_MULTI,
    FIG5_PEAKS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_SHAPE,
    PRESETS,
    SMALL,
    TINY,
    ScalePreset,
    Table1Row,
)
from repro.simulator.fault_injection import (
    FaultSampler,
    InjectedFault,
    activation_times,
)
from repro.simulator.fleet import (
    DimmTruth,
    FleetConfig,
    FleetTruth,
    SimulationResult,
    simulate_fleet,
    simulate_study,
)
from repro.simulator.platforms import (
    ARCHETYPES,
    PLATFORM_ORDER,
    FaultArchetype,
    PlatformSpec,
    k920_platform,
    purley_platform,
    standard_platforms,
    whitley_platform,
)
from repro.simulator.rng import child_rng, poisson_arrivals
from repro.simulator.workload import WorkloadModel, sample_workload

__all__ = [
    "ARCHETYPES",
    "FIG4_SINGLE_OVER_MULTI",
    "FIG5_PEAKS",
    "PAPER_SHAPE",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PLATFORM_ORDER",
    "PRESETS",
    "SMALL",
    "TINY",
    "DimmTruth",
    "FaultArchetype",
    "FaultSampler",
    "FleetConfig",
    "FleetTruth",
    "InjectedFault",
    "PlatformSpec",
    "ScalePreset",
    "SimulationResult",
    "Table1Row",
    "WorkloadModel",
    "activation_times",
    "child_rng",
    "k920_platform",
    "poisson_arrivals",
    "purley_platform",
    "sample_workload",
    "simulate_fleet",
    "simulate_study",
    "standard_platforms",
    "whitley_platform",
]
