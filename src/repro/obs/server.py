"""Live telemetry plane: a stdlib HTTP scrape endpoint over one bundle.

:class:`TelemetryServer` wraps a ``ThreadingHTTPServer`` around an
:class:`~repro.obs.bridge.Observability` bundle and serves

========== ============================================================
route      payload
========== ============================================================
/metrics   Prometheus text exposition (the existing exporter)
/metrics.json  the deterministic registry snapshot as JSON
/spans     the tracer's nested span tree as JSON
/healthz   readiness JSON — 200 ``ok`` / 503 ``degraded``
/progress  the heartbeat :class:`SnapshotSeries` + per-source rates
========== ============================================================

Every scrape takes the registry snapshot *under the bundle's lock* and
renders outside it, so concurrent scrapes during a live heartbeat
replay never observe torn state (a counter family mid-update).  The
server runs on a daemon thread; ``port=0`` binds an ephemeral port
(exposed as ``.port`` / ``.url``) for tests and CI.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import to_prometheus

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """HTTP front end for one :class:`Observability` bundle."""

    def __init__(self, obs, *, host: str = "127.0.0.1", port: int = 0,
                 health=None):
        self.obs = obs
        self.health = health  # optional () -> dict with an "ok" bool
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002
                pass  # scrapes must not spam the run's stdout

            def do_GET(self):  # noqa: N802 - http.server API
                outer._route(self)

        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return "http://%s:%d" % (host, self.port)

    def start(self) -> "TelemetryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- routing -----------------------------------------------------------

    def _snapshot(self) -> dict:
        """Consistent point-in-time payload, taken under the obs lock."""
        with self.obs.lock:
            return self.obs.payload()

    def _route(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            payload = self._snapshot()
            self._send(
                handler, 200, to_prometheus(payload),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/metrics.json":
            payload = self._snapshot()
            self._send_json(handler, 200, payload["metrics"])
        elif path == "/spans":
            payload = self._snapshot()
            self._send_json(handler, 200, payload["spans"])
        elif path == "/healthz":
            self._send_healthz(handler)
        elif path == "/progress":
            with self.obs.lock:
                body = self.obs.progress.to_dict()
            self._send_json(handler, 200, body)
        else:
            self._send_json(
                handler, 404, {"error": "no such route", "path": path}
            )

    def _send_healthz(self, handler) -> None:
        body: dict = {"status": "ok"}
        ok = True
        provider = self.health
        if provider is not None:
            report = provider() or {}
            body["health"] = {
                k: v for k, v in report.items() if k != "ok"
            }
            if not report.get("ok", True):
                ok = False
        alerts = getattr(self.obs, "alerts", None)
        if alerts is not None:
            with self.obs.lock:
                summary = alerts.summary()
            body["alerts"] = summary
            if summary["critical"]:
                ok = False
        if not ok:
            body["status"] = "degraded"
        self._send_json(handler, 200 if ok else 503, body)

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _send(handler, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        handler.end_headers()
        try:
            handler.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response; nothing to do

    @classmethod
    def _send_json(cls, handler, status: int, payload) -> None:
        cls._send(
            handler, status,
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            "application/json",
        )
