"""Bounded in-memory snapshot series for live progress reporting.

A :class:`SnapshotSeries` is the ring buffer behind the telemetry
server's ``/progress`` route and the ``repro top`` view: every
heartbeat appends one ``{"seq", "source", "wall_time", "fields"}``
entry and the deque drops the oldest once ``maxlen`` is reached.

Determinism note: the *registry* stays deterministic — wall-clock time
lives only in the series entries, where it is used purely for rate
display (events/sec between the two most recent heartbeats of a
source).  Nothing in the replay path ever reads the series back.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = ["SnapshotSeries"]

#: Default ring size: enough for a long replay at a coarse heartbeat.
DEFAULT_RETAIN = 256


class SnapshotSeries:
    """Ring buffer of heartbeat snapshots, bounded at ``maxlen``."""

    def __init__(self, maxlen: int = DEFAULT_RETAIN):
        self._entries: deque = deque(maxlen=int(maxlen))
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, source: str, fields: dict) -> dict:
        """Record one heartbeat snapshot; returns the stored entry."""
        entry = {
            "seq": self._seq,
            "source": str(source),
            "wall_time": time.time(),
            "fields": dict(fields),
        }
        self._seq += 1
        self._entries.append(entry)
        return entry

    def last(self, source: str | None = None) -> dict | None:
        """Most recent entry (optionally of one source), or ``None``."""
        for entry in reversed(self._entries):
            if source is None or entry["source"] == source:
                return entry
        return None

    def rates(self) -> dict:
        """Per-source field rates between the two most recent entries.

        Returns ``{source: {field: per_second_delta}}`` for numeric
        fields; sources with fewer than two snapshots (or zero wall
        delta) are omitted.  Display-only — never fed back anywhere.
        """
        latest: dict = {}
        previous: dict = {}
        for entry in self._entries:
            source = entry["source"]
            if source in latest:
                previous[source] = latest[source]
            latest[source] = entry
        out: dict = {}
        for source, entry in latest.items():
            prev = previous.get(source)
            if prev is None:
                continue
            dt = entry["wall_time"] - prev["wall_time"]
            if dt <= 0:
                continue
            fields = {}
            for key, value in entry["fields"].items():
                before = prev["fields"].get(key)
                if isinstance(value, (int, float)) and isinstance(
                    before, (int, float)
                ):
                    fields[key] = (float(value) - float(before)) / dt
            if fields:
                out[source] = fields
        return out

    def to_dict(self) -> dict:
        """JSON-serializable dump: entries oldest-first, plus rates."""
        return {
            "entries": [dict(entry) for entry in self._entries],
            "rates": self.rates(),
        }
