"""The :class:`Observability` bundle + report-to-registry migration.

One ``Observability`` (a :class:`~repro.obs.metrics.MetricsRegistry`
plus a :class:`~repro.obs.tracing.Tracer`) is created per instrumented
run and threaded through the engines.  The ``record_*`` methods are the
single place where the stack's scattered per-report ledgers —
``stage_seconds``, alarm summaries, chaos health ledgers, bus counts,
SLO counters — are projected onto registry instruments, so every
exported metric is derived from the same run artifacts the parity
gates pin.

Instrument catalog (all names prefixed ``repro_``):

======================================  =========  =======================
name                                    type       labels
======================================  =========  =======================
repro_replay_events_total               counter    platform, model, engine
repro_replay_ces_total                  counter    platform, model, engine
repro_replay_ues_total                  counter    platform, model, engine
repro_replay_mem_events_total           counter    platform, model, engine
repro_replay_scored_total               counter    platform, model, engine
repro_replay_batches_total              counter    platform, model, engine
repro_replay_fallback_scores_total      counter    platform, model, engine
repro_replay_late_rebuilds_total        counter    platform, model, engine
repro_replay_stage_seconds_total        counter    stage + the above
repro_replay_wall_seconds_total         counter    platform, model, engine
repro_alarms_total                      counter    disposition + the above
repro_alarm_quality                     gauge      measure + the above
repro_quarantine_rejected_events_total  counter    platform, model, engine
repro_quarantine_rejects_total          counter    reason + the above
repro_bus_messages_total                counter    topic
repro_fleet_cost                        gauge      field
repro_fleet_actions_total               counter    action
repro_serve_requests_total              counter    outcome
repro_serve_batches_total               counter    (none)
repro_serve_latency_ms                  gauge      quantile
repro_serve_throughput_rps              gauge      (none)
repro_serve_latency_seconds             histogram  (none)
repro_serve_batch_size                  histogram  (none)
repro_cache_requests_total              counter    kind, tier
repro_logstore_skipped_lines_total      counter    source
repro_heartbeat                         gauge      source, field, worker
repro_heartbeats_total                  counter    source, worker
repro_alerts_total                      counter    rule, severity
repro_dashboard_*                       (shim)     see repro.mlops.monitoring
======================================  =========  =======================

Distributed runs fold each worker's registry snapshot into the
coordinator's under a ``worker`` label (``w0``, ``w1``, ...; the
coordinator's own merged-report samples carry ``worker="merged"`` and
local heartbeats ``worker=""``), so one scrape shows the whole run.

Span naming convention: dotted lowercase paths rooted at the verb —
``replay`` / ``fleet_replay`` / ``coordinator`` / ``serve`` /
``build_samples`` / ``cache`` — with stage children like
``replay.stage.predict``.  Spans exist at *stage* granularity only
(never per flush or per event), so the tree shape is a deterministic
function of the input.
"""

from __future__ import annotations

import threading

from .metrics import MetricsRegistry
from .timeseries import SnapshotSeries
from .tracing import Tracer

__all__ = ["Observability"]

#: Batch-size-shaped buckets for the serving micro-batcher.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_ALARM_DISPOSITIONS = ("raised", "suppressed", "tp", "late", "fp", "censored")
_ALARM_QUALITY = ("precision", "recall", "f1")


class Observability:
    """Registry + tracer bundle for one instrumented run."""

    def __init__(self, metrics=None, tracer=None, alerts=None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # The telemetry server scrapes from its own threads while the
        # replay heartbeats from the run thread; every mutation and
        # every snapshot goes through this lock so scrapes are never
        # torn.  Reentrant: record_* methods may nest under heartbeat.
        self.lock = threading.RLock()
        self.progress = SnapshotSeries()
        self.alerts = alerts

    def payload(self) -> dict:
        """The JSON-serializable ``extras["observability"]`` artifact."""
        with self.lock:
            return {
                "metrics": self.metrics.snapshot(),
                "spans": self.tracer.tree(),
            }

    # -- live telemetry ----------------------------------------------------

    def heartbeat(self, source: str, fields: dict, worker: str = "") -> None:
        """Publish one in-flight snapshot: gauges, series, alert rules.

        Strictly write-only (the obs-parity discipline): the replay
        path never reads heartbeat state back, so score logs, alarms,
        bus counts and cost digests are bit-identical with heartbeats
        on.  ``fields`` is a flat dict; numeric values become
        ``repro_heartbeat{source,field,worker}`` gauges, everything
        lands in the :class:`SnapshotSeries` behind ``/progress``.
        """
        with self.lock:
            self.metrics.counter(
                "repro_heartbeats_total",
                "Heartbeat snapshots published.",
                labels=("source", "worker"),
            ).labels(source=source, worker=worker).inc()
            gauge = self.metrics.gauge(
                "repro_heartbeat",
                "Most recent in-flight heartbeat fields.",
                labels=("source", "field", "worker"),
            )
            for key in sorted(fields):
                value = fields[key]
                if isinstance(value, (int, float)):
                    gauge.labels(
                        source=source, field=key, worker=worker
                    ).set(value)
            self.progress.append(source, fields)
            if self.alerts is not None:
                self.alerts.evaluate(source, fields, self.metrics)

    def fold_payload(self, payload: dict, worker: str) -> None:
        """Fold a worker's snapshot payload into this registry.

        Every folded sample lands under a ``worker`` label (appended to
        the family's schema, or overriding the existing ``worker``
        value for families — like heartbeats — that already carry one),
        so the coordinator's single scrape exposes per-worker series
        next to its own ``worker="merged"`` report.
        """
        with self.lock:
            self._fold_metrics(payload.get("metrics", {}), str(worker))

    def _fold_metrics(self, metrics: dict, worker: str) -> None:
        reg = self.metrics
        for name in sorted(metrics):
            entry = metrics[name]
            names = tuple(entry.get("label_names", ()))
            schema = names if "worker" in names else names + ("worker",)
            kind = entry["type"]
            help_text = entry.get("help", "")
            if kind == "histogram":
                family = reg.histogram(
                    name, help_text, labels=schema,
                    buckets=tuple(float(b) for b in entry["bounds"]),
                )
            elif kind == "gauge":
                family = reg.gauge(name, help_text, labels=schema)
            else:
                family = reg.counter(name, help_text, labels=schema)
            for sample in entry["samples"]:
                labels = dict(sample["labels"])
                labels["worker"] = worker
                child = family.labels(**labels)
                if kind == "histogram":
                    previous = 0.0
                    cumulative = sample["buckets"]
                    for i, le in enumerate(
                        list(entry["bounds"]) + ["+Inf"]
                    ):
                        total = float(cumulative.get(le, previous))
                        child.bucket_counts[i] += int(total - previous)
                        previous = total
                    child.sum += float(sample["sum"])
                    child.count += int(sample["count"])
                elif kind == "gauge":
                    child.set(sample["value"])
                else:
                    child.inc(sample["value"])

    # -- shared pieces -----------------------------------------------------

    def _replay_counter(self, name, help_text, label_names, extra=()):
        return self.metrics.counter(
            name, help_text, labels=tuple(label_names) + tuple(extra)
        )

    def _record_replay_ledgers(
        self, labels, *, stage_seconds, alarms, health, wall_seconds
    ):
        names = tuple(sorted(labels))
        reg = self.metrics
        for stage in sorted(stage_seconds):
            reg.counter(
                "repro_replay_stage_seconds_total",
                "Accumulated wall seconds per replay stage.",
                labels=("stage",) + names,
            ).labels(stage=stage, **labels).inc(stage_seconds[stage])
        reg.counter(
            "repro_replay_wall_seconds_total",
            "End-to-end replay wall seconds.",
            labels=names,
        ).labels(**labels).inc(wall_seconds)
        for disposition in _ALARM_DISPOSITIONS:
            if disposition in alarms:
                reg.counter(
                    "repro_alarms_total",
                    "Alarm incidents by disposition.",
                    labels=("disposition",) + names,
                ).labels(disposition=disposition, **labels).inc(
                    alarms[disposition]
                )
        for measure in _ALARM_QUALITY:
            if measure in alarms:
                reg.gauge(
                    "repro_alarm_quality",
                    "Alarm-level precision/recall/F1.",
                    labels=("measure",) + names,
                ).labels(measure=measure, **labels).set(alarms[measure])
        reg.counter(
            "repro_quarantine_rejected_events_total",
            "Telemetry records quarantined to the dead-letter topic.",
            labels=names,
        ).labels(**labels).inc(health.get("rejected_events", 0))
        for reason in sorted(health.get("rejects", {})):
            reg.counter(
                "repro_quarantine_rejects_total",
                "Quarantined records by typed RejectReason.",
                labels=("reason",) + names,
            ).labels(reason=reason, **labels).inc(health["rejects"][reason])

    def _record_counts(self, labels, counts):
        names = tuple(sorted(labels))
        helps = {
            "events": "Telemetry events replayed.",
            "ces": "Correctable errors replayed.",
            "ues": "Uncorrectable errors replayed.",
            "mem_events": "Non-CE/UE memory events replayed.",
            "scored": "Model scores produced.",
            "batches": "Micro-batches flushed to the model.",
            "fallback_scores": "Degraded (model-free) scores served.",
            "late_rebuilds": "Late out-of-order state rebuilds.",
        }
        for key, value in counts.items():
            self.metrics.counter(
                "repro_replay_%s_total" % key, helps[key], labels=names
            ).labels(**labels).inc(value)

    def _record_bus(self, bus_counts, extra_labels=None):
        extra = dict(extra_labels or {})
        family = self.metrics.counter(
            "repro_bus_messages_total",
            "EventBus messages published, by topic.",
            labels=("topic",) + tuple(sorted(extra)),
        )
        for topic in sorted(bus_counts):
            family.labels(topic=topic, **extra).inc(bus_counts[topic])

    # -- report projections ------------------------------------------------

    def record_streaming_report(self, report, extra_labels=None) -> None:
        """Project one ``StreamingReport`` onto the registry."""
        labels = {
            "platform": report.platform,
            "model": report.model_name,
            "engine": report.engine,
        }
        labels.update(extra_labels or {})
        with self.lock:
            self._record_counts(labels, {
                "events": report.events,
                "ces": report.ces,
                "ues": report.ues,
                "mem_events": report.mem_events,
                "scored": report.scored,
                "batches": report.batches,
                "fallback_scores": report.fallbacks,
            })
            self._record_replay_ledgers(
                labels,
                stage_seconds=report.stage_seconds,
                alarms=report.alarms or {},
                health=report.health or {},
                wall_seconds=report.seconds,
            )
            self._record_bus(report.bus_counts or {})

    def record_fleet_report(self, report, extra_labels=None) -> None:
        """Project one ``FleetReport`` (merged heterogeneous replay)."""
        extra = dict(extra_labels or {})
        with self.lock:
            for platform in sorted(report.platforms):
                per = report.platforms[platform]
                labels = {
                    "platform": platform,
                    "model": per.get("model", ""),
                    "engine": report.engine,
                }
                labels.update(extra)
                self._record_counts(labels, {
                    "events": per.get("events", 0),
                    "ces": per.get("ces", 0),
                    "ues": per.get("ues", 0),
                    "mem_events": per.get("mem_events", 0),
                    "scored": per.get("scored", 0),
                    "batches": per.get("batches", 0),
                    "fallback_scores": per.get("fallbacks", 0),
                })
                self._record_replay_ledgers(
                    labels,
                    stage_seconds={},
                    alarms=per.get("alarms") or {},
                    health=per.get("health") or {},
                    wall_seconds=0.0,
                )
            fleet_labels = {
                "platform": "fleet", "model": "", "engine": report.engine,
            }
            fleet_labels.update(extra)
            self._record_counts(fleet_labels, {
                "events": report.events,
                "scored": report.scored,
            })
            self._record_replay_ledgers(
                fleet_labels,
                stage_seconds=report.stage_seconds,
                alarms={},
                health=report.health or {},
                wall_seconds=report.seconds,
            )
            cost_gauge = self.metrics.gauge(
                "repro_fleet_cost",
                "Settled fleet cost summary fields.",
                labels=("field",) + tuple(sorted(extra)),
            )
            for key in sorted(report.fleet_cost or {}):
                value = report.fleet_cost[key]
                if isinstance(value, (int, float)):
                    cost_gauge.labels(field=key, **extra).set(value)
            actions = self.metrics.counter(
                "repro_fleet_actions_total",
                "Mitigation actions taken by the policy engine.",
                labels=("action",) + tuple(sorted(extra)),
            )
            for key in sorted(report.actions or {}):
                value = report.actions[key]
                if isinstance(value, (int, float)):
                    actions.labels(action=key, **extra).inc(value)
            self._record_bus(report.bus_counts or {}, extra)

    def record_service_stats(self, stats) -> None:
        """Project one ``ServiceStats`` (async serving SLO counters)."""
        with self.lock:
            self._record_service_stats(stats)

    def _record_service_stats(self, stats) -> None:
        reg = self.metrics
        requests = reg.counter(
            "repro_serve_requests_total",
            "Serving requests by outcome.",
            labels=("outcome",),
        )
        for outcome in (
            "submitted", "answered", "scored", "skipped", "shed", "fallbacks",
        ):
            requests.labels(outcome=outcome).inc(getattr(stats, outcome))
        reg.counter(
            "repro_serve_batches_total", "Model micro-batches scored."
        ).inc(stats.batches)
        summary = stats.summary()
        latency = reg.gauge(
            "repro_serve_latency_ms",
            "Scored-request latency quantiles (milliseconds).",
            labels=("quantile",),
        )
        for quantile in ("p50", "p95", "p99"):
            latency.labels(quantile=quantile).set(summary[quantile + "_ms"])
        reg.gauge(
            "repro_serve_throughput_rps", "Answered requests per second."
        ).set(summary["throughput_rps"])
        hist = reg.histogram(
            "repro_serve_latency_seconds",
            "Scored-request latency distribution.",
        )
        hist._default().observe_many(stats.latencies)
        sizes = reg.histogram(
            "repro_serve_batch_size",
            "Micro-batch size distribution.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        sizes._default().observe_many(stats.batch_sizes)
