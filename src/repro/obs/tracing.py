"""Hierarchical tracing with a deterministic span tree.

A :class:`Tracer` produces one tree of :class:`Span` nodes per run:
``with tracer.span("replay.quarantine"):`` opens a child of the current
span, measures wall (``perf_counter``) and CPU (``process_time``) time,
and pops back on exit.  Stages whose time is *accumulated* across
interleaved micro-batch flushes (features / predict / alarms) are
attached after the fact with :meth:`Tracer.record`, so the tree SHAPE
is a deterministic function of the input — spans exist at stage
granularity, never per-flush — and tests can assert it exactly.

The disabled default is :data:`NULL_TRACER`, whose ``span()`` returns a
reusable no-op context manager: uninstrumented hot paths pay one
attribute lookup and nothing else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One node of the trace tree."""

    __slots__ = (
        "name", "span_id", "parent_id", "attributes",
        "wall_seconds", "cpu_seconds", "children",
    )

    def __init__(self, name, span_id, parent_id, attributes):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: list = []

    def to_dict(self) -> dict:
        """Nested deterministic form (no ids — shape + timings only)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Builds the span tree; one instance per instrumented run."""

    def __init__(self):
        self.roots: list = []
        self._stack: list = []
        self._next_id = 0

    def _new_span(self, name, attributes) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            self._next_id,
            parent.span_id if parent is not None else None,
            dict(attributes),
        )
        self._next_id += 1
        (parent.children if parent is not None else self.roots).append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a timed child span of the current span."""
        span = self._new_span(name, attributes)
        self._stack.append(span)
        wall0, cpu0 = time.perf_counter(), time.process_time()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - wall0
            span.cpu_seconds = time.process_time() - cpu0
            self._stack.pop()

    def record(
        self,
        name: str,
        wall_seconds: float = 0.0,
        cpu_seconds: float = 0.0,
        **attributes,
    ) -> Span:
        """Attach an already-measured span (accumulated stage time)."""
        span = self._new_span(name, attributes)
        span.wall_seconds = float(wall_seconds)
        span.cpu_seconds = float(cpu_seconds)
        return span

    def graft(self, spans) -> list:
        """Attach already-serialized span dicts under the current span.

        Used by the coordinator merge to mount each worker's span tree
        (its ``tracer.tree()`` payload) as children of the fanout span,
        so one scrape of the coordinator shows the whole distributed
        run.  Returns the grafted top-level :class:`Span` nodes.
        """
        grafted: list = []
        for spec in spans or ():
            span = self._new_span(spec["name"], spec.get("attributes", {}))
            span.wall_seconds = float(spec.get("wall_seconds", 0.0))
            span.cpu_seconds = float(spec.get("cpu_seconds", 0.0))
            self._stack.append(span)
            try:
                self.graft(spec.get("children", ()))
            finally:
                self._stack.pop()
            grafted.append(span)
        return grafted

    # -- export ------------------------------------------------------------

    def tree(self) -> list:
        """Nested deterministic dump (list of root span dicts)."""
        return [span.to_dict() for span in self.roots]

    def flat(self) -> list:
        """Depth-first flat dump with ids (for JSONL export)."""
        out: list = []

        def walk(span: Span) -> None:
            out.append({
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "attributes": dict(span.attributes),
                "wall_seconds": span.wall_seconds,
                "cpu_seconds": span.cpu_seconds,
            })
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return out


class _NullSpan:
    """Shared write-only sink; nothing ever reads it."""

    __slots__ = ("attributes",)

    def __init__(self):
        self.attributes: dict = {}

    def to_dict(self) -> dict:
        return {}


class _NullContext:
    __slots__ = ("_span",)

    def __init__(self, span):
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, *exc):
        return False


class NullTracer:
    """No-op tracer: the zero-cost disabled default."""

    __slots__ = ("_context",)

    def __init__(self):
        self._context = _NullContext(_NullSpan())

    def span(self, name: str, **attributes):
        return self._context

    def record(self, name, wall_seconds=0.0, cpu_seconds=0.0, **attributes):
        return self._context._span

    def graft(self, spans) -> list:
        return []

    def tree(self) -> list:
        return []

    def flat(self) -> list:
        return []


#: Module-level singleton — engines default to this when no obs is wired.
NULL_TRACER = NullTracer()
