"""Declarative SLO alert rules evaluated at heartbeat time.

An :class:`AlertRule` is a pure threshold predicate over the numeric
fields of one heartbeat snapshot — optionally a *ratio* of two fields
(``per=`` names the denominator), so rules like "shed rate over
submissions" or "fallback fraction of scores" need no stateful math.

An :class:`AlertEngine` evaluates its rule set against every heartbeat,
appends firings to its log, increments
``repro_alerts_total{rule,severity}`` in the run's registry, and
publishes ``obs.alert`` messages.  The engine owns a *dedicated*
:class:`~repro.streaming.bus.EventBus` unless one is passed in: alert
traffic never lands on an engine's replay bus, so the replay's
``bus_counts`` ledgers stay bit-identical with alerting enabled (the
same obs-parity discipline every instrument obeys).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streaming.bus import EventBus

__all__ = [
    "AlertEngine",
    "AlertRule",
    "DEFAULT_REPLAY_RULES",
    "DEFAULT_SERVE_RULES",
]

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO threshold.

    ``field`` names a heartbeat field; with ``per`` set the evaluated
    value is ``field / per`` (0.0 when the denominator is 0, so rules
    stay quiet during warm-up).  Heartbeats missing either field skip
    the rule entirely — rules are opt-in per source by construction.
    """

    name: str
    field: str
    threshold: float
    op: str = ">"
    per: str | None = None
    severity: str = "warning"

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(
                "unknown alert op %r; valid: %s"
                % (self.op, sorted(_OPS))
            )

    def value(self, fields: dict) -> float | None:
        """The evaluated quantity, or ``None`` if fields are missing."""
        raw = fields.get(self.field)
        if not isinstance(raw, (int, float)):
            return None
        if self.per is None:
            return float(raw)
        denom = fields.get(self.per)
        if not isinstance(denom, (int, float)):
            return None
        return float(raw) / float(denom) if denom else 0.0

    def check(self, fields: dict) -> float | None:
        """The breaching value when the rule fires, else ``None``."""
        value = self.value(fields)
        if value is None:
            return None
        return value if _OPS[self.op](value, self.threshold) else None


#: Replay-path SLOs (chaos_replay wires these): telemetry quality.
DEFAULT_REPLAY_RULES = (
    AlertRule(
        name="dead_letter_rate",
        field="dead_letters",
        per="events",
        threshold=0.05,
        severity="critical",
    ),
    AlertRule(
        name="fallback_fraction",
        field="fallbacks",
        per="scored",
        threshold=0.25,
        severity="warning",
    ),
)

#: Serving-path SLOs (repro serve wires these): latency + backpressure.
DEFAULT_SERVE_RULES = (
    AlertRule(
        name="shed_rate",
        field="shed",
        per="submitted",
        threshold=0.10,
        severity="critical",
    ),
    AlertRule(
        name="p99_latency_ms",
        field="p99_ms",
        threshold=250.0,
        severity="warning",
    ),
    AlertRule(
        name="fallback_fraction",
        field="fallbacks",
        per="answered",
        threshold=0.25,
        severity="warning",
    ),
)


class AlertEngine:
    """Evaluates a rule set at each heartbeat and records firings."""

    def __init__(self, rules=(), bus=None):
        self.rules = tuple(rules)
        # A dedicated bus by default: obs.alert traffic must never
        # perturb the replay buses the parity gates count.
        self.bus = bus if bus is not None else EventBus()
        self.log: list = []

    @property
    def critical_fired(self) -> bool:
        return any(entry["severity"] == "critical" for entry in self.log)

    def evaluate(self, source: str, fields: dict, registry=None) -> list:
        """Check every rule against one heartbeat; returns the firings."""
        fired: list = []
        for rule in self.rules:
            value = rule.check(fields)
            if value is None:
                continue
            entry = {
                "rule": rule.name,
                "severity": rule.severity,
                "source": str(source),
                "value": value,
                "threshold": rule.threshold,
                "op": rule.op,
            }
            fired.append(entry)
            self.log.append(entry)
            if registry is not None:
                registry.counter(
                    "repro_alerts_total",
                    "SLO alert rule firings by rule and severity.",
                    labels=("rule", "severity"),
                ).labels(rule=rule.name, severity=rule.severity).inc()
            self.bus.publish("obs.alert", entry)
        return fired

    def summary(self) -> dict:
        """Firing counts per rule + the worst severity seen."""
        counts: dict = {}
        for entry in self.log:
            counts[entry["rule"]] = counts.get(entry["rule"], 0) + 1
        return {
            "fired": len(self.log),
            "by_rule": counts,
            "critical": self.critical_fired,
        }
