"""Unified observability layer: metrics registry, tracing, exporters.

See :mod:`repro.obs.bridge` for the instrument catalog and span naming
convention.  The whole package is dependency-free (stdlib only) so any
layer of the stack can import it.
"""

from .bridge import Observability
from .export import (
    parse_prometheus,
    payload_from_jsonl,
    payload_to_jsonl,
    read_observability,
    render_span_tree,
    render_summary,
    to_prometheus,
    write_observability,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
    "parse_prometheus",
    "payload_from_jsonl",
    "payload_to_jsonl",
    "percentile",
    "read_observability",
    "render_span_tree",
    "render_summary",
    "to_prometheus",
    "write_observability",
]
