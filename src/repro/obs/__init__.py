"""Unified observability layer: metrics registry, tracing, exporters.

See :mod:`repro.obs.bridge` for the instrument catalog and span naming
convention.  The live telemetry plane (:mod:`repro.obs.server`,
:mod:`repro.obs.timeseries`, :mod:`repro.obs.alerts`) serves the same
deterministic snapshots over HTTP mid-run.  The whole package is
dependency-free (stdlib only, bar the EventBus alert transport) so any
layer of the stack can import it.
"""

from .alerts import (
    DEFAULT_REPLAY_RULES,
    DEFAULT_SERVE_RULES,
    AlertEngine,
    AlertRule,
)
from .bridge import Observability
from .export import (
    parse_prometheus,
    payload_from_jsonl,
    payload_to_jsonl,
    read_observability,
    render_metrics_diff,
    render_span_tree,
    render_summary,
    to_prometheus,
    write_observability,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .server import TelemetryServer
from .timeseries import SnapshotSeries
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_REPLAY_RULES",
    "DEFAULT_SERVE_RULES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SnapshotSeries",
    "Span",
    "TelemetryServer",
    "Tracer",
    "parse_prometheus",
    "payload_from_jsonl",
    "payload_to_jsonl",
    "percentile",
    "read_observability",
    "render_metrics_diff",
    "render_span_tree",
    "render_summary",
    "to_prometheus",
    "write_observability",
]
