"""Exporters: Prometheus text exposition + JSONL metric/span dumps.

All exporters operate on the *snapshot payload* — the JSON-serializable
``{"metrics": registry.snapshot(), "spans": tracer.tree()}`` dict that
scenarios attach to ``extras["observability"]`` — so a live registry
and a dump loaded back from disk render identically.

The JSONL dump format (``--metrics-out``) is one self-describing object
per line::

    {"kind": "meta", "format": "repro-obs-v1"}
    {"kind": "metric", "name": ..., "type": ..., "labels": {...}, ...}
    {"kind": "span", "span_id": ..., "parent_id": ..., "name": ..., ...}

``parse_prometheus`` exists so tests and CI can round-trip the text
exposition back into samples and prove the export is well-formed.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "parse_prometheus",
    "payload_from_jsonl",
    "payload_to_jsonl",
    "read_observability",
    "render_metrics_diff",
    "render_span_tree",
    "render_summary",
    "to_prometheus",
    "write_observability",
]

OBS_FORMAT = "repro-obs-v1"


def _payload(obj) -> dict:
    """Accept an Observability bundle, a registry, or a raw payload."""
    if hasattr(obj, "payload"):
        return obj.payload()
    if hasattr(obj, "snapshot"):
        return {"metrics": obj.snapshot(), "spans": []}
    return obj


# -- prometheus text exposition -------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label(str(value)))
        for name, value in labels.items()
    )
    return "{%s}" % inner


def _format_value(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(obj) -> str:
    """Render a snapshot payload in Prometheus text exposition format."""
    metrics = _payload(obj)["metrics"]
    lines: list = []
    for name in sorted(metrics):
        family = metrics[name]
        # HELP is emitted for every family (empty help included) so
        # parse_prometheus can round-trip the full family metadata.
        lines.append(("# HELP %s %s" % (name, family["help"])).rstrip())
        lines.append("# TYPE %s %s" % (name, family["type"]))
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                for le, cumulative in sample["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        "%s_bucket%s %s"
                        % (name, _label_str(bucket_labels), cumulative)
                    )
                lines.append(
                    "%s_sum%s %s"
                    % (name, _label_str(labels), _format_value(sample["sum"]))
                )
                lines.append(
                    "%s_count%s %s"
                    % (name, _label_str(labels), sample["count"])
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (name, _label_str(labels), _format_value(sample["value"]))
                )
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict:
    labels: dict = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', "label value must be quoted"
        j = eq + 2
        value_chars: list = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt)
                )
                j += 2
            else:
                value_chars.append(text[j])
                j += 1
        labels[name] = "".join(value_chars)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Parse text exposition into ``{"types", "helps", "samples"}``.

    ``samples`` maps ``(name, sorted_label_items_tuple) -> float``;
    ``types`` maps family name -> declared type and ``helps`` family
    name -> HELP text (``""`` when the family carries none).  Raises
    ``ValueError`` on malformed lines or a family whose ``# TYPE`` is
    declared twice, so CI can use it as a validity gate.
    """
    types: dict = {}
    helps: dict = {}
    samples: dict = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            if name in types:
                raise ValueError(
                    "duplicate metric family %r: # TYPE declared twice"
                    % name
                )
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError("malformed sample line: %r" % raw)
            name, value_text = parts
            labels = {}
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError("malformed value in line: %r" % raw) from exc
        samples[(name, tuple(sorted(labels.items())))] = value
    return {"types": types, "helps": helps, "samples": samples}


# -- JSONL dumps -----------------------------------------------------------


def payload_to_jsonl(obj) -> str:
    """Serialize a snapshot payload as kind-tagged JSONL."""
    payload = _payload(obj)
    lines = [json.dumps({"kind": "meta", "format": OBS_FORMAT})]
    metrics = payload.get("metrics", {})
    for name in sorted(metrics):
        family = metrics[name]
        for sample in family["samples"]:
            row = {
                "kind": "metric",
                "name": name,
                "type": family["type"],
                "help": family["help"],
                "labels": sample["labels"],
            }
            if family["type"] == "histogram":
                row["buckets"] = sample["buckets"]
                row["sum"] = sample["sum"]
                row["count"] = sample["count"]
            else:
                row["value"] = sample["value"]
            lines.append(json.dumps(row, sort_keys=True))
    span_id = 0

    def walk(span: dict, parent_id) -> None:
        nonlocal span_id
        this_id = span_id
        span_id += 1
        lines.append(json.dumps({
            "kind": "span",
            "span_id": this_id,
            "parent_id": parent_id,
            "name": span["name"],
            "attributes": span.get("attributes", {}),
            "wall_seconds": span.get("wall_seconds", 0.0),
            "cpu_seconds": span.get("cpu_seconds", 0.0),
        }, sort_keys=True))
        for child in span.get("children", ()):
            walk(child, this_id)

    for root in payload.get("spans", ()):
        walk(root, None)
    return "\n".join(lines) + "\n"


def payload_from_jsonl(text: str) -> dict:
    """Rebuild ``{"metrics": ..., "spans": ...}`` from a JSONL dump."""
    metrics: dict = {}
    spans_by_id: dict = {}
    roots: list = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.get("kind")
        if kind == "meta":
            if row.get("format") != OBS_FORMAT:
                raise ValueError(
                    "unsupported obs dump format %r" % row.get("format")
                )
        elif kind == "metric":
            family = metrics.setdefault(row["name"], {
                "type": row["type"],
                "help": row.get("help", ""),
                "label_names": sorted(row["labels"]),
                "samples": [],
            })
            sample = {"labels": row["labels"]}
            if row["type"] == "histogram":
                sample["buckets"] = row["buckets"]
                sample["sum"] = row["sum"]
                sample["count"] = row["count"]
            else:
                sample["value"] = row["value"]
            family["samples"].append(sample)
        elif kind == "span":
            span = {
                "name": row["name"],
                "attributes": row.get("attributes", {}),
                "wall_seconds": row.get("wall_seconds", 0.0),
                "cpu_seconds": row.get("cpu_seconds", 0.0),
                "children": [],
            }
            spans_by_id[row["span_id"]] = span
            parent = spans_by_id.get(row.get("parent_id"))
            (parent["children"] if parent is not None else roots).append(span)
        else:
            raise ValueError("unknown obs dump row kind %r" % kind)
    return {"metrics": metrics, "spans": roots}


def write_observability(path, obj) -> Path:
    path = Path(path)
    path.write_text(payload_to_jsonl(obj), encoding="utf-8")
    return path


def read_observability(path) -> dict:
    return payload_from_jsonl(Path(path).read_text(encoding="utf-8"))


# -- human renderers -------------------------------------------------------


def render_span_tree(obj) -> str:
    """Indented span tree with wall/CPU timings."""
    payload = _payload(obj)
    lines: list = []

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attributes") or {}
        attr_text = (
            " [" + " ".join(
                "%s=%s" % (k, attrs[k]) for k in sorted(attrs)
            ) + "]"
            if attrs
            else ""
        )
        lines.append(
            "%s%s  wall=%.3fs cpu=%.3fs%s"
            % (
                "  " * depth,
                span["name"],
                span.get("wall_seconds", 0.0),
                span.get("cpu_seconds", 0.0),
                attr_text,
            )
        )
        for child in span.get("children", ()):
            walk(child, depth + 1)

    for root in payload.get("spans", ()):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def render_summary(obj) -> str:
    """One-screen overview: family counts + top-level spans."""
    payload = _payload(obj)
    metrics = payload.get("metrics", {})
    n_samples = sum(len(f["samples"]) for f in metrics.values())
    lines = [
        "observability: %d metric families, %d samples, %d root spans"
        % (len(metrics), n_samples, len(payload.get("spans", ()))),
    ]
    for name in sorted(metrics):
        family = metrics[name]
        lines.append(
            "  %-46s %-9s %d sample(s)"
            % (name, family["type"], len(family["samples"]))
        )
    for root in payload.get("spans", ()):
        lines.append(
            "  span %s: wall=%.3fs, %d children"
            % (
                root["name"],
                root.get("wall_seconds", 0.0),
                len(root.get("children", ())),
            )
        )
    return "\n".join(lines)


def _sample_key(sample: dict) -> tuple:
    return tuple(sorted(sample["labels"].items()))


def _label_text(key: tuple) -> str:
    if not key:
        return "{}"
    return "{%s}" % ",".join("%s=%s" % (k, v) for k, v in key)


def _hist_quantile(buckets: dict, count: float, q: float) -> float | None:
    """Upper-bound estimate of quantile ``q`` from cumulative buckets.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * count`` (``None`` for the +Inf bucket or empty
    histograms) — coarse, but enough to eyeball latency shifts.
    """
    if count <= 0:
        return None
    target = q * count
    for le, cumulative in buckets.items():
        if cumulative >= target:
            return None if le == "+Inf" else float(le)
    return None


def render_metrics_diff(a, b, a_name: str = "A", b_name: str = "B") -> str:
    """Per-family deltas between two snapshot payloads.

    Counters and gauges diff by value; histograms diff count/sum and
    report estimated p50/p99 shifts from the cumulative buckets.
    Families or samples present in only one payload are called out.
    Built for ``repro metrics --diff A.jsonl B.jsonl``.
    """
    metrics_a = _payload(a).get("metrics", {})
    metrics_b = _payload(b).get("metrics", {})
    lines = ["metrics diff: %s -> %s" % (a_name, b_name)]
    changed = 0
    for name in sorted(set(metrics_a) | set(metrics_b)):
        fam_a, fam_b = metrics_a.get(name), metrics_b.get(name)
        if fam_a is None or fam_b is None:
            only = b_name if fam_a is None else a_name
            family = fam_b if fam_a is None else fam_a
            lines.append(
                "  %s (%s): only in %s (%d sample(s))"
                % (name, family["type"], only, len(family["samples"]))
            )
            changed += 1
            continue
        samples_a = {_sample_key(s): s for s in fam_a["samples"]}
        samples_b = {_sample_key(s): s for s in fam_b["samples"]}
        body: list = []
        for key in sorted(set(samples_a) | set(samples_b)):
            sa, sb = samples_a.get(key), samples_b.get(key)
            if sa is None or sb is None:
                body.append(
                    "    %s: only in %s"
                    % (_label_text(key), b_name if sa is None else a_name)
                )
                continue
            if fam_a["type"] == "histogram":
                if sa["count"] == sb["count"] and sa["sum"] == sb["sum"]:
                    continue
                shifts = []
                for q, tag in ((0.5, "p50"), (0.99, "p99")):
                    qa = _hist_quantile(sa["buckets"], sa["count"], q)
                    qb = _hist_quantile(sb["buckets"], sb["count"], q)
                    if qa != qb:
                        shifts.append(
                            "%s %s -> %s"
                            % (tag, "le%g" % qa if qa is not None else "+Inf",
                               "le%g" % qb if qb is not None else "+Inf")
                        )
                body.append(
                    "    %s: count %d -> %d (%+d), sum %g -> %g%s"
                    % (
                        _label_text(key), sa["count"], sb["count"],
                        sb["count"] - sa["count"], sa["sum"], sb["sum"],
                        (", " + ", ".join(shifts)) if shifts else "",
                    )
                )
            else:
                if sa["value"] == sb["value"]:
                    continue
                body.append(
                    "    %s: %g -> %g (%+g)"
                    % (
                        _label_text(key), sa["value"], sb["value"],
                        sb["value"] - sa["value"],
                    )
                )
        if body:
            lines.append("  %s (%s)" % (name, fam_a["type"]))
            lines.extend(body)
            changed += 1
    if not changed:
        lines.append("  (no differences)")
    return "\n".join(lines)
