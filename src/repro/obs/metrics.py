"""Typed metrics instruments with deterministic snapshots.

One :class:`MetricsRegistry` per run is the single sink for every
operational counter in the replay/serving stack: replay stage timings,
SLO counters, quarantine ledgers, cache hits, and the mlops dashboard
all land here as :class:`Counter` / :class:`Gauge` / :class:`Histogram`
families with fixed label sets.

Determinism contract: :meth:`MetricsRegistry.snapshot` depends only on
the sequence of instrument updates — families are emitted in sorted
name order and label sets in sorted label-value order, so two runs that
perform the same updates (in any interleaving) produce byte-identical
JSON.  Nothing here touches RNG state, event ordering, or numerics of
the instrumented code, which is what makes instrumented replays
bit-identical to uninstrumented ones.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Latency-shaped default bucket boundaries (seconds), upper-inclusive.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def percentile(values, q: float) -> float:
    """Deterministic nearest-rank percentile.

    Well-defined on every input size: ``[] -> 0.0`` and ``[x] -> x``
    for any ``q`` (the empty/one-sample SLO edge cases), otherwise the
    1-based nearest-rank element of the sorted values.  Pure python —
    no float interpolation, so the result is always an observed value.
    """
    vals = sorted(float(v) for v in values)
    if not vals:
        return 0.0
    if q <= 0.0:
        return vals[0]
    if q >= 100.0:
        return vals[-1]
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return vals[rank - 1]


def format_bound(bound: float) -> str:
    """Canonical ``le`` label for a bucket upper bound."""
    if math.isinf(bound):
        return "+Inf"
    return format(bound, "g")


class Counter:
    """Monotonically increasing count (one label set of a family)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got %r" % (amount,))
        self.value += amount


class Gauge:
    """A value that can go up and down (one label set of a family)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-boundary cumulative histogram (one label set of a family)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: tuple):
        self.bounds = bounds
        # one overflow slot past the last finite bound (the +Inf bucket)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def cumulative(self) -> list:
        """``(le_label, cumulative_count)`` pairs ending at ``+Inf``."""
        out, running = [], 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((format_bound(bound), running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out


class _Family:
    """One named metric: a kind, a label schema, and its children."""

    __slots__ = ("kind", "name", "help", "label_names", "buckets", "_children")

    def __init__(self, kind, name, help_text, label_names, buckets=None):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: dict = {}

    def labels(self, **labels):
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                "%s expects labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels)))
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    # -- no-label conveniences (proxy to the single unlabeled child) ---

    def _default(self):
        if self.label_names:
            raise ValueError(
                "%s has labels %r; use .labels(...)"
                % (self.name, self.label_names)
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def observe_many(self, values) -> None:
        self._default().observe_many(values)

    def samples(self) -> list:
        """``(label_values_tuple, child)`` pairs in sorted label order."""
        return sorted(self._children.items())


class MetricsRegistry:
    """Create-or-get factory for metric families + deterministic export."""

    def __init__(self):
        self._families: dict = {}

    # -- registration ------------------------------------------------------

    def counter(self, name, help="", labels=()):  # noqa: A002 - prom idiom
        return self._register("counter", name, help, labels)

    def gauge(self, name, help="", labels=()):  # noqa: A002
        return self._register("gauge", name, help, labels)

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):  # noqa: A002
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram %s needs at least one bucket" % name)
        return self._register("histogram", name, help, labels, buckets)

    def _register(self, kind, name, help_text, labels, buckets=None):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % (label,))
        family = self._families.get(name)
        if family is not None:
            if (family.kind, family.label_names, family.buckets) != (
                kind, labels, buckets,
            ):
                raise ValueError(
                    "metric %s re-registered with a different signature" % name
                )
            return family
        family = _Family(kind, name, help_text, labels, buckets)
        self._families[name] = family
        return family

    def get(self, name, default=None):
        return self._families.get(name, default)

    def families(self) -> list:
        return [self._families[name] for name in sorted(self._families)]

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic JSON-serializable dump of every family.

        Families in sorted name order, samples in sorted label order —
        independent of registration/update interleaving.
        """
        out: dict = {}
        for family in self.families():
            samples = []
            for values, child in family.samples():
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "buckets": dict(child.cumulative()),
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            entry = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["bounds"] = [format_bound(b) for b in family.buckets]
            out[family.name] = entry
        return out
