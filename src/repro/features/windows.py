"""Per-DIMM history in array form for fast windowed feature extraction.

The feature extractors slice a DIMM's CE/event history by time window many
times per sample; :class:`DimmHistory` stores everything as sorted numpy
arrays so each slice is two binary searches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.records import CERecord, MemEventKind, MemEventRecord

#: Observation sub-windows (hours) used by the temporal extractor; the
#: paper's feature store materialises CE statistics at several intervals.
SUB_WINDOWS_HOURS = (1.0, 6.0, 24.0, 120.0)


@dataclass
class DimmHistory:
    """Sorted array view of one DIMM's telemetry."""

    dimm_id: str
    server_id: str
    times: np.ndarray  # CE timestamps (hours), sorted
    dq_count: np.ndarray
    beat_count: np.ndarray
    dq_interval: np.ndarray
    beat_interval: np.ndarray
    n_devices: np.ndarray
    error_bits: np.ndarray
    rows: np.ndarray
    columns: np.ndarray
    banks: np.ndarray
    devices: np.ndarray  # primary (worst) device per CE
    storm_times: np.ndarray
    repair_times: np.ndarray  # page offline + sparing events

    @classmethod
    def from_records(
        cls,
        dimm_id: str,
        ces: list[CERecord],
        events: list[MemEventRecord],
    ) -> "DimmHistory":
        ces = sorted(ces, key=lambda ce: ce.timestamp_hours)
        server_id = ces[0].server_id if ces else ""
        storm_times = sorted(
            e.timestamp_hours for e in events if e.kind is MemEventKind.CE_STORM
        )
        repair_kinds = (
            MemEventKind.PAGE_OFFLINE,
            MemEventKind.ROW_SPARED,
            MemEventKind.BANK_SPARED,
            MemEventKind.PCLS_APPLIED,
        )
        repair_times = sorted(
            e.timestamp_hours for e in events if e.kind in repair_kinds
        )
        return cls(
            dimm_id=dimm_id,
            server_id=server_id,
            times=np.array([ce.timestamp_hours for ce in ces], dtype=float),
            dq_count=np.array([ce.dq_count for ce in ces], dtype=float),
            beat_count=np.array([ce.beat_count for ce in ces], dtype=float),
            dq_interval=np.array([ce.dq_interval for ce in ces], dtype=float),
            beat_interval=np.array([ce.beat_interval for ce in ces], dtype=float),
            n_devices=np.array([len(ce.devices) for ce in ces], dtype=float),
            error_bits=np.array([ce.error_bit_count for ce in ces], dtype=float),
            rows=np.array([ce.row for ce in ces], dtype=np.int64),
            columns=np.array([ce.column for ce in ces], dtype=np.int64),
            banks=np.array([ce.bank for ce in ces], dtype=np.int64),
            devices=np.array(
                [ce.devices[0] if ce.devices else 0 for ce in ces], dtype=np.int64
            ),
            storm_times=np.asarray(storm_times, dtype=float),
            repair_times=np.asarray(repair_times, dtype=float),
        )

    def window(self, start_hour: float, end_hour: float) -> slice:
        """Index slice of CEs with timestamps in ``[start, end)``."""
        lo = int(np.searchsorted(self.times, start_hour, side="left"))
        hi = int(np.searchsorted(self.times, end_hour, side="left"))
        return slice(lo, hi)

    def count_in(self, start_hour: float, end_hour: float) -> int:
        sl = self.window(start_hour, end_hour)
        return sl.stop - sl.start

    def storms_in(self, start_hour: float, end_hour: float) -> int:
        lo = int(np.searchsorted(self.storm_times, start_hour, side="left"))
        hi = int(np.searchsorted(self.storm_times, end_hour, side="left"))
        return hi - lo

    def repairs_in(self, start_hour: float, end_hour: float) -> int:
        lo = int(np.searchsorted(self.repair_times, start_hour, side="left"))
        hi = int(np.searchsorted(self.repair_times, end_hour, side="left"))
        return hi - lo

    @property
    def first_ce_hour(self) -> float | None:
        return float(self.times[0]) if self.times.size else None

    def __len__(self) -> int:
        return int(self.times.size)
