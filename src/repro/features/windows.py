"""Per-DIMM history in array form for fast windowed feature extraction.

The feature extractors slice a DIMM's CE/event history by time window many
times per sample; :class:`DimmHistory` stores everything as sorted numpy
arrays so each slice is two binary searches.

Two batch-era companions live here as well:

* :class:`BatchWindows` precomputes, once per (history, sample-times) pair,
  the window boundary indices every extractor needs — one
  ``np.searchsorted`` of all sample times per distinct boundary array —
  so the vectorized ``compute_batch`` paths replace per-sample slicing
  with cumulative-sum / segment aggregations over shared indices.
* :class:`AppendableDimmHistory` grows amortised-O(1) per record (doubling
  buffers) and hands out zero-copy :class:`DimmHistory` views, so streaming
  consumers stop rebuilding every array from raw records on each CE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.columnar import FleetArrays, segmented_searchsorted
from repro.telemetry.records import CERecord, MemEventKind, MemEventRecord

#: Observation sub-windows (hours) used by the temporal extractor; the
#: paper's feature store materialises CE statistics at several intervals.
SUB_WINDOWS_HOURS = (1.0, 6.0, 24.0, 120.0)

#: Inclusive-end slack: windows end at ``t + EPS`` so the CE that triggered
#: a sample at time ``t`` is part of its own observation window.
EPS = 1e-9

#: Memory events that count as repair actions.
REPAIR_KINDS = (
    MemEventKind.PAGE_OFFLINE,
    MemEventKind.ROW_SPARED,
    MemEventKind.BANK_SPARED,
    MemEventKind.PCLS_APPLIED,
)


@dataclass
class DimmHistory:
    """Sorted array view of one DIMM's telemetry."""

    dimm_id: str
    server_id: str
    times: np.ndarray  # CE timestamps (hours), sorted
    dq_count: np.ndarray
    beat_count: np.ndarray
    dq_interval: np.ndarray
    beat_interval: np.ndarray
    n_devices: np.ndarray
    error_bits: np.ndarray
    rows: np.ndarray
    columns: np.ndarray
    banks: np.ndarray
    devices: np.ndarray  # primary (worst) device per CE
    storm_times: np.ndarray
    repair_times: np.ndarray  # page offline + sparing events

    @classmethod
    def from_records(
        cls,
        dimm_id: str,
        ces: list[CERecord],
        events: list[MemEventRecord],
    ) -> "DimmHistory":
        ces = sorted(ces, key=lambda ce: ce.timestamp_hours)
        server_id = ces[0].server_id if ces else ""
        storm_times = sorted(
            e.timestamp_hours for e in events if e.kind is MemEventKind.CE_STORM
        )
        repair_times = sorted(
            e.timestamp_hours for e in events if e.kind in REPAIR_KINDS
        )
        # One pass over the records; a single (n, 11) array split into
        # columns is much cheaper than eleven per-field comprehensions.
        table = np.array(
            [
                (
                    ce.timestamp_hours,
                    ce.dq_count,
                    ce.beat_count,
                    ce.dq_interval,
                    ce.beat_interval,
                    len(ce.devices),
                    ce.error_bit_count,
                    ce.row,
                    ce.column,
                    ce.bank,
                    ce.devices[0] if ce.devices else 0,
                )
                for ce in ces
            ],
            dtype=float,
        ).reshape(len(ces), 11)
        return cls(
            dimm_id=dimm_id,
            server_id=server_id,
            times=table[:, 0].copy(),
            dq_count=table[:, 1].copy(),
            beat_count=table[:, 2].copy(),
            dq_interval=table[:, 3].copy(),
            beat_interval=table[:, 4].copy(),
            n_devices=table[:, 5].copy(),
            error_bits=table[:, 6].copy(),
            rows=table[:, 7].astype(np.int64),
            columns=table[:, 8].astype(np.int64),
            banks=table[:, 9].astype(np.int64),
            devices=table[:, 10].astype(np.int64),
            storm_times=np.asarray(storm_times, dtype=float),
            repair_times=np.asarray(repair_times, dtype=float),
        )

    def window(self, start_hour: float, end_hour: float) -> slice:
        """Index slice of CEs with timestamps in ``[start, end)``."""
        lo = int(np.searchsorted(self.times, start_hour, side="left"))
        hi = int(np.searchsorted(self.times, end_hour, side="left"))
        return slice(lo, hi)

    def count_in(self, start_hour: float, end_hour: float) -> int:
        sl = self.window(start_hour, end_hour)
        return sl.stop - sl.start

    def storms_in(self, start_hour: float, end_hour: float) -> int:
        lo = int(np.searchsorted(self.storm_times, start_hour, side="left"))
        hi = int(np.searchsorted(self.storm_times, end_hour, side="left"))
        return hi - lo

    def repairs_in(self, start_hour: float, end_hour: float) -> int:
        lo = int(np.searchsorted(self.repair_times, start_hour, side="left"))
        hi = int(np.searchsorted(self.repair_times, end_hour, side="left"))
        return hi - lo

    @property
    def first_ce_hour(self) -> float | None:
        return float(self.times[0]) if self.times.size else None

    def __len__(self) -> int:
        return int(self.times.size)


def as_dimm_history(history) -> DimmHistory:
    """Accept either a :class:`DimmHistory` or anything with a ``view()``."""
    view = getattr(history, "view", None)
    return view() if callable(view) else history


class BatchWindows:
    """Shared precomputed window indices for a batch of sample times.

    Every extractor's ``compute_batch`` works off the same ``(lo, hi)``
    index pairs into ``history.times``: ``hi`` is computed once, and the
    ``lo`` for each distinct window length is computed on first use and
    cached, so the whole feature layer issues one ``np.searchsorted`` per
    boundary array instead of two per (sample, window) pair.
    """

    def __init__(self, history: DimmHistory, ts: np.ndarray):
        self.history = history
        self.ts = np.asarray(ts, dtype=float)
        #: Window end bound (``t + EPS``), shared by every window length.
        self.ends = self.ts + EPS
        self.hi = np.searchsorted(history.times, self.ends, side="left")
        self._lo: dict[float, np.ndarray] = {}
        self._pairs: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    def lo(self, window_hours: float) -> np.ndarray:
        """Start indices of the ``[t - w, t + EPS)`` windows (cached)."""
        key = float(window_hours)
        lo = self._lo.get(key)
        if lo is None:
            lo = np.searchsorted(
                self.history.times, self.ts - key, side="left"
            )
            self._lo[key] = lo
        return lo

    def prefetch(self, windows_hours) -> None:
        """Resolve several window lengths with one fused ``searchsorted``."""
        missing = [
            w for w in dict.fromkeys(map(float, windows_hours))
            if w not in self._lo
        ]
        if not missing:
            return
        boundaries = np.concatenate([self.ts - w for w in missing])
        found = np.searchsorted(self.history.times, boundaries, side="left")
        n = self.ts.size
        for j, w in enumerate(missing):
            self._lo[w] = found[j * n : (j + 1) * n]

    def counts(self, window_hours: float) -> np.ndarray:
        """CE counts in ``[t - w, t + EPS)`` per sample."""
        return self.hi - self.lo(window_hours)

    def expand(self, lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flatten windows into parallel ``(sample_id, ce_index)`` arrays.

        Sample ids come out sorted, so each sample's window members form a
        contiguous segment — the layout the segment aggregations rely on.
        """
        sizes = hi - lo
        total = int(sizes.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sample_ids = np.repeat(np.arange(sizes.size), sizes)
        starts = np.cumsum(sizes) - sizes
        offsets = np.arange(total) - np.repeat(starts, sizes)
        return sample_ids, np.repeat(lo, sizes) + offsets

    def pairs(self, window_hours: float) -> tuple[np.ndarray, np.ndarray]:
        """Cached :meth:`expand` of the ``[t - w, t + EPS)`` windows.

        The spatial and bit-level extractors work on the same observation
        window, so the flattened (sample, CE) pairs are built once and
        shared.
        """
        key = float(window_hours)
        cached = self._pairs.get(key)
        if cached is None:
            cached = self.expand(self.lo(key), self.hi)
            self._pairs[key] = cached
        return cached

    # -- history context hooks (overridden segment-aware by FleetWindows) --

    def gap_array(self) -> np.ndarray:
        """Inter-arrival gaps of ``history.times`` with an ``inf`` sentinel.

        Derived purely from the (immutable) history, so replay kernels
        override this to serve one cached copy instead of re-deriving it
        for every micro-batch.
        """
        return np.append(np.diff(self.history.times), np.inf)

    def multi_device_prefix(self) -> np.ndarray:
        """Prefix counts of multi-device CEs (cacheable like
        :meth:`gap_array`)."""
        return prefix_sum(self.history.n_devices >= 2)

    def since_first(self, observation_hours: float) -> np.ndarray:
        """Hours between each sample time and its DIMM's first CE."""
        times = self.history.times
        if times.size:
            return self.ts - times[0]
        return np.full(self.ts.size, float(observation_hours))

    def storm_counts(
        self, observation_hours: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample CE-storm counts in ``[t - w, t + EPS)`` and ``[0, t + EPS)``."""
        storm_times = self.history.storm_times
        n = self.ts.size
        if not storm_times.size:
            return np.zeros(n), np.zeros(n)
        bounds = np.searchsorted(
            storm_times,
            np.concatenate([self.ends, self.ts - observation_hours]),
            side="left",
        )
        lo0 = int(np.searchsorted(storm_times, 0.0, side="left"))
        return bounds[:n] - bounds[n:], bounds[:n] - lo0

    def repair_counts(self, observation_hours: float) -> np.ndarray:
        """Per-sample repair-action counts in ``[t - w, t + EPS)``."""
        repair_times = self.history.repair_times
        n = self.ts.size
        if not repair_times.size:
            return np.zeros(n)
        bounds = np.searchsorted(
            repair_times,
            np.concatenate([self.ends, self.ts - observation_hours]),
            side="left",
        )
        return bounds[:n] - bounds[n:]


class FleetWindows(BatchWindows):
    """Segment-aware :class:`BatchWindows` over a whole fleet at once.

    ``fleet`` is a :class:`repro.telemetry.columnar.FleetArrays` — every
    DIMM's history concatenated into ragged arrays — and sample ``i``
    belongs to DIMM segment ``sample_seg[i]``.  Window indices are *global*
    (into the concatenated arrays), and every boundary resolution happens
    in one fleet-wide merge (:func:`segmented_searchsorted`) instead of two
    ``np.searchsorted`` calls per DIMM.  Because window members never cross
    segment boundaries, the inherited aggregation machinery (``counts`` /
    ``expand`` / ``pairs`` and the extractors' segment reductions keyed by
    sample id) runs unchanged — once — over the whole fleet, bit-for-bit
    equal to the per-DIMM passes it fuses.
    """

    def __init__(
        self, fleet: FleetArrays, ts: np.ndarray, sample_seg: np.ndarray
    ):
        self.history = fleet
        self.ts = np.asarray(ts, dtype=float)
        self.sample_seg = np.asarray(sample_seg, dtype=np.int64)
        self.ends = self.ts + EPS
        self._base = fleet.ce_offsets[self.sample_seg]
        self.hi = self._resolve(self.ends)
        self._lo: dict[float, np.ndarray] = {}
        self._pairs: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    def _resolve(self, boundaries: np.ndarray) -> np.ndarray:
        within = segmented_searchsorted(
            self.history.times,
            self.history.ce_offsets,
            boundaries,
            self.sample_seg,
        )
        return within + self._base

    def lo(self, window_hours: float) -> np.ndarray:
        key = float(window_hours)
        lo = self._lo.get(key)
        if lo is None:
            lo = self._resolve(self.ts - key)
            self._lo[key] = lo
        return lo

    def prefetch(self, windows_hours) -> None:
        """Resolve several window lengths with one fused segmented merge."""
        missing = [
            w for w in dict.fromkeys(map(float, windows_hours))
            if w not in self._lo
        ]
        if not missing:
            return
        boundaries = np.concatenate([self.ts - w for w in missing])
        segments = np.tile(self.sample_seg, len(missing))
        found = segmented_searchsorted(
            self.history.times, self.history.ce_offsets, boundaries, segments
        )
        n = self.ts.size
        for j, w in enumerate(missing):
            self._lo[w] = found[j * n : (j + 1) * n] + self._base

    def since_first(self, observation_hours: float) -> np.ndarray:
        fleet = self.history
        counts = np.diff(fleet.ce_offsets)
        if fleet.times.size:
            firsts = fleet.times[
                np.minimum(fleet.ce_offsets[:-1], fleet.times.size - 1)
            ]
        else:
            firsts = np.zeros(counts.size)
        seg = self.sample_seg
        return np.where(
            counts[seg] > 0, self.ts - firsts[seg], float(observation_hours)
        )

    def storm_counts(
        self, observation_hours: float
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._event_counts(
            self.history.storm_times,
            self.history.storm_offsets,
            observation_hours,
            with_total=True,
        )

    def repair_counts(self, observation_hours: float) -> np.ndarray:
        return self._event_counts(
            self.history.repair_times,
            self.history.repair_offsets,
            observation_hours,
            with_total=False,
        )

    @property
    def event_ends(self) -> np.ndarray:
        """Upper bound for storm/repair window queries.

        The offline pass counts events in ``[t - w, t + EPS)``; the replay
        kernels override this to ``t`` (arrival-exact: an event logged at
        exactly ``t`` sorts *after* the CE in stream order, so the
        per-event state has not seen it yet when the CE is served).
        """
        return self.ends

    def _event_counts(
        self,
        times: np.ndarray,
        offsets: np.ndarray,
        observation_hours: float,
        with_total: bool,
    ):
        n = self.ts.size
        if not times.size:
            return (np.zeros(n), np.zeros(n)) if with_total else np.zeros(n)
        queries = np.concatenate([self.event_ends, self.ts - observation_hours])
        segments = np.tile(self.sample_seg, 2)
        bounds = segmented_searchsorted(times, offsets, queries, segments)
        hi, lo = bounds[:n], bounds[n:]
        if not with_total:
            return hi - lo
        lo0 = segmented_searchsorted(
            times,
            offsets,
            np.zeros(offsets.size - 1),
            np.arange(offsets.size - 1),
        )
        return hi - lo, hi - lo0[self.sample_seg]


def prefix_sum(values: np.ndarray) -> np.ndarray:
    """Length ``n + 1`` cumulative sum; window sums become two gathers."""
    out = np.zeros(values.size + 1, dtype=float)
    np.cumsum(values, out=out[1:])
    return out


class AppendableDimmHistory:
    """Per-DIMM history that grows amortised-O(1) per appended record.

    The streaming serving path appends each CE / memory event as it
    arrives; :meth:`view` exposes the accumulated state as a zero-copy
    :class:`DimmHistory` over the internal doubling buffers, so replay is
    linear in the number of records instead of quadratic.
    Out-of-order arrivals are tolerated: the buffers are re-sorted lazily
    on the next :meth:`view`.
    """

    _FLOAT_COLUMNS = (
        "times",
        "dq_count",
        "beat_count",
        "dq_interval",
        "beat_interval",
        "n_devices",
        "error_bits",
    )
    _INT_COLUMNS = ("rows", "columns", "banks", "devices")

    def __init__(self, dimm_id: str, server_id: str = ""):
        self.dimm_id = dimm_id
        self.server_id = server_id
        self._n = 0
        self._cols: dict[str, np.ndarray] = {
            name: np.empty(16, dtype=float) for name in self._FLOAT_COLUMNS
        }
        self._cols.update(
            {name: np.empty(16, dtype=np.int64) for name in self._INT_COLUMNS}
        )
        self._storms = np.empty(8, dtype=float)
        self._n_storms = 0
        self._repairs = np.empty(8, dtype=float)
        self._n_repairs = 0
        self._ces_sorted = True
        self._storms_sorted = True
        self._repairs_sorted = True
        self._view: DimmHistory | None = None

    # -- ingestion ---------------------------------------------------------

    def append(self, record) -> None:
        """Dispatch on record type (UEs end a DIMM's life; not history)."""
        if isinstance(record, CERecord):
            self.append_ce(record)
        elif isinstance(record, MemEventRecord):
            self.append_event(record)
        else:
            raise TypeError(f"cannot append {type(record)!r}")

    def append_ce(self, ce: CERecord) -> None:
        cols = self._cols
        i = self._n
        if i == cols["times"].size:
            self._grow()
            cols = self._cols
        cols["times"][i] = ce.timestamp_hours
        cols["dq_count"][i] = ce.dq_count
        cols["beat_count"][i] = ce.beat_count
        cols["dq_interval"][i] = ce.dq_interval
        cols["beat_interval"][i] = ce.beat_interval
        cols["n_devices"][i] = len(ce.devices)
        cols["error_bits"][i] = ce.error_bit_count
        cols["rows"][i] = ce.row
        cols["columns"][i] = ce.column
        cols["banks"][i] = ce.bank
        cols["devices"][i] = ce.devices[0] if ce.devices else 0
        if i and ce.timestamp_hours < cols["times"][i - 1]:
            self._ces_sorted = False
        if not self.server_id:
            self.server_id = ce.server_id
        self._n = i + 1
        self._view = None

    def append_event(self, event: MemEventRecord) -> None:
        if event.kind is MemEventKind.CE_STORM:
            self._storms, self._n_storms, self._storms_sorted = _append_time(
                self._storms, self._n_storms, self._storms_sorted,
                event.timestamp_hours,
            )
            self._view = None
        elif event.kind in REPAIR_KINDS:
            self._repairs, self._n_repairs, self._repairs_sorted = _append_time(
                self._repairs, self._n_repairs, self._repairs_sorted,
                event.timestamp_hours,
            )
            self._view = None

    def _grow(self) -> None:
        for name, buffer in self._cols.items():
            grown = np.empty(buffer.size * 2, dtype=buffer.dtype)
            grown[: self._n] = buffer[: self._n]
            self._cols[name] = grown

    # -- views -------------------------------------------------------------

    def view(self) -> DimmHistory:
        """Current state as a :class:`DimmHistory` (zero-copy slices).

        The view aliases the internal buffers: use it before the next
        append (a later append may grow or re-sort the buffers in place).
        """
        if self._view is None:
            n = self._n
            if not self._ces_sorted:
                order = np.argsort(self._cols["times"][:n], kind="stable")
                for name, buffer in self._cols.items():
                    buffer[:n] = buffer[:n][order]
                self._ces_sorted = True
            if not self._storms_sorted:
                self._storms[: self._n_storms].sort()
                self._storms_sorted = True
            if not self._repairs_sorted:
                self._repairs[: self._n_repairs].sort()
                self._repairs_sorted = True
            cols = self._cols
            self._view = DimmHistory(
                dimm_id=self.dimm_id,
                server_id=self.server_id,
                times=cols["times"][:n],
                dq_count=cols["dq_count"][:n],
                beat_count=cols["beat_count"][:n],
                dq_interval=cols["dq_interval"][:n],
                beat_interval=cols["beat_interval"][:n],
                n_devices=cols["n_devices"][:n],
                error_bits=cols["error_bits"][:n],
                rows=cols["rows"][:n],
                columns=cols["columns"][:n],
                banks=cols["banks"][:n],
                devices=cols["devices"][:n],
                storm_times=self._storms[: self._n_storms],
                repair_times=self._repairs[: self._n_repairs],
            )
        return self._view

    def __len__(self) -> int:
        return self._n


def _append_time(
    buffer: np.ndarray, n: int, was_sorted: bool, timestamp: float
) -> tuple[np.ndarray, int, bool]:
    if n == buffer.size:
        grown = np.empty(buffer.size * 2, dtype=float)
        grown[:n] = buffer[:n]
        buffer = grown
    buffer[n] = timestamp
    if n and timestamp < buffer[n - 1]:
        was_sorted = False
    return buffer, n + 1, was_sorted
