"""End-to-end feature pipeline: LogStore -> labeled SampleSet.

Mirrors the paper's feature-store transformations (Section VII): temporal,
spatial, bit-level, static and environment features, computed per sampling
instant, with labels from :mod:`repro.features.labeling`.  The same
pipeline object serves batch construction (training) and single-sample
transformation (online serving), guaranteeing train/serve consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.bitlevel import BitLevelExtractor
from repro.features.labeling import (
    LabelingParams,
    SampleValidity,
    label_at,
    sample_validity,
)
from repro.features.sampling import (
    SampleSet,
    SamplingParams,
    choose_sample_times,
)
from repro.features.spatial import SpatialExtractor
from repro.features.static import EnvironmentExtractor, StaticEncoder
from repro.features.temporal import TemporalExtractor
from repro.features.windows import DimmHistory
from repro.telemetry.log_store import LogStore


@dataclass
class FeaturePipelineConfig:
    labeling: LabelingParams = field(default_factory=LabelingParams)
    sampling: SamplingParams = field(default_factory=SamplingParams)


class FeaturePipeline:
    """Builds labeled samples from a log store (and serves single samples)."""

    def __init__(self, config: FeaturePipelineConfig | None = None):
        self.config = config or FeaturePipelineConfig()
        observation = self.config.labeling.observation_hours
        self.temporal = TemporalExtractor(observation)
        self.spatial = SpatialExtractor(observation)
        self.bitlevel = BitLevelExtractor(observation)
        self.static = StaticEncoder()
        self.environment = EnvironmentExtractor(observation)
        self._fitted = False

    # -- fitting ----------------------------------------------------------

    def fit(self, store: LogStore) -> "FeaturePipeline":
        """Fit the static encoder and the server-level CE index."""
        self.static.fit(store.configs)
        server_times: dict[str, list[float]] = {}
        for ce in store.ces:
            server_times.setdefault(ce.server_id, []).append(ce.timestamp_hours)
        self.environment.fit(
            {server: np.asarray(times) for server, times in server_times.items()}
        )
        self._fitted = True
        return self

    # -- feature schema -----------------------------------------------------

    def feature_names(self) -> list[str]:
        return (
            self.temporal.names()
            + self.spatial.names()
            + self.bitlevel.names()
            + self.environment.names()
            + self.static.names()
        )

    def feature_groups(self) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        offset = 0
        for extractor in (
            self.temporal,
            self.spatial,
            self.bitlevel,
            self.environment,
            self.static,
        ):
            names = extractor.names()
            groups.setdefault(extractor.group, []).extend(
                range(offset, offset + len(names))
            )
            offset += len(names)
        return groups

    # -- transformation ------------------------------------------------------

    def transform_one(
        self,
        history: DimmHistory,
        config,
        t: float,
    ) -> np.ndarray:
        """Feature vector for one DIMM at one instant (online serving path)."""
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        temporal = self.temporal.compute(history, t)
        own_count_5d = temporal[3]  # 5-day CE count (4th sub-window)
        vector = (
            temporal
            + self.spatial.compute(history, t)
            + self.bitlevel.compute(history, t)
            + self.environment.compute(history.server_id, own_count_5d, t)
            + self.static.compute(config)
        )
        return np.asarray(vector, dtype=float)

    def build_samples(
        self,
        store: LogStore,
        platform: str = "",
        campaign_end_hour: float | None = None,
    ) -> SampleSet:
        """Batch construction of the labeled sample set for one platform."""
        if not self._fitted:
            self.fit(store)
        labeling = self.config.labeling
        sampling = self.config.sampling
        end_hour = campaign_end_hour if campaign_end_hour is not None else store.end_hour
        rng = np.random.default_rng(sampling.seed)

        rows: list[np.ndarray] = []
        labels: list[int] = []
        times: list[float] = []
        dimm_ids: list[str] = []

        for dimm_id in store.dimm_ids_with_ces():
            ces = store.ces_for_dimm(dimm_id)
            events = store.events_for_dimm(dimm_id)
            history = DimmHistory.from_records(dimm_id, ces, events)
            config = store.config_for(dimm_id)
            ues = store.ues_for_dimm(dimm_id)
            ue_hour = ues[0].timestamp_hours if ues else None

            for t in choose_sample_times(
                history.times,
                sampling.max_samples_per_dimm,
                sampling.min_history_ces,
                rng,
            ):
                t = float(t)
                validity = sample_validity(t, ue_hour, end_hour, labeling)
                if validity is not SampleValidity.VALID:
                    continue
                rows.append(self.transform_one(history, config, t))
                labels.append(label_at(t, ue_hour, labeling))
                times.append(t)
                dimm_ids.append(dimm_id)

        names = self.feature_names()
        if rows:
            X = np.vstack(rows)
        else:
            X = np.empty((0, len(names)))
        return SampleSet(
            X=X,
            y=np.asarray(labels, dtype=int),
            times=np.asarray(times, dtype=float),
            dimm_ids=np.asarray(dimm_ids, dtype=object),
            feature_names=names,
            feature_groups=self.feature_groups(),
            platform=platform,
        )
