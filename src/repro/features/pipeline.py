"""End-to-end feature pipeline: LogStore -> labeled SampleSet.

Mirrors the paper's feature-store transformations (Section VII): temporal,
spatial, bit-level, static and environment features, computed per sampling
instant, with labels from :mod:`repro.features.labeling`.  The same
pipeline object serves batch construction (training) and single-sample
transformation (online serving), guaranteeing train/serve consistency.

Batch construction is built on the vectorized extraction engine: all valid
sample times of a DIMM are chosen first, then every extractor computes its
whole feature block in one shot over shared precomputed window indices
(:class:`repro.features.windows.BatchWindows`).  The per-sample
:meth:`FeaturePipeline.transform_one` path is retained as the reference
implementation — the batch path must (and is tested to) match it
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.bitlevel import BitLevelExtractor
from repro.features.labeling import (
    LabelingParams,
    labels_at,
    valid_sample_mask,
)
from repro.features.sampling import (
    SampleSet,
    SamplingParams,
    choose_sample_times,
)
from repro.features.spatial import SpatialExtractor
from repro.features.static import EnvironmentExtractor, StaticEncoder
from repro.features.temporal import TemporalExtractor
from repro.features.windows import BatchWindows, DimmHistory, as_dimm_history
from repro.telemetry.log_store import LogStore


@dataclass
class FeaturePipelineConfig:
    labeling: LabelingParams = field(default_factory=LabelingParams)
    sampling: SamplingParams = field(default_factory=SamplingParams)


class FeaturePipeline:
    """Builds labeled samples from a log store (and serves single samples)."""

    def __init__(self, config: FeaturePipelineConfig | None = None):
        self.config = config or FeaturePipelineConfig()
        observation = self.config.labeling.observation_hours
        self.temporal = TemporalExtractor(observation)
        self.spatial = SpatialExtractor(observation)
        self.bitlevel = BitLevelExtractor(observation)
        self.static = StaticEncoder()
        self.environment = EnvironmentExtractor(observation)
        self._fitted = False

    # -- fitting ----------------------------------------------------------

    def fit(self, store: LogStore) -> "FeaturePipeline":
        """Fit the static encoder and the server-level CE index."""
        self.static.fit(store.configs)
        server_times: dict[str, list[float]] = {}
        for ce in store.ces:
            server_times.setdefault(ce.server_id, []).append(ce.timestamp_hours)
        self.environment.fit(
            {server: np.asarray(times) for server, times in server_times.items()}
        )
        self._fitted = True
        return self

    # -- feature schema -----------------------------------------------------

    def feature_names(self) -> list[str]:
        return (
            self.temporal.names()
            + self.spatial.names()
            + self.bitlevel.names()
            + self.environment.names()
            + self.static.names()
        )

    def feature_groups(self) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        offset = 0
        for extractor in (
            self.temporal,
            self.spatial,
            self.bitlevel,
            self.environment,
            self.static,
        ):
            names = extractor.names()
            groups.setdefault(extractor.group, []).extend(
                range(offset, offset + len(names))
            )
            offset += len(names)
        return groups

    # -- transformation ------------------------------------------------------

    def transform_one(
        self,
        history,
        config,
        t: float,
    ) -> np.ndarray:
        """Feature vector for one DIMM at one instant (online serving path).

        ``history`` may be a :class:`DimmHistory` or an
        :class:`~repro.features.windows.AppendableDimmHistory`.
        """
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        history = as_dimm_history(history)
        temporal = self.temporal.compute(history, t)
        own_count_5d = temporal[3]  # 5-day CE count (4th sub-window)
        vector = (
            temporal
            + self.spatial.compute(history, t)
            + self.bitlevel.compute(history, t)
            + self.environment.compute(history.server_id, own_count_5d, t)
            + self.static.compute(config)
        )
        return np.asarray(vector, dtype=float)

    def transform_batch(
        self,
        history,
        config,
        ts: np.ndarray,
    ) -> np.ndarray:
        """Feature matrix for one DIMM at many instants (batch engine).

        Every extractor computes its block over the same precomputed
        :class:`BatchWindows` indices; the output equals stacking
        :meth:`transform_one` row-by-row, bit-for-bit.
        """
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        history = as_dimm_history(history)
        ts = np.asarray(ts, dtype=float)
        if ts.size == 0:
            return np.empty((0, len(self.feature_names())))
        windows = BatchWindows(history, ts)
        temporal = self.temporal.compute_batch(history, ts, windows)
        own_counts_5d = temporal[:, 3]  # 5-day CE count (4th sub-window)
        return np.hstack(
            [
                temporal,
                self.spatial.compute_batch(history, ts, windows),
                self.bitlevel.compute_batch(history, ts, windows),
                self.environment.compute_batch(
                    history.server_id, own_counts_5d, ts
                ),
                self.static.compute_batch(config, ts.size),
            ]
        )

    def build_samples(
        self,
        store: LogStore,
        platform: str = "",
        campaign_end_hour: float | None = None,
        use_batch: bool = True,
    ) -> SampleSet:
        """Batch construction of the labeled sample set for one platform.

        ``use_batch=False`` falls back to the per-sample reference path
        (one :meth:`transform_one` call per sample); it exists for parity
        testing and benchmarking, not production use.
        """
        if not self._fitted:
            self.fit(store)
        labeling = self.config.labeling
        sampling = self.config.sampling
        end_hour = campaign_end_hour if campaign_end_hour is not None else store.end_hour
        rng = np.random.default_rng(sampling.seed)

        blocks: list[np.ndarray] = []
        label_parts: list[np.ndarray] = []
        time_parts: list[np.ndarray] = []
        dimm_parts: list[np.ndarray] = []

        for dimm_id in store.dimm_ids_with_ces():
            ces = store.ces_for_dimm(dimm_id)
            events = store.events_for_dimm(dimm_id)
            history = DimmHistory.from_records(dimm_id, ces, events)
            config = store.config_for(dimm_id)
            ues = store.ues_for_dimm(dimm_id)
            ue_hour = ues[0].timestamp_hours if ues else None

            candidates = choose_sample_times(
                history.times,
                sampling.max_samples_per_dimm,
                sampling.min_history_ces,
                rng,
            )
            if candidates.size == 0:
                continue
            ts = np.asarray(candidates, dtype=float)
            ts = ts[valid_sample_mask(ts, ue_hour, end_hour, labeling)]
            if ts.size == 0:
                continue

            if use_batch:
                block = self.transform_batch(history, config, ts)
            else:
                block = np.vstack(
                    [self.transform_one(history, config, float(t)) for t in ts]
                )
            blocks.append(block)
            label_parts.append(labels_at(ts, ue_hour, labeling))
            time_parts.append(ts)
            dimm_parts.append(np.full(ts.size, dimm_id, dtype=object))

        names = self.feature_names()
        if blocks:
            X = np.vstack(blocks)
            y = np.concatenate(label_parts).astype(int)
            times = np.concatenate(time_parts)
            dimm_ids = np.concatenate(dimm_parts)
        else:
            X = np.empty((0, len(names)))
            y = np.empty(0, dtype=int)
            times = np.empty(0, dtype=float)
            dimm_ids = np.empty(0, dtype=object)
        return SampleSet(
            X=X,
            y=y,
            times=times,
            dimm_ids=dimm_ids,
            feature_names=names,
            feature_groups=self.feature_groups(),
            platform=platform,
        )
