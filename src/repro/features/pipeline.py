"""End-to-end feature pipeline: LogStore -> labeled SampleSet.

Mirrors the paper's feature-store transformations (Section VII): temporal,
spatial, bit-level, static and environment features, computed per sampling
instant, with labels from :mod:`repro.features.labeling`.  The same
pipeline object serves batch construction (training) and single-sample
transformation (online serving), guaranteeing train/serve consistency.

Three batch engines share one vectorized extraction core:

* ``engine="fleet"`` (default) — ONE cross-DIMM pass: the log store's
  columnar fleet view feeds :class:`~repro.features.windows.FleetWindows`,
  and every extractor's ``compute_batch`` runs once over the whole fleet's
  ragged arrays instead of once per DIMM.  Optionally sharded over a
  process pool (``workers=``) with columnar pickling.
* ``engine="batch"`` — the retained per-DIMM vectorized path (one
  :class:`BatchWindows` per DIMM), kept as the fleet engine's reference
  and benchmark baseline.
* ``engine="per_sample"`` — one :meth:`FeaturePipeline.transform_one`
  call per sample; the bit-for-bit reference implementation.

All three produce identical matrices (enforced by the fleet-parity tests).
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro.features.bitlevel import BitLevelExtractor
from repro.features.labeling import (
    LabelingParams,
    labels_at,
    labels_at_fleet,
    valid_sample_mask,
    valid_sample_mask_fleet,
)
from repro.features.sampling import (
    SampleSet,
    SamplingParams,
    choose_sample_times,
    thinning_jitters,
)
from repro.features.spatial import SpatialExtractor
from repro.features.static import EnvironmentExtractor, StaticEncoder
from repro.features.temporal import TemporalExtractor
from repro.obs.tracing import NULL_TRACER
from repro.features.windows import (
    BatchWindows,
    DimmHistory,
    FleetWindows,
    as_dimm_history,
)
from repro.telemetry.columnar import CE_SERVER, CE_T, FleetArrays
from repro.telemetry.log_store import LogStore

#: Engine names accepted by :meth:`FeaturePipeline.build_samples`.
ENGINES = ("fleet", "batch", "per_sample")


def server_ce_times(store: LogStore) -> dict[str, np.ndarray]:
    """Per-server CE timestamp arrays, read off the columnar CE table.

    Groups the struct-of-arrays mirror by interned server code (one stable
    argsort, zero record-object loops).  The value *sets* equal what the
    old ``store.ces`` record walk produced; value order may differ, which
    is immaterial because the environment extractor sorts each server's
    times at fit time (parity is pinned by a test).
    """
    rows = store.columns.ces.rows()
    if rows.shape[0] == 0:
        return {}
    codes = rows[:, CE_SERVER].astype(np.int64)
    times = rows[:, CE_T]
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    )
    starts = np.append(boundaries, sorted_codes.size)
    sorted_times = times[order]
    return {
        store.columns.servers.name(int(sorted_codes[lo])): sorted_times[lo:hi]
        for lo, hi in zip(starts[:-1], starts[1:])
    }


@dataclass
class FeaturePipelineConfig:
    labeling: LabelingParams = field(default_factory=LabelingParams)
    sampling: SamplingParams = field(default_factory=SamplingParams)


class FeaturePipeline:
    """Builds labeled samples from a log store (and serves single samples)."""

    def __init__(self, config: FeaturePipelineConfig | None = None):
        self.config = config or FeaturePipelineConfig()
        observation = self.config.labeling.observation_hours
        self.temporal = TemporalExtractor(observation)
        self.spatial = SpatialExtractor(observation)
        self.bitlevel = BitLevelExtractor(observation)
        self.static = StaticEncoder()
        self.environment = EnvironmentExtractor(observation)
        self._fitted = False

    # -- fitting ----------------------------------------------------------

    def fit(self, store: LogStore) -> "FeaturePipeline":
        """Fit the static encoder and the server-level CE index.

        The server index is grouped straight from the columnar CE table
        (one argsort over the interned server codes) instead of walking
        ``store.ces`` record objects; :func:`server_ce_times` is the shared
        helper and the record-walk parity is pinned by a test.
        """
        self.static.fit(store.configs)
        self.environment.fit(server_ce_times(store))
        self._fitted = True
        return self

    # -- feature schema -----------------------------------------------------

    def feature_names(self) -> list[str]:
        return (
            self.temporal.names()
            + self.spatial.names()
            + self.bitlevel.names()
            + self.environment.names()
            + self.static.names()
        )

    def feature_groups(self) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        offset = 0
        for extractor in (
            self.temporal,
            self.spatial,
            self.bitlevel,
            self.environment,
            self.static,
        ):
            names = extractor.names()
            groups.setdefault(extractor.group, []).extend(
                range(offset, offset + len(names))
            )
            offset += len(names)
        return groups

    # -- transformation ------------------------------------------------------

    def transform_one(
        self,
        history,
        config,
        t: float,
        static_block: np.ndarray | None = None,
    ) -> np.ndarray:
        """Feature vector for one DIMM at one instant (online serving path).

        ``history`` may be a :class:`DimmHistory` or an
        :class:`~repro.features.windows.AppendableDimmHistory`.
        ``static_block`` optionally reuses a previously computed static
        feature block (configs are time-invariant) — the online service's
        incremental fast path.
        """
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        history = as_dimm_history(history)
        temporal = self.temporal.compute(history, t)
        own_count_5d = temporal[3]  # 5-day CE count (4th sub-window)
        windowed = (
            temporal
            + self.spatial.compute(history, t)
            + self.bitlevel.compute(history, t)
            + self.environment.compute(history.server_id, own_count_5d, t)
        )
        if static_block is None:
            return np.asarray(windowed + self.static.compute(config), dtype=float)
        return np.concatenate(
            [np.asarray(windowed, dtype=float), static_block]
        )

    def static_block(self, config) -> np.ndarray:
        """The time-invariant static feature block of one config."""
        return np.asarray(self.static.compute(config), dtype=float)

    def transform_batch(
        self,
        history,
        config,
        ts: np.ndarray,
    ) -> np.ndarray:
        """Feature matrix for one DIMM at many instants (batch engine).

        Every extractor computes its block over the same precomputed
        :class:`BatchWindows` indices; the output equals stacking
        :meth:`transform_one` row-by-row, bit-for-bit.
        """
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        history = as_dimm_history(history)
        ts = np.asarray(ts, dtype=float)
        if ts.size == 0:
            return np.empty((0, len(self.feature_names())))
        windows = BatchWindows(history, ts)
        temporal = self.temporal.compute_batch(history, ts, windows)
        own_counts_5d = temporal[:, 3]  # 5-day CE count (4th sub-window)
        return np.hstack(
            [
                temporal,
                self.spatial.compute_batch(history, ts, windows),
                self.bitlevel.compute_batch(history, ts, windows),
                self.environment.compute_batch(
                    history.server_id, own_counts_5d, ts
                ),
                self.static.compute_batch(config, ts.size),
            ]
        )

    def transform_fleet(
        self,
        fleet: FleetArrays,
        configs: list,
        ts: np.ndarray,
        sample_seg: np.ndarray,
    ) -> np.ndarray:
        """Feature matrix for MANY DIMMs' samples in one cross-fleet pass.

        ``ts`` / ``sample_seg`` must be grouped by ascending segment (DIMM
        index into ``fleet``), the order :meth:`build_samples` produces;
        ``configs[i]`` is segment ``i``'s config.  Output rows equal the
        concatenation of the per-DIMM :meth:`transform_batch` matrices,
        bit-for-bit — but the five extractors each run once over the whole
        fleet instead of once per DIMM.
        """
        if not self._fitted:
            raise RuntimeError("pipeline not fitted")
        ts = np.asarray(ts, dtype=float)
        sample_seg = np.asarray(sample_seg, dtype=np.int64)
        if ts.size == 0:
            return np.empty((0, len(self.feature_names())))
        windows = FleetWindows(fleet, ts, sample_seg)
        temporal = self.temporal.compute_batch(fleet, ts, windows)
        own_counts_5d = temporal[:, 3]  # 5-day CE count (4th sub-window)
        server_codes = np.asarray(
            [self.environment.server_code(s) for s in fleet.server_ids],
            dtype=np.int64,
        )
        counts = np.bincount(sample_seg, minlength=fleet.n_dimms)
        return np.hstack(
            [
                temporal,
                self.spatial.compute_batch(fleet, ts, windows),
                self.bitlevel.compute_batch(fleet, ts, windows),
                self.environment.compute_fleet(
                    server_codes[sample_seg], own_counts_5d, ts
                ),
                np.repeat(self.static.compute_rows(configs), counts, axis=0),
            ]
        )

    def build_samples(
        self,
        store: LogStore,
        platform: str = "",
        campaign_end_hour: float | None = None,
        use_batch: bool = True,
        engine: str | None = None,
        workers: int | None = None,
        tracer=None,
        obs=None,
        heartbeat_every: int = 0,
    ) -> SampleSet:
        """Batch construction of the labeled sample set for one platform.

        ``engine`` picks the extraction strategy (see module docstring);
        the default is the cross-DIMM fleet pass.  ``use_batch=False`` is
        back-compat shorthand for ``engine="per_sample"``.  ``workers``
        shards the fleet pass across a process pool (threads, then serial,
        as fallbacks); every engine and worker count yields bit-for-bit
        identical sample sets.  ``tracer`` optionally records fit/extract
        spans (:mod:`repro.obs`); ``obs`` passes the whole bundle (its
        tracer wins unless ``tracer`` is set) and ``heartbeat_every``
        publishes live ``build_samples`` heartbeats — per completed shard
        on the fleet engine, every N DIMMs otherwise.  Extraction itself
        is untouched either way.
        """
        if engine is None:
            engine = "fleet" if use_batch else "per_sample"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected {ENGINES}")
        if tracer is None:
            tracer = obs.tracer if obs is not None else NULL_TRACER
        hb = int(heartbeat_every) if obs is not None else 0
        with tracer.span(
            "build_samples",
            platform=platform,
            engine=engine,
            workers=workers if workers is not None else 1,
        ):
            if not self._fitted:
                with tracer.span("build_samples.fit"):
                    self.fit(store)
            end_hour = (
                campaign_end_hour
                if campaign_end_hour is not None
                else store.end_hour
            )
            with tracer.span("build_samples.extract"):
                if engine == "fleet":
                    return self._build_fleet(
                        store, platform, end_hour, workers,
                        obs=obs, heartbeat_every=hb,
                    )
                return self._build_per_dimm(
                    store, platform, end_hour, engine == "batch",
                    obs=obs, heartbeat_every=hb,
                )

    # -- fleet engine -------------------------------------------------------

    def _build_fleet(
        self,
        store: LogStore,
        platform: str,
        end_hour: float,
        workers: int | None,
        obs=None,
        heartbeat_every: int = 0,
    ) -> SampleSet:
        fleet = store.fleet_arrays()
        sampling = self.config.sampling
        rng = np.random.default_rng(sampling.seed)
        jitters = thinning_jitters(
            np.diff(fleet.ce_offsets),
            sampling.max_samples_per_dimm,
            sampling.min_history_ces,
            rng,
        )
        configs = [store.config_for(dimm_id) for dimm_id in fleet.dimm_ids]
        progress = None
        if obs is not None and heartbeat_every:
            samples_done = 0

            def progress(done, total, shard):
                nonlocal samples_done
                samples_done += int(shard[2].size)
                obs.heartbeat("build_samples", {
                    "shards": done,
                    "total": total,
                    "fraction": done / total if total else 1.0,
                    "samples": samples_done,
                })

        if workers is not None and workers > 1 and fleet.n_dimms > 1:
            shards = self._run_sharded(
                fleet, configs, jitters, end_hour, workers,
                progress=progress,
            )
        else:
            shards = [_extract_fleet_shard(self, fleet, configs, jitters, end_hour)]
            if progress is not None:
                progress(1, 1, shards[0])

        names = self.feature_names()
        X = np.vstack([shard[0] for shard in shards])
        y = np.concatenate([shard[1] for shard in shards])
        times = np.concatenate([shard[2] for shard in shards])
        counts = np.concatenate([shard[3] for shard in shards])
        dimm_ids = np.repeat(np.asarray(fleet.dimm_ids, dtype=object), counts)
        if X.shape[0] == 0:
            X = np.empty((0, len(names)))
        return SampleSet(
            X=X,
            y=y.astype(int),
            times=times,
            dimm_ids=dimm_ids,
            feature_names=names,
            feature_groups=self.feature_groups(),
            platform=platform,
        )

    def _run_sharded(
        self,
        fleet: FleetArrays,
        configs: list,
        jitters: list,
        end_hour: float,
        workers: int,
        progress=None,
    ) -> list[tuple]:
        """Fan the fleet pass out over DIMM shards (process -> thread -> serial).

        Shards are submitted individually so one crashed worker costs one
        shard, not the pass: :func:`_shard_result` resubmits a failed
        shard with backoff and finally reassigns it to this process.  The
        sample set is bit-for-bit identical no matter which worker (or
        none) computed each shard.
        """
        n_shards = min(int(workers), fleet.n_dimms)
        bounds = np.linspace(0, fleet.n_dimms, n_shards + 1).astype(int)
        payloads = [
            (
                self,
                fleet.shard(int(lo), int(hi)),
                configs[lo:hi],
                jitters[lo:hi],
                end_hour,
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for pool_cls in (
            concurrent.futures.ProcessPoolExecutor,
            concurrent.futures.ThreadPoolExecutor,
        ):
            try:
                with pool_cls(max_workers=n_shards) as pool:
                    futures = [
                        pool.submit(_extract_payload, payload)
                        for payload in payloads
                    ]
                    results = []
                    for payload, future in zip(payloads, futures):
                        results.append(_shard_result(pool, payload, future))
                        if progress is not None:
                            progress(
                                len(results), len(payloads), results[-1]
                            )
                    return results
            except (
                OSError,
                PermissionError,
                RuntimeError,  # e.g. "can't start new thread" under limits
                pickle.PicklingError,
                concurrent.futures.BrokenExecutor,
            ):
                # Process pools are unavailable in some sandboxes (and
                # thread pools in some embedders); degrade gracefully —
                # the result is bit-for-bit identical either way.  A
                # worker-raised error lands here too; the serial retry
                # below re-raises it if it was a genuine bug.
                continue
        results = []
        for payload in payloads:
            results.append(_extract_payload(payload))
            if progress is not None:
                progress(len(results), len(payloads), results[-1])
        return results

    # -- per-DIMM engines (retained reference paths) ------------------------

    def _build_per_dimm(
        self,
        store: LogStore,
        platform: str,
        end_hour: float,
        use_batch: bool,
        obs=None,
        heartbeat_every: int = 0,
    ) -> SampleSet:
        labeling = self.config.labeling
        sampling = self.config.sampling
        rng = np.random.default_rng(sampling.seed)

        blocks: list[np.ndarray] = []
        label_parts: list[np.ndarray] = []
        time_parts: list[np.ndarray] = []
        dimm_parts: list[np.ndarray] = []

        hb = heartbeat_every if obs is not None else 0
        dimm_ids_all = store.dimm_ids_with_ces()
        hb_total = len(dimm_ids_all)
        for hb_done, dimm_id in enumerate(dimm_ids_all, start=1):
            if hb and hb_done % hb == 0:
                obs.heartbeat("build_samples", {
                    "dimms": hb_done,
                    "total": hb_total,
                    "fraction": hb_done / hb_total,
                    "samples": sum(part.size for part in time_parts),
                })
            ces = store.ces_for_dimm(dimm_id)
            events = store.events_for_dimm(dimm_id)
            history = DimmHistory.from_records(dimm_id, ces, events)
            config = store.config_for(dimm_id)
            ues = store.ues_for_dimm(dimm_id)
            ue_hour = ues[0].timestamp_hours if ues else None

            candidates = choose_sample_times(
                history.times,
                sampling.max_samples_per_dimm,
                sampling.min_history_ces,
                rng,
            )
            if candidates.size == 0:
                continue
            ts = np.asarray(candidates, dtype=float)
            ts = ts[valid_sample_mask(ts, ue_hour, end_hour, labeling)]
            if ts.size == 0:
                continue

            if use_batch:
                block = self.transform_batch(history, config, ts)
            else:
                block = np.vstack(
                    [self.transform_one(history, config, float(t)) for t in ts]
                )
            blocks.append(block)
            label_parts.append(labels_at(ts, ue_hour, labeling))
            time_parts.append(ts)
            dimm_parts.append(np.full(ts.size, dimm_id, dtype=object))

        names = self.feature_names()
        if blocks:
            X = np.vstack(blocks)
            y = np.concatenate(label_parts).astype(int)
            times = np.concatenate(time_parts)
            dimm_ids = np.concatenate(dimm_parts)
        else:
            X = np.empty((0, len(names)))
            y = np.empty(0, dtype=int)
            times = np.empty(0, dtype=float)
            dimm_ids = np.empty(0, dtype=object)
        return SampleSet(
            X=X,
            y=y,
            times=times,
            dimm_ids=dimm_ids,
            feature_names=names,
            feature_groups=self.feature_groups(),
            platform=platform,
        )


def _extract_payload(payload: tuple) -> tuple:
    pipeline, fleet, configs, jitters, end_hour = payload
    return _extract_fleet_shard(pipeline, fleet, configs, jitters, end_hour)


def _shard_result(
    pool, payload: tuple, future, retries: int = 2, backoff: float = 0.05
) -> tuple:
    """One shard's result, surviving crashed workers.

    Infrastructure failures (a worker OOM-killed, a dropped pipe) get
    ``retries`` resubmits with exponential backoff; a shard still failing
    is reassigned to this process inline.  A broken *pool* propagates so
    the caller can fall to the next pool class, and a genuine extraction
    bug (any other exception) is raised immediately — retrying determinism
    would just raise it again.
    """
    for attempt in range(retries):
        try:
            return future.result()
        except concurrent.futures.BrokenExecutor:
            raise
        except (OSError, pickle.PicklingError, MemoryError):
            time.sleep(backoff * (2 ** attempt))
            try:
                future = pool.submit(_extract_payload, payload)
            except (RuntimeError, concurrent.futures.BrokenExecutor):
                # Pool already shutting down/broken: reassign inline.
                return _extract_payload(payload)
    try:
        return future.result()
    except concurrent.futures.BrokenExecutor:
        raise
    except (OSError, pickle.PicklingError, MemoryError):
        return _extract_payload(payload)


def _extract_fleet_shard(
    pipeline: FeaturePipeline,
    fleet: FleetArrays,
    configs: list,
    jitters: list,
    end_hour: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One shard's ``(X, y, times, per-DIMM sample counts)``.

    Module-level (not a method) so process-pool workers can unpickle it;
    the payload ships only columnar arrays, configs and the pre-drawn
    thinning jitters.
    """
    labeling = pipeline.config.labeling
    sampling = pipeline.config.sampling
    ts_parts: list[np.ndarray] = []
    seg_parts: list[np.ndarray] = []
    for i in range(fleet.n_dimms):
        times_i = fleet.times[fleet.ce_offsets[i] : fleet.ce_offsets[i + 1]]
        candidates = choose_sample_times(
            times_i,
            sampling.max_samples_per_dimm,
            sampling.min_history_ces,
            None,
            jitter=jitters[i],
        )
        if candidates.size == 0:
            continue
        ts_parts.append(np.asarray(candidates, dtype=float))
        seg_parts.append(np.full(candidates.size, i, dtype=np.int64))

    n_features = len(pipeline.feature_names())
    if not ts_parts:
        return (
            np.empty((0, n_features)),
            np.empty(0, dtype=int),
            np.empty(0, dtype=float),
            np.zeros(fleet.n_dimms, dtype=np.int64),
        )
    ts = np.concatenate(ts_parts)
    seg = np.concatenate(seg_parts)
    mask = valid_sample_mask_fleet(ts, fleet.ue_hours[seg], end_hour, labeling)
    ts = ts[mask]
    seg = seg[mask]
    y = labels_at_fleet(ts, fleet.ue_hours[seg], labeling)
    X = pipeline.transform_fleet(fleet, configs, ts, seg)
    counts = np.bincount(seg, minlength=fleet.n_dimms)
    return X, y, ts, counts
